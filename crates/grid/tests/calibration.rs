//! Calibration tests: the simulated 2021 traces must land on the paper's
//! Fig. 6 statistics and Fig. 7 diurnal structure.

use hpcarbon_grid::analysis::{lowest_median_region, regional_summary, winner_counts};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_all_regions;
use hpcarbon_timeseries::datetime::TimeZone;

const SEED: u64 = 2021;

#[test]
fn fig6_regional_statistics_match_paper_bands() {
    let traces = simulate_all_regions(2021, SEED);
    let summaries = regional_summary(&traces);
    for s in &summaries {
        let cal = s.operator.calibration();
        let med = s.boxplot.median;
        let cov = s.cov_percent;
        println!(
            "{:>6}: median {:6.1} (band {:?})  cov {:5.1}% (band {:?})  q1 {:6.1} q3 {:6.1}",
            s.operator.info().short,
            med,
            cal.median_band,
            cov,
            cal.cov_band,
            s.boxplot.q1,
            s.boxplot.q3,
        );
        assert!(
            med >= cal.median_band.0 && med <= cal.median_band.1,
            "{}: median {med} outside {:?}",
            s.operator.info().short,
            cal.median_band
        );
        assert!(
            cov >= cal.cov_band.0 && cov <= cal.cov_band.1,
            "{}: CoV {cov} outside {:?}",
            s.operator.info().short,
            cal.cov_band
        );
    }
}

#[test]
fn fig6_orderings_match_paper() {
    let traces = simulate_all_regions(2021, SEED);
    let summaries = regional_summary(&traces);
    let median = |op: OperatorId| {
        summaries
            .iter()
            .find(|s| s.operator == op)
            .unwrap()
            .boxplot
            .median
    };
    let cov = |op: OperatorId| {
        summaries
            .iter()
            .find(|s| s.operator == op)
            .unwrap()
            .cov_percent
    };

    // "the ESO (Great Britain, UK) region has the lowest carbon intensity
    // among all regions, with a median carbon intensity of less than 200".
    assert_eq!(lowest_median_region(&summaries), OperatorId::Eso);
    assert!(median(OperatorId::Eso) < 200.0);

    // "The TK (Tokyo, Japan) region has the highest carbon intensity among
    // all regions, whose medium annual carbon intensity is three times
    // ESO's."
    let max_med = OperatorId::ALL
        .iter()
        .map(|op| median(*op))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        median(OperatorId::Tokyo) >= max_med * 0.92,
        "Tokyo should be (nearly) the highest median"
    );
    let ratio = median(OperatorId::Tokyo) / median(OperatorId::Eso);
    assert!((2.3..=3.8).contains(&ratio), "TK/ESO median ratio {ratio}");

    // "The two regions with the lowest medium carbon intensity – ESO and
    // CISO, also have the most variations."
    let mut meds: Vec<(OperatorId, f64)> = OperatorId::ALL
        .iter()
        .map(|op| (*op, median(*op)))
        .collect();
    meds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    assert_eq!(meds[0].0, OperatorId::Eso);
    assert_eq!(meds[1].0, OperatorId::Ciso);
    let mut covs: Vec<(OperatorId, f64)> =
        OperatorId::ALL.iter().map(|op| (*op, cov(*op))).collect();
    covs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top2: Vec<OperatorId> = covs[..2].iter().map(|(o, _)| *o).collect();
    assert!(top2.contains(&OperatorId::Eso), "CoV top2 {covs:?}");
    assert!(top2.contains(&OperatorId::Ciso), "CoV top2 {covs:?}");

    // "the regions with the highest medium carbon intensity – TK and KN –
    // have the least carbon intensity variation among all regions."
    let bottom2: Vec<OperatorId> = covs[covs.len() - 2..].iter().map(|(o, _)| *o).collect();
    assert!(bottom2.contains(&OperatorId::Tokyo), "CoV bottom2 {covs:?}");
    assert!(
        bottom2.contains(&OperatorId::Kansai),
        "CoV bottom2 {covs:?}"
    );
}

#[test]
fn fig7_diurnal_winner_structure() {
    let traces = simulate_all_regions(2021, SEED);
    let fig7: Vec<_> = traces
        .into_iter()
        .filter(|t| OperatorId::FIG7_REGIONS.contains(&t.operator()))
        .collect();
    assert_eq!(fig7.len(), 3);
    let w = winner_counts(&fig7, TimeZone::JST);

    for h in 0..24 {
        print!("JST {h:02}: ");
        for (r, op) in w.operators.iter().enumerate() {
            print!("{}={:3} ", op.info().short, w.counts[r][h]);
        }
        println!("  -> {}", w.plurality_winner(h).info().short);
        // Counts per hour cover the whole year.
        assert_eq!(w.days_per_hour(h), 365);
    }

    // "the number of days that each region has the lowest carbon intensity
    // during a given hour varies significantly throughout the year" — for
    // the majority of hours the leader wins well short of the full year
    // (the deep-night/evening-peak alignments can stay near-deterministic,
    // as they plausibly are in the paper's own data).
    let max_at = |h: usize| w.counts.iter().map(|c| c[h]).max().unwrap();
    let contested_hours = (0..24).filter(|h| max_at(*h) < 340).count();
    assert!(
        contested_hours >= 12,
        "only {contested_hours}/24 hours show real variation"
    );
    let near_sweeps = (0..24).filter(|h| max_at(*h) >= 355).count();
    assert!(
        near_sweeps <= 9,
        "{near_sweeps} hours are near-deterministic"
    );

    // The paper's hour-1 example: "ESO … about 150 days … while CISO …
    // about 215 days". Our JST hour 1 should land near that split.
    let eso_idx = w
        .operators
        .iter()
        .position(|o| *o == OperatorId::Eso)
        .unwrap();
    let ciso_idx = w
        .operators
        .iter()
        .position(|o| *o == OperatorId::Ciso)
        .unwrap();
    assert!(
        (100..=210).contains(&w.counts[eso_idx][1]),
        "ESO hour-1 wins {} (paper ≈150)",
        w.counts[eso_idx][1]
    );
    assert!(
        (160..=280).contains(&w.counts[ciso_idx][1]),
        "CISO hour-1 wins {} (paper ≈215)",
        w.counts[ciso_idx][1]
    );

    // "The hours during which ESO is the region with the lowest carbon
    // intensity, hour 8 to hour 20" — ESO takes the plurality for most of
    // that JST window.
    let eso_window_wins = (9..=19)
        .filter(|h| w.plurality_winner(*h) == OperatorId::Eso)
        .count();
    assert!(
        eso_window_wins >= 7,
        "ESO should win most of JST 9-19, won {eso_window_wins}/11"
    );

    // "CISO is a greener region during most of the days" outside that
    // window (late JST night / early morning).
    let ciso_window_wins = [22, 23, 0, 1, 2, 3, 4, 5]
        .iter()
        .filter(|h| w.plurality_winner(**h) == OperatorId::Ciso)
        .count();
    assert!(
        ciso_window_wins >= 5,
        "CISO should win most of JST 22-05, won {ciso_window_wins}/8"
    );

    // Every region wins somewhere (ERCOT's night wind gets it some days).
    for op in OperatorId::FIG7_REGIONS {
        assert!(
            w.total_wins(op) > 100,
            "{:?} total {}",
            op,
            w.total_wins(op)
        );
    }
}

#[test]
fn different_seeds_preserve_structure() {
    // The calibration must be a property of the model, not of one lucky
    // seed: re-check the headline orderings on another seed.
    let traces = simulate_all_regions(2021, 777);
    let summaries = regional_summary(&traces);
    assert_eq!(lowest_median_region(&summaries), OperatorId::Eso);
    let tk = summaries
        .iter()
        .find(|s| s.operator == OperatorId::Tokyo)
        .unwrap();
    let eso = summaries
        .iter()
        .find(|s| s.operator == OperatorId::Eso)
        .unwrap();
    assert!(tk.boxplot.median > 2.0 * eso.boxplot.median);
    assert!(eso.cov_percent > tk.cov_percent);
}
