//! Property tests for the grid simulator: invariants that must hold for
//! any seed and any region.

use hpcarbon_grid::api::{IntensityApi, IntensityIndex};
use hpcarbon_grid::fuel::{Fuel, GenerationMix};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_year;
use hpcarbon_timeseries::datetime::TimeZone;
use hpcarbon_units::CarbonIntensity;
use proptest::prelude::*;

fn any_operator() -> impl Strategy<Value = OperatorId> {
    prop_oneof![
        Just(OperatorId::Kansai),
        Just(OperatorId::Tokyo),
        Just(OperatorId::Eso),
        Just(OperatorId::Ciso),
        Just(OperatorId::Pjm),
        Just(OperatorId::Miso),
        Just(OperatorId::Ercot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated hour is physically bounded by the fuel palette.
    #[test]
    fn intensity_physically_bounded(op in any_operator(), seed in 0u64..200) {
        let t = simulate_year(op, 2021, seed);
        let min = t.series().min();
        let max = t.series().max();
        prop_assert!(min >= Fuel::Wind.emission_factor().as_g_per_kwh() - 1e-9);
        prop_assert!(max <= Fuel::Coal.emission_factor().as_g_per_kwh() + 1e-9);
    }

    /// Simulation is a pure function of (operator, year, seed).
    #[test]
    fn deterministic(op in any_operator(), seed in 0u64..100) {
        let a = simulate_year(op, 2021, seed);
        let b = simulate_year(op, 2021, seed);
        prop_assert_eq!(a.series().values(), b.series().values());
    }

    /// Annual ordering invariants survive any seed: Japan dirtier than GB,
    /// MISO dirtier than ESO.
    #[test]
    fn robust_orderings(seed in 0u64..50) {
        let eso = simulate_year(OperatorId::Eso, 2021, seed).mean().as_g_per_kwh();
        let tk = simulate_year(OperatorId::Tokyo, 2021, seed).mean().as_g_per_kwh();
        let miso = simulate_year(OperatorId::Miso, 2021, seed).mean().as_g_per_kwh();
        prop_assert!(tk > eso * 1.8, "tk {tk} vs eso {eso}");
        prop_assert!(miso > eso * 1.8, "miso {miso} vs eso {eso}");
    }

    /// Hourly profiles viewed from any timezone preserve the annual mean.
    #[test]
    fn profile_mean_is_zone_invariant(seed in 0u64..30, off in -12i8..=14i8) {
        let t = simulate_year(OperatorId::Ercot, 2021, seed);
        let tz = TimeZone::fixed(off, "TST");
        let profile = t.hourly_profile(tz);
        let profile_mean: f64 = profile.iter().sum::<f64>() / 24.0;
        // Hour buckets have equal sizes (8760/24), so the bucket-mean of
        // means equals the global mean.
        prop_assert!((profile_mean - t.series().mean()).abs() < 1e-6);
    }

    /// The greenest window is never worse than starting immediately.
    #[test]
    fn greenest_window_dominates_now(
        seed in 0u64..30,
        start in 0u32..8000,
        horizon in 0u32..72,
        n in 1u32..24,
    ) {
        let t = simulate_year(OperatorId::Eso, 2021, seed);
        let best = t.greenest_window(start, horizon, n);
        let mean_at = |s: u32| {
            let vals = &t.series().values()[s as usize..(s + n).min(8760) as usize];
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        if start + n <= 8760 && best + n <= 8760 {
            prop_assert!(mean_at(best) <= mean_at(start) + 1e-9);
        }
        prop_assert!(best >= start);
        prop_assert!(best <= start + horizon);
    }

    /// API forecasts are unbiased enough: the mean relative error over many
    /// targets stays small even at long horizons.
    #[test]
    fn forecast_errors_center_on_zero(seed in 0u64..20) {
        let t = simulate_year(OperatorId::Ciso, 2021, seed);
        let api = IntensityApi::new(t, 0.03, seed);
        let mut acc = 0.0;
        let mut n = 0;
        for h in (0..8000u32).step_by(97) {
            let stamp = hpcarbon_timeseries::datetime::HourStamp::from_hour_of_year(2021, h);
            let a = api.actual(stamp).as_g_per_kwh();
            let f = api.forecast(stamp, 24).as_g_per_kwh();
            acc += (f - a) / a;
            n += 1;
        }
        let bias = acc / f64::from(n);
        prop_assert!(bias.abs() < 0.08, "bias {bias}");
    }

    /// Generation mixes always yield intensities inside the convex hull of
    /// their fuels.
    #[test]
    fn mix_intensity_convex(
        coal in 0.0..2.0f64,
        gas in 0.0..2.0f64,
        wind in 0.0..2.0f64,
        nuclear in 0.0..2.0f64,
    ) {
        prop_assume!(coal + gas + wind + nuclear > 0.0);
        let mut m = GenerationMix::new();
        m.add(Fuel::Coal, coal);
        m.add(Fuel::Gas, gas);
        m.add(Fuel::Wind, wind);
        m.add(Fuel::Nuclear, nuclear);
        let i = m.intensity(CarbonIntensity::from_g_per_kwh(450.0)).as_g_per_kwh();
        prop_assert!(i >= Fuel::Wind.emission_factor().as_g_per_kwh() - 1e-9);
        prop_assert!(i <= Fuel::Coal.emission_factor().as_g_per_kwh() + 1e-9);
    }
}

/// The API's index bands tile the intensity axis without gaps.
#[test]
fn index_bands_tile_the_axis() {
    let mut last = IntensityIndex::VeryLow;
    for g in 0..900 {
        let idx = IntensityIndex::from_intensity(CarbonIntensity::from_g_per_kwh(f64::from(g)));
        assert!(idx >= last, "index must be monotone in intensity");
        last = idx;
    }
    assert_eq!(last, IntensityIndex::VeryHigh);
}
