//! # hpcarbon-grid
//!
//! Regional grid carbon-intensity simulation and analysis — the substrate
//! behind the paper's §4 ("Geographical Carbon Intensity").
//!
//! The paper consumes hourly 2021 carbon-intensity traces for seven power
//! system operators (its Table 3), sourced from Electricity Maps and the UK
//! ESO Carbon Intensity API. Those datasets are proprietary/remote, so this
//! crate synthesizes traces from a *physically structured* grid model
//! instead (see DESIGN.md §1 for why the substitution preserves the paper's
//! analyses):
//!
//! - a demand model with diurnal, seasonal, weekday and stochastic
//!   components ([`sim`]);
//! - a per-region generation stack — must-run nuclear/hydro, stochastic
//!   wind (Ornstein–Uhlenbeck capacity factor), astronomical solar with
//!   cloud noise, and a dispatchable merit order (gas/coal/imports) whose
//!   ordering differs by region ([`regions`]);
//! - per-fuel life-cycle emission factors ([`fuel`]);
//! - hourly intensity = emissions-weighted generation mix.
//!
//! Each region's parameters are calibrated so the synthetic year
//! reproduces the paper's Fig. 6 statistics (ESO lowest median < 200
//! gCO₂/kWh, Tokyo ≈ 3× ESO, ESO/CISO highest CoV, Japan lowest CoV) and
//! Fig. 7's diurnal structure (ESO winning the JST 8–20 window, CISO most
//! other hours).
//!
//! On top of the simulator sit:
//!
//! - [`trace::IntensityTrace`]: a year of hourly intensities bound to an
//!   operator, with box-plot/CoV statistics and an always-on
//!   [`hpcarbon_timeseries::window::WindowIndex`] for `O(1)` window
//!   averages and indexed greenest-start queries;
//! - [`synth`]: deterministic *synthetic* region-years (harmonics +
//!   fuel-mix-weighted OU noise) an order of magnitude cheaper than the
//!   dispatch simulator, so sweeps are not limited to the calibrated
//!   trace set;
//! - [`api::IntensityApi`]: an ESO-Carbon-Intensity-API-style interface
//!   (actual + forecast with horizon-dependent error, intensity index
//!   bands) used by the carbon-aware scheduler;
//! - [`analysis`]: the Fig. 6/Fig. 7 analyses (per-region summaries,
//!   winner-per-JST-hour counts);
//! - [`tracefile`]: strict ElectricityMaps/EIA-style CSV ingestion of
//!   *measured* region-years into the same [`trace::IntensityTrace`];
//! - [`forecast`]: planning traces (persistence, day-ahead harmonic,
//!   seeded noisy oracle) for uncertainty-aware shifting.
//!
//! # Example
//!
//! ```
//! use hpcarbon_grid::{regions::OperatorId, sim::simulate_year};
//!
//! let trace = simulate_year(OperatorId::Eso, 2021, 42);
//! let stats = trace.boxplot();
//! assert!(stats.median < 250.0); // GB is the low-carbon region
//! assert_eq!(trace.series().len(), 8760);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod forecast;
pub mod fuel;
pub mod regions;
pub mod sim;
pub mod synth;
pub mod trace;
pub mod tracefile;

pub use forecast::ForecastProvider;
pub use regions::OperatorId;
pub use sim::{simulate_all_regions, simulate_year};
pub use synth::{synthesize_year, SyntheticSpec};
pub use trace::IntensityTrace;
pub use tracefile::{load_trace_file, parse_trace_csv, write_trace_csv, GapPolicy, ParsedTrace};

use hpcarbon_units::CarbonIntensity;

/// The three constant intensity levels of the paper's Fig. 8 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntensityLevel {
    /// "high intensity with an average of 400 gCO2/kWh".
    High,
    /// "medium intensity with an average of 200 gCO2/kWh".
    Medium,
    /// "low intensity with an average of 20 gCO2/kWh which is the carbon
    /// intensity of hydropower".
    Low,
}

impl IntensityLevel {
    /// All levels in the paper's column order.
    pub const ALL: [IntensityLevel; 3] = [
        IntensityLevel::High,
        IntensityLevel::Medium,
        IntensityLevel::Low,
    ];

    /// The constant intensity value.
    pub fn intensity(self) -> CarbonIntensity {
        match self {
            IntensityLevel::High => CarbonIntensity::from_g_per_kwh(400.0),
            IntensityLevel::Medium => CarbonIntensity::from_g_per_kwh(200.0),
            IntensityLevel::Low => CarbonIntensity::from_g_per_kwh(20.0),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            IntensityLevel::High => "High Carbon Intensity",
            IntensityLevel::Medium => "Medium Carbon Intensity",
            IntensityLevel::Low => "Low Carbon Intensity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_levels_match_paper() {
        assert_eq!(IntensityLevel::High.intensity().as_g_per_kwh(), 400.0);
        assert_eq!(IntensityLevel::Medium.intensity().as_g_per_kwh(), 200.0);
        assert_eq!(IntensityLevel::Low.intensity().as_g_per_kwh(), 20.0);
        assert_eq!(IntensityLevel::ALL.len(), 3);
    }
}
