//! Cross-region analyses — the machinery behind Figs. 6 and 7.

use crate::regions::OperatorId;
use crate::trace::IntensityTrace;
use hpcarbon_timeseries::datetime::TimeZone;
use hpcarbon_timeseries::stats::BoxplotStats;

/// Why a cross-region analysis cannot run on the given trace set.
///
/// Batched sweeps feed arbitrary region combinations through these
/// analyses; a bad combination must surface as an `Err` item, not a panic
/// that aborts the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisError {
    /// Fewer than two traces were supplied.
    NotEnoughRegions(usize),
    /// The traces cover different years.
    YearMismatch,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::NotEnoughRegions(n) => {
                write!(f, "need at least two regions to compare, got {n}")
            }
            AnalysisError::YearMismatch => write!(f, "all traces must cover the same year"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Fig. 6 row: one region's annual summary.
#[derive(Debug, Clone)]
pub struct RegionSummary {
    /// The operator.
    pub operator: OperatorId,
    /// Annual distribution summary (Fig. 6a's box).
    pub boxplot: BoxplotStats,
    /// Coefficient of variation in % (Fig. 6b's bar).
    pub cov_percent: f64,
}

/// Computes the Fig. 6 summary for a set of traces.
pub fn regional_summary(traces: &[IntensityTrace]) -> Vec<RegionSummary> {
    traces
        .iter()
        .map(|t| RegionSummary {
            operator: t.operator(),
            boxplot: t.boxplot(),
            cov_percent: t.cov_percent(),
        })
        .collect()
}

/// The operator with the lowest annual median intensity.
pub fn lowest_median_region(summaries: &[RegionSummary]) -> OperatorId {
    summaries
        .iter()
        // Medians come out of `BoxplotStats::compute`, which rejects
        // non-finite samples, so `total_cmp` orders them identically to
        // the old `partial_cmp(..).expect(..)` without the panic arm.
        .min_by(|a, b| a.boxplot.median.total_cmp(&b.boxplot.median))
        // lint: allow(panic-in-library) -- callers pass the fixed compared-region set (asserted ≥ 2 at trace load); an empty slice is a caller bug worth a loud stop
        .expect("non-empty summary list")
        .operator
}

/// Fig. 7's result: for each hour of the day in a reference time zone, how
/// many days of the year each region had the lowest intensity among the
/// compared regions.
#[derive(Debug, Clone)]
pub struct WinnerCounts {
    /// Region order matching the count rows.
    pub operators: Vec<OperatorId>,
    /// `counts[r][h]` = days on which region `r` was lowest during local
    /// hour `h` of the reference zone.
    pub counts: Vec<[u32; 24]>,
    /// Reference time zone (the paper uses JST).
    pub tz: TimeZone,
}

impl WinnerCounts {
    /// Days counted per hour (sum over regions) — 365 for a full non-leap
    /// year with no ties, which the tie-breaking rule guarantees.
    pub fn days_per_hour(&self, hour: usize) -> u32 {
        self.counts.iter().map(|c| c[hour]).sum()
    }

    /// The region winning the most days at `hour`.
    pub fn plurality_winner(&self, hour: usize) -> OperatorId {
        let idx = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c[hour])
            // lint: allow(panic-in-library) -- WinnerCounts is only constructed by winner_counts(), which requires ≥ 2 traces, so `counts` is never empty
            .expect("non-empty")
            .0;
        self.operators[idx]
    }

    /// Total days won by `op` across all hours.
    pub fn total_wins(&self, op: OperatorId) -> u32 {
        let idx = self
            .operators
            .iter()
            .position(|o| *o == op)
            // lint: allow(panic-in-library) -- asking for a region that was not part of the comparison is a caller bug; silently returning 0 would fabricate a result
            .expect("operator present");
        self.counts[idx].iter().sum()
    }
}

/// Computes Fig. 7: aligns all traces on the reference zone's wall clock
/// ("we account for the difference between time zones … and convert them
/// to JST") and counts, per local hour, the days each region was lowest.
///
/// Ties (exactly equal intensities) go to the earlier trace in the input
/// order, making counts deterministic and hour-sums exact.
///
/// # Panics
/// If fewer than two traces are supplied or the traces cover different
/// years. [`try_winner_counts`] is the non-panicking variant.
pub fn winner_counts(traces: &[IntensityTrace], tz: TimeZone) -> WinnerCounts {
    match try_winner_counts(traces, tz) {
        Ok(w) => w,
        // lint: allow(panic-in-library) -- documented "# Panics" convenience wrapper; try_winner_counts is the typed-error form
        Err(e) => panic!("{e}"),
    }
}

/// [`winner_counts`] as a pure scenario function: bad inputs come back as
/// an [`AnalysisError`] instead of a panic.
///
/// # Errors
/// If fewer than two traces are supplied or the traces cover different
/// years.
pub fn try_winner_counts(
    traces: &[IntensityTrace],
    tz: TimeZone,
) -> Result<WinnerCounts, AnalysisError> {
    if traces.len() < 2 {
        return Err(AnalysisError::NotEnoughRegions(traces.len()));
    }
    let year = traces[0].series().year();
    if !traces.iter().all(|t| t.series().year() == year) {
        return Err(AnalysisError::YearMismatch);
    }
    let hours = traces[0].series().len();
    let mut counts = vec![[0u32; 24]; traces.len()];
    for idx in 0..hours {
        let local_hour = ((idx as i64 + i64::from(tz.offset_hours())).rem_euclid(24)) as usize;
        let mut best = 0usize;
        let mut best_v = traces[0].series().values()[idx];
        for (r, t) in traces.iter().enumerate().skip(1) {
            let v = t.series().values()[idx];
            if v < best_v {
                best_v = v;
                best = r;
            }
        }
        counts[best][local_hour] += 1;
    }
    Ok(WinnerCounts {
        operators: traces.iter().map(|t| t.operator()).collect(),
        counts,
        tz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_timeseries::series::HourlySeries;

    fn trace_of(
        op: OperatorId,
        f: impl FnMut(hpcarbon_timeseries::datetime::HourStamp) -> f64,
    ) -> IntensityTrace {
        IntensityTrace::new(op, HourlySeries::from_fn(2021, f))
    }

    #[test]
    fn winner_counts_sum_to_days() {
        let a = trace_of(
            OperatorId::Eso,
            |st| if st.hour() < 12 { 50.0 } else { 300.0 },
        );
        let b = trace_of(
            OperatorId::Ciso,
            |st| if st.hour() < 12 { 200.0 } else { 100.0 },
        );
        let w = winner_counts(&[a, b], TimeZone::UTC);
        for h in 0..24 {
            assert_eq!(w.days_per_hour(h), 365, "hour {h}");
        }
    }

    #[test]
    fn winner_is_the_lower_trace() {
        let a = trace_of(
            OperatorId::Eso,
            |st| if st.hour() < 12 { 50.0 } else { 300.0 },
        );
        let b = trace_of(
            OperatorId::Ciso,
            |st| if st.hour() < 12 { 200.0 } else { 100.0 },
        );
        let w = winner_counts(&[a, b], TimeZone::UTC);
        for h in 0..12 {
            assert_eq!(w.plurality_winner(h), OperatorId::Eso, "hour {h}");
        }
        for h in 12..24 {
            assert_eq!(w.plurality_winner(h), OperatorId::Ciso, "hour {h}");
        }
        assert_eq!(w.total_wins(OperatorId::Eso), 12 * 365);
    }

    #[test]
    fn jst_shift_moves_the_window() {
        // ESO is cheapest during UTC hours 0-11; in JST that window is
        // hours 9-20.
        let a = trace_of(
            OperatorId::Eso,
            |st| if st.hour() < 12 { 50.0 } else { 300.0 },
        );
        let b = trace_of(OperatorId::Ciso, |_| 150.0);
        let w = winner_counts(&[a, b], TimeZone::JST);
        assert_eq!(w.plurality_winner(9), OperatorId::Eso);
        assert_eq!(w.plurality_winner(20), OperatorId::Eso);
        assert_eq!(w.plurality_winner(0), OperatorId::Ciso);
        assert_eq!(w.plurality_winner(23), OperatorId::Ciso);
    }

    #[test]
    fn ties_are_deterministic() {
        let a = trace_of(OperatorId::Eso, |_| 100.0);
        let b = trace_of(OperatorId::Ciso, |_| 100.0);
        let w = winner_counts(&[a, b], TimeZone::UTC);
        // All ties go to the first trace.
        assert_eq!(w.total_wins(OperatorId::Eso), 8760);
        assert_eq!(w.total_wins(OperatorId::Ciso), 0);
    }

    #[test]
    #[should_panic(expected = "at least two regions")]
    fn requires_two_traces() {
        let a = trace_of(OperatorId::Eso, |_| 100.0);
        let _ = winner_counts(&[a], TimeZone::UTC);
    }

    #[test]
    fn try_variant_fails_soft() {
        let a = trace_of(OperatorId::Eso, |_| 100.0);
        assert_eq!(
            try_winner_counts(std::slice::from_ref(&a), TimeZone::UTC).unwrap_err(),
            AnalysisError::NotEnoughRegions(1)
        );
        let b = IntensityTrace::new(OperatorId::Ciso, HourlySeries::from_fn(2022, |_| 90.0));
        assert_eq!(
            try_winner_counts(&[a.clone(), b], TimeZone::UTC).unwrap_err(),
            AnalysisError::YearMismatch
        );
        let c = trace_of(OperatorId::Ciso, |_| 90.0);
        assert!(try_winner_counts(&[a, c], TimeZone::UTC).is_ok());
    }

    #[test]
    fn regional_summary_and_lowest_median() {
        let a = trace_of(OperatorId::Eso, |_| 100.0);
        let b = trace_of(OperatorId::Tokyo, |_| 500.0);
        let s = regional_summary(&[a, b]);
        assert_eq!(s.len(), 2);
        assert_eq!(lowest_median_region(&s), OperatorId::Eso);
        assert_eq!(s[1].boxplot.median, 500.0);
        // Constant trace has zero CoV.
        assert!(s[0].cov_percent.abs() < 1e-9);
    }
}

/// Per-season summary of a trace — Fig. 7's caption notes that "season
/// variations also naturally exist"; this quantifies them.
#[derive(Debug, Clone)]
pub struct SeasonalSummary {
    /// Season.
    pub season: hpcarbon_timeseries::datetime::Season,
    /// Intensity distribution within the season.
    pub boxplot: BoxplotStats,
}

/// Splits a trace by meteorological season (local dates in the operator's
/// zone) and summarizes each.
pub fn seasonal_summary(trace: &IntensityTrace) -> Vec<SeasonalSummary> {
    use hpcarbon_timeseries::datetime::Season;
    let tz = trace.operator().info().tz;
    let mut buckets: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (stamp, v) in trace.series().iter() {
        let season = tz.from_utc(stamp).date().season();
        let idx = Season::ALL
            .iter()
            .position(|s| *s == season)
            // lint: allow(panic-in-library) -- Season::ALL is exhaustive over the Season enum by definition, so the position always exists
            .expect("season in ALL");
        buckets[idx].push(v);
    }
    Season::ALL
        .iter()
        .zip(buckets)
        .map(|(season, values)| SeasonalSummary {
            season: *season,
            // lint: allow(panic-in-library) -- a year-long hourly trace puts ≥ 2000 samples in every season bucket, so compute never sees an empty slice
            boxplot: BoxplotStats::compute(&values).expect("every season has hours"),
        })
        .collect()
}

#[cfg(test)]
mod seasonal_tests {
    use super::*;
    use crate::sim::simulate_year;
    use hpcarbon_timeseries::datetime::Season;

    #[test]
    fn four_seasons_cover_the_year() {
        let t = simulate_year(OperatorId::Eso, 2021, 5);
        let s = seasonal_summary(&t);
        assert_eq!(s.len(), 4);
        let seasons: Vec<Season> = s.iter().map(|x| x.season).collect();
        assert_eq!(seasons, Season::ALL.to_vec());
        for x in &s {
            assert!(x.boxplot.median > 0.0);
        }
    }

    #[test]
    fn eso_winters_are_dirtier_despite_winter_wind() {
        // GB reality (and the model): the winter demand peak outweighs the
        // winter wind boost, so winter medians sit above summer medians.
        let t = simulate_year(OperatorId::Eso, 2021, 5);
        let s = seasonal_summary(&t);
        let median = |season: Season| {
            s.iter()
                .find(|x| x.season == season)
                .expect("present")
                .boxplot
                .median
        };
        assert!(
            median(Season::Winter) > median(Season::Summer),
            "winter {} vs summer {}",
            median(Season::Winter),
            median(Season::Summer)
        );
    }

    #[test]
    fn ciso_is_seasonally_flat_by_comparison() {
        // CAISO's summer AC demand offsets its stronger summer solar: the
        // seasonal medians stay within a narrow band.
        let t = simulate_year(OperatorId::Ciso, 2021, 5);
        let s = seasonal_summary(&t);
        let meds: Vec<f64> = s.iter().map(|x| x.boxplot.median).collect();
        let max = meds.iter().copied().fold(f64::MIN, f64::max);
        let min = meds.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min < 1.15, "{meds:?}");
    }

    #[test]
    fn seasonal_spread_is_material_for_wind_heavy_grids() {
        let t = simulate_year(OperatorId::Eso, 2021, 5);
        let s = seasonal_summary(&t);
        let meds: Vec<f64> = s.iter().map(|x| x.boxplot.median).collect();
        let max = meds.iter().copied().fold(f64::MIN, f64::max);
        let min = meds.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min > 1.08, "{meds:?}");
    }
}
