//! An ESO-Carbon-Intensity-API-style interface over a trace.
//!
//! The paper obtains GB data "from ESO's public Carbon Intensity API",
//! which serves *actual* values plus *forecasts* and a coarse intensity
//! *index*. Carbon-aware schedulers plan against forecasts, not actuals,
//! so this module models forecast error too: a deterministic pseudo-noise
//! whose standard deviation grows with the forecast horizon (≈ √h scaling,
//! matching published forecast-skill curves).

use crate::trace::IntensityTrace;
use hpcarbon_sim::rng::SimRng;
use hpcarbon_timeseries::datetime::HourStamp;
use hpcarbon_units::CarbonIntensity;

/// The coarse bands served by the ESO API's `index` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum IntensityIndex {
    VeryLow,
    Low,
    Moderate,
    High,
    VeryHigh,
}

impl IntensityIndex {
    /// Bands per the ESO API's published 2021 thresholds (gCO₂/kWh).
    pub fn from_intensity(i: CarbonIntensity) -> IntensityIndex {
        let g = i.as_g_per_kwh();
        if g < 50.0 {
            IntensityIndex::VeryLow
        } else if g < 130.0 {
            IntensityIndex::Low
        } else if g < 210.0 {
            IntensityIndex::Moderate
        } else if g < 310.0 {
            IntensityIndex::High
        } else {
            IntensityIndex::VeryHigh
        }
    }

    /// Display label matching the API's strings.
    pub fn label(self) -> &'static str {
        match self {
            IntensityIndex::VeryLow => "very low",
            IntensityIndex::Low => "low",
            IntensityIndex::Moderate => "moderate",
            IntensityIndex::High => "high",
            IntensityIndex::VeryHigh => "very high",
        }
    }
}

/// One API response: forecast, actual, and index (mirrors the ESO schema).
#[derive(Debug, Clone, Copy)]
pub struct IntensityReading {
    /// The hour this reading describes.
    pub stamp: HourStamp,
    /// Forecast intensity (equals actual at horizon 0).
    pub forecast: CarbonIntensity,
    /// Actual intensity.
    pub actual: CarbonIntensity,
    /// Coarse band of the actual value.
    pub index: IntensityIndex,
}

/// Serves actuals and horizon-dependent forecasts from a trace.
#[derive(Debug, Clone)]
pub struct IntensityApi {
    trace: IntensityTrace,
    /// Relative forecast error at a 1-hour horizon (σ/mean).
    base_error: f64,
    seed: u64,
}

impl IntensityApi {
    /// Wraps a trace. `base_error` is the relative 1-hour-ahead forecast
    /// error (ESO reports ≈2–4%); error grows with √horizon.
    pub fn new(trace: IntensityTrace, base_error: f64, seed: u64) -> IntensityApi {
        assert!(
            (0.0..0.5).contains(&base_error),
            "base error must be a small relative fraction"
        );
        IntensityApi {
            trace,
            base_error,
            seed,
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &IntensityTrace {
        &self.trace
    }

    /// Actual intensity at `stamp`.
    pub fn actual(&self, stamp: HourStamp) -> CarbonIntensity {
        self.trace.at(stamp)
    }

    /// Forecast for `target`, made `horizon_hours` in advance.
    ///
    /// Deterministic: the same `(seed, target, horizon)` always yields the
    /// same forecast, so simulations are reproducible.
    pub fn forecast(&self, target: HourStamp, horizon_hours: u32) -> CarbonIntensity {
        let actual = self.actual(target).as_g_per_kwh();
        if horizon_hours == 0 {
            return CarbonIntensity::from_g_per_kwh(actual);
        }
        let sigma = self.base_error * (f64::from(horizon_hours)).sqrt();
        let mut rng = SimRng::seed_from(self.seed)
            .fork(u64::from(target.hour_of_year()))
            .fork(u64::from(horizon_hours));
        let noise = hpcarbon_sim::dist::standard_normal(&mut rng);
        CarbonIntensity::from_g_per_kwh((actual * (1.0 + sigma * noise)).max(0.0))
    }

    /// Full reading (forecast + actual + index) as the REST API returns.
    pub fn reading(&self, stamp: HourStamp, horizon_hours: u32) -> IntensityReading {
        let actual = self.actual(stamp);
        IntensityReading {
            stamp,
            forecast: self.forecast(stamp, horizon_hours),
            actual,
            index: IntensityIndex::from_intensity(actual),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::OperatorId;
    use hpcarbon_timeseries::datetime::CivilDate;
    use hpcarbon_timeseries::series::HourlySeries;

    fn api() -> IntensityApi {
        let series = HourlySeries::from_fn(2021, |st| 100.0 + f64::from(st.hour()) * 10.0);
        IntensityApi::new(IntensityTrace::new(OperatorId::Eso, series), 0.03, 99)
    }

    fn stamp(h: u8) -> HourStamp {
        HourStamp::new(CivilDate::new(2021, 4, 10).unwrap(), h).unwrap()
    }

    #[test]
    fn index_bands() {
        use IntensityIndex::*;
        let f = |g: f64| IntensityIndex::from_intensity(CarbonIntensity::from_g_per_kwh(g));
        assert_eq!(f(10.0), VeryLow);
        assert_eq!(f(60.0), Low);
        assert_eq!(f(150.0), Moderate);
        assert_eq!(f(250.0), High);
        assert_eq!(f(500.0), VeryHigh);
        assert!(VeryLow < VeryHigh);
        assert_eq!(Moderate.label(), "moderate");
    }

    #[test]
    fn zero_horizon_forecast_is_exact() {
        let api = api();
        let s = stamp(14);
        assert_eq!(
            api.forecast(s, 0).as_g_per_kwh(),
            api.actual(s).as_g_per_kwh()
        );
    }

    #[test]
    fn forecast_is_deterministic() {
        let api = api();
        let s = stamp(14);
        assert_eq!(
            api.forecast(s, 24).as_g_per_kwh(),
            api.forecast(s, 24).as_g_per_kwh()
        );
    }

    #[test]
    fn forecast_error_grows_with_horizon() {
        let api = api();
        // Measure RMS relative error across many target hours.
        let rms = |horizon: u32| {
            let mut acc = 0.0;
            let mut n = 0;
            for d in 1..=28u8 {
                let s = HourStamp::new(CivilDate::new(2021, 6, d).unwrap(), 12).unwrap();
                let a = api.actual(s).as_g_per_kwh();
                let f = api.forecast(s, horizon).as_g_per_kwh();
                acc += ((f - a) / a).powi(2);
                n += 1;
            }
            (acc / f64::from(n)).sqrt()
        };
        let short = rms(1);
        let long = rms(48);
        assert!(
            long > short,
            "48h error {long} must exceed 1h error {short}"
        );
        // Magnitudes roughly match sigma * sqrt(h).
        assert!(short < 0.12);
        assert!(long < 0.60);
    }

    #[test]
    fn forecast_never_negative() {
        let series = HourlySeries::constant(2021, 1.0); // tiny intensity
        let api = IntensityApi::new(IntensityTrace::new(OperatorId::Eso, series), 0.49, 3);
        for h in 0..200u32 {
            let s = HourStamp::from_hour_of_year(2021, h);
            assert!(api.forecast(s, 100).as_g_per_kwh() >= 0.0);
        }
    }

    #[test]
    fn reading_is_consistent() {
        let api = api();
        let r = api.reading(stamp(20), 0);
        assert_eq!(r.actual.as_g_per_kwh(), 300.0);
        assert_eq!(r.forecast.as_g_per_kwh(), 300.0);
        assert_eq!(r.index, IntensityIndex::High);
    }

    #[test]
    #[should_panic(expected = "base error")]
    fn rejects_huge_base_error() {
        let series = HourlySeries::constant(2021, 100.0);
        let _ = IntensityApi::new(IntensityTrace::new(OperatorId::Eso, series), 0.9, 1);
    }
}
