//! Generation fuels and their life-cycle emission factors.
//!
//! Factors are the IPCC AR5 / UNECE life-cycle medians commonly used by
//! Electricity Maps and the ESO API. The paper's framing: "Sustainable
//! sources of energy such as wind or solar have a carbon intensity of less
//! than 50 gCO2/kWh while non-renewable sources like coal have a carbon
//! intensity of more than 800 gCO2/kWh."

use hpcarbon_units::CarbonIntensity;

/// Generation technologies modeled by the dispatch simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fuel {
    /// Hard coal steam plants.
    Coal,
    /// Combined/open-cycle gas turbines.
    Gas,
    /// Oil/diesel peakers.
    Oil,
    /// Nuclear fission.
    Nuclear,
    /// Hydroelectric (reservoir or run-of-river).
    Hydro,
    /// Onshore/offshore wind.
    Wind,
    /// Utility photovoltaics.
    Solar,
    /// Biomass steam plants.
    Biomass,
    /// Net imports over interconnectors; the factor depends on the
    /// neighbouring grid and is parameterized per region.
    Imports,
}

impl Fuel {
    /// Every fuel, in merit-order-agnostic listing order.
    pub const ALL: [Fuel; 9] = [
        Fuel::Coal,
        Fuel::Gas,
        Fuel::Oil,
        Fuel::Nuclear,
        Fuel::Hydro,
        Fuel::Wind,
        Fuel::Solar,
        Fuel::Biomass,
        Fuel::Imports,
    ];

    /// Life-cycle emission factor (gCO₂e/kWh). For [`Fuel::Imports`] this
    /// is a default; regions override it with their interconnect mix.
    pub fn emission_factor(self) -> CarbonIntensity {
        let g = match self {
            Fuel::Coal => 820.0,
            Fuel::Gas => 490.0,
            Fuel::Oil => 650.0,
            Fuel::Nuclear => 12.0,
            Fuel::Hydro => 24.0,
            Fuel::Wind => 11.0,
            Fuel::Solar => 41.0,
            Fuel::Biomass => 230.0,
            Fuel::Imports => 450.0,
        };
        CarbonIntensity::from_g_per_kwh(g)
    }

    /// True for fuels the paper calls "sustainable sources" (< 50 g/kWh).
    pub fn is_low_carbon(self) -> bool {
        self.emission_factor().as_g_per_kwh() < 50.0
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Fuel::Coal => "coal",
            Fuel::Gas => "gas",
            Fuel::Oil => "oil",
            Fuel::Nuclear => "nuclear",
            Fuel::Hydro => "hydro",
            Fuel::Wind => "wind",
            Fuel::Solar => "solar",
            Fuel::Biomass => "biomass",
            Fuel::Imports => "imports",
        }
    }
}

/// A generation snapshot: GW produced per fuel in one hour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GenerationMix {
    gw: [f64; 9],
}

impl GenerationMix {
    /// Empty mix.
    pub fn new() -> GenerationMix {
        GenerationMix::default()
    }

    /// Adds `gw` of generation from `fuel`.
    pub fn add(&mut self, fuel: Fuel, gw: f64) {
        debug_assert!(gw >= 0.0, "generation cannot be negative");
        self.gw[Self::index(fuel)] += gw;
    }

    /// Generation from one fuel.
    pub fn get(&self, fuel: Fuel) -> f64 {
        self.gw[Self::index(fuel)]
    }

    /// Total generation.
    pub fn total(&self) -> f64 {
        self.gw.iter().sum()
    }

    /// Share of total generation from `fuel` (0 when nothing generates).
    pub fn share(&self, fuel: Fuel) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.get(fuel) / t
        } else {
            0.0
        }
    }

    /// Emissions-weighted average intensity of the mix, with a custom
    /// factor for imports.
    pub fn intensity(&self, import_factor: CarbonIntensity) -> CarbonIntensity {
        let total = self.total();
        if total <= 0.0 {
            return CarbonIntensity::from_g_per_kwh(0.0);
        }
        let mut grams = 0.0;
        for fuel in Fuel::ALL {
            let factor = if fuel == Fuel::Imports {
                import_factor
            } else {
                fuel.emission_factor()
            };
            grams += self.get(fuel) * factor.as_g_per_kwh();
        }
        CarbonIntensity::from_g_per_kwh(grams / total)
    }

    /// Scales every fuel's output by `k` (used for renewable curtailment).
    pub fn scaled(&self, k: f64) -> GenerationMix {
        let mut out = *self;
        for v in &mut out.gw {
            *v *= k;
        }
        out
    }

    fn index(fuel: Fuel) -> usize {
        Fuel::ALL
            .iter()
            .position(|f| *f == fuel)
            // lint: allow(panic-in-library) -- Fuel::ALL is exhaustive over the Fuel enum by definition, so the position always exists
            .expect("fuel in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intensity_claims_hold() {
        // Wind/solar < 50, coal > 800, and the "20× less" comparison.
        assert!(Fuel::Wind.emission_factor().as_g_per_kwh() < 50.0);
        assert!(Fuel::Solar.emission_factor().as_g_per_kwh() < 50.0);
        assert!(Fuel::Hydro.emission_factor().as_g_per_kwh() < 50.0);
        assert!(Fuel::Coal.emission_factor().as_g_per_kwh() > 800.0);
        let ratio = Fuel::Coal.emission_factor().as_g_per_kwh()
            / Fuel::Hydro.emission_factor().as_g_per_kwh();
        assert!(ratio > 20.0, "coal/hydro = {ratio}");
    }

    #[test]
    fn low_carbon_classification() {
        assert!(Fuel::Nuclear.is_low_carbon());
        assert!(Fuel::Wind.is_low_carbon());
        assert!(!Fuel::Gas.is_low_carbon());
        assert!(!Fuel::Biomass.is_low_carbon());
    }

    #[test]
    fn mix_accumulates_and_shares() {
        let mut m = GenerationMix::new();
        m.add(Fuel::Gas, 6.0);
        m.add(Fuel::Wind, 3.0);
        m.add(Fuel::Nuclear, 1.0);
        m.add(Fuel::Gas, 0.0);
        assert_eq!(m.total(), 10.0);
        assert_eq!(m.share(Fuel::Gas), 0.6);
        assert_eq!(m.share(Fuel::Coal), 0.0);
    }

    #[test]
    fn mix_intensity_weighted_average() {
        let mut m = GenerationMix::new();
        m.add(Fuel::Coal, 1.0);
        m.add(Fuel::Wind, 1.0);
        let i = m.intensity(Fuel::Imports.emission_factor());
        assert!((i.as_g_per_kwh() - (820.0 + 11.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn import_factor_override() {
        let mut m = GenerationMix::new();
        m.add(Fuel::Imports, 2.0);
        let clean = m.intensity(CarbonIntensity::from_g_per_kwh(50.0));
        assert!((clean.as_g_per_kwh() - 50.0).abs() < 1e-9);
        let dirty = m.intensity(CarbonIntensity::from_g_per_kwh(700.0));
        assert!((dirty.as_g_per_kwh() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mix_intensity_is_zero() {
        let m = GenerationMix::new();
        assert_eq!(
            m.intensity(Fuel::Imports.emission_factor()).as_g_per_kwh(),
            0.0
        );
    }

    #[test]
    fn scaling() {
        let mut m = GenerationMix::new();
        m.add(Fuel::Solar, 4.0);
        let half = m.scaled(0.5);
        assert_eq!(half.get(Fuel::Solar), 2.0);
        assert_eq!(half.total(), 2.0);
    }
}
