//! The hourly grid dispatch simulator.
//!
//! For every hour of the year, each region:
//!
//! 1. evaluates a *demand* model — diurnal double-hump shape in local time,
//!    seasonal swing (summer- or winter-peaking), weekend reduction and an
//!    OU noise term;
//! 2. evaluates *must-run* generation (nuclear, run-of-river hydro,
//!    biomass) and *variable renewables* — wind with an OU capacity factor
//!    (slow mean reversion produces the multi-day fronts behind the UK's
//!    high CoV) and solar from an astronomical clear-sky model shaped by
//!    season and an OU cloud process;
//! 3. dispatches the residual demand through the region's merit order
//!    (coal-baseload regions dispatch coal first, carbon-priced regions
//!    dispatch it last), with unlimited marginal imports as the backstop;
//! 4. computes carbon intensity as the emissions-weighted generation mix
//!    (Eq. 6's `I_sys` input).
//!
//! Over-supply hours curtail wind/solar (keeping must-run), like real
//! system operators do.

use crate::fuel::{Fuel, GenerationMix};
use crate::regions::{OperatorId, RegionParams};
use crate::trace::IntensityTrace;
use hpcarbon_sim::process::OrnsteinUhlenbeck;
use hpcarbon_sim::rng::SimRng;
use hpcarbon_timeseries::datetime::HourStamp;
use hpcarbon_timeseries::series::HourlySeries;

/// Normalized diurnal demand deviation by local hour: overnight trough,
/// morning ramp, sustained daytime plateau, evening peak.
const DIURNAL_SHAPE: [f64; 24] = [
    -0.90, -1.00, -1.05, -1.10, -1.00, -0.80, -0.40, 0.10, 0.50, 0.70, 0.80, 0.85, 0.80, 0.75,
    0.70, 0.70, 0.75, 0.90, 1.00, 1.00, 0.80, 0.50, 0.00, -0.50,
];

/// Deterministic per-hour inputs derived from the calendar.
struct HourContext {
    /// Local hour of day.
    local_hour: usize,
    /// Local day of year (1-based).
    doy: f64,
    /// Days in the local year.
    days_in_year: f64,
    /// True on Saturday/Sunday (local).
    weekend: bool,
}

impl HourContext {
    fn at(params: &RegionParams, utc: HourStamp) -> HourContext {
        let local = params.tz.from_utc(utc);
        HourContext {
            local_hour: local.hour() as usize,
            doy: f64::from(local.date().day_of_year()),
            days_in_year: f64::from(hpcarbon_timeseries::datetime::days_in_year(
                local.date().year(),
            )),
            weekend: local.date().weekday().is_weekend(),
        }
    }

    /// Phase aligned so that 1.0 = mid-summer (Jun 21-ish), -1.0 = mid-winter.
    fn summer_phase(&self) -> f64 {
        (std::f64::consts::TAU * (self.doy - 172.0) / self.days_in_year).cos()
    }
}

/// Demand in units of average demand.
fn demand(params: &RegionParams, ctx: &HourContext, noise: f64) -> f64 {
    let diurnal = 1.0 + params.diurnal_amp * DIURNAL_SHAPE[ctx.local_hour];
    let phase = if params.summer_peaking {
        ctx.summer_phase()
    } else {
        -ctx.summer_phase()
    };
    let seasonal = 1.0 + params.seasonal_amp * phase;
    let weekend = if ctx.weekend {
        params.weekend_factor
    } else {
        1.0
    };
    (diurnal * seasonal * weekend * (1.0 + noise)).max(0.05)
}

/// Wind generation (units of average demand).
fn wind_generation(params: &RegionParams, ctx: &HourContext, cf_dev: f64) -> f64 {
    if params.wind_cap <= 0.0 {
        return 0.0;
    }
    let winter = 1.0 - params.wind_winter_boost * ctx.summer_phase();
    // Night boost peaks around 02:00 local, dips around 14:00.
    let night = 1.0
        + params.wind_night_boost
            * (std::f64::consts::TAU * (ctx.local_hour as f64 - 2.0) / 24.0).cos();
    let cf = (params.wind_cf_mean * winter * night + cf_dev).clamp(0.02, 0.95);
    params.wind_cap * cf
}

/// Solar generation (units of average demand).
fn solar_generation(params: &RegionParams, ctx: &HourContext, cloud_dev: f64) -> f64 {
    if params.solar_cap <= 0.0 {
        return 0.0;
    }
    let daylen = 12.0 + params.daylen_amp * ctx.summer_phase();
    let rise = 12.0 - daylen / 2.0;
    let set = 12.0 + daylen / 2.0;
    let h = ctx.local_hour as f64 + 0.5; // mid-hour sun position
    if h <= rise || h >= set {
        return 0.0;
    }
    let elevation = (std::f64::consts::PI * (h - rise) / daylen).sin();
    // Seasonal irradiance: stronger sun in summer even at equal day length.
    let irradiance = 0.75 + 0.25 * ctx.summer_phase();
    let clear_sky = elevation.powf(1.2) * irradiance;
    let cloud = (1.0 - (params.cloud_mean + cloud_dev)).clamp(0.10, 1.0);
    params.solar_cap * clear_sky * cloud
}

/// One dispatch step: returns the full generation mix meeting `demand`.
/// `nuclear_availability` models planned/forced outages of the nuclear
/// fleet (multi-week excursions below 1.0).
fn dispatch(
    params: &RegionParams,
    demand: f64,
    wind: f64,
    solar: f64,
    nuclear_availability: f64,
) -> GenerationMix {
    let nuclear = params.nuclear * nuclear_availability.clamp(0.0, 1.0);
    let mut mix = GenerationMix::new();
    mix.add(Fuel::Nuclear, nuclear);
    mix.add(Fuel::Hydro, params.hydro_ror);
    mix.add(Fuel::Biomass, params.biomass);
    let must_run = nuclear + params.hydro_ror + params.biomass;
    let vre = wind + solar;

    if must_run + vre >= demand {
        // Over-supply: curtail wind/solar proportionally; must-run stays.
        let usable_vre = (demand - must_run).max(0.0);
        let k = if vre > 0.0 { usable_vre / vre } else { 0.0 };
        mix.add(Fuel::Wind, wind * k);
        mix.add(Fuel::Solar, solar * k);
        return mix;
    }

    mix.add(Fuel::Wind, wind);
    mix.add(Fuel::Solar, solar);
    let mut residual = demand - must_run - vre;
    for entry in &params.merit {
        if residual <= 0.0 {
            break;
        }
        let take = residual.min(entry.capacity);
        mix.add(entry.fuel, take);
        residual -= take;
    }
    if residual > 0.0 {
        mix.add(Fuel::Imports, residual);
    }
    mix
}

/// A stateful per-region simulator: a deterministic stream of hourly
/// generation mixes. [`simulate_year`] and [`annual_fuel_shares`] are both
/// thin loops over [`RegionSim::step`].
pub struct RegionSim {
    params: RegionParams,
    demand_rng: SimRng,
    wind_rng: SimRng,
    cloud_rng: SimRng,
    outage_rng: SimRng,
    demand_ou: OrnsteinUhlenbeck,
    wind_ou: OrnsteinUhlenbeck,
    cloud_ou: OrnsteinUhlenbeck,
    outage_ou: OrnsteinUhlenbeck,
}

impl RegionSim {
    /// Creates the simulator. Deterministic in `(operator, seed)`.
    pub fn new(operator: OperatorId, seed: u64) -> RegionSim {
        let params = operator.params();
        let root = SimRng::seed_from(seed).substream(operator.info().short);
        let mut demand_rng = root.substream("demand");
        let mut wind_rng = root.substream("wind");
        let mut cloud_rng = root.substream("cloud");
        let mut outage_rng = root.substream("outage");

        // Region parameters specify the *stationary* standard deviation of
        // each OU process; convert to the volatility parameter
        // (sd = σ/√(2θ)).
        let vol = |sd: f64, theta: f64| sd * (2.0 * theta).sqrt();
        let mut demand_ou = OrnsteinUhlenbeck::new(
            0.0,
            params.demand_theta,
            vol(params.demand_sigma, params.demand_theta),
            1.0,
        );
        let mut wind_ou = OrnsteinUhlenbeck::new(
            0.0,
            params.wind_theta,
            vol(params.wind_sigma, params.wind_theta),
            1.0,
        );
        let mut cloud_ou = OrnsteinUhlenbeck::new(
            0.0,
            params.cloud_theta,
            vol(params.cloud_sigma, params.cloud_theta),
            1.0,
        );
        // Nuclear fleet availability: multi-week planned/forced outage
        // excursions (theta 0.004/h ≈ 250 h correlation time).
        let mut outage_ou = OrnsteinUhlenbeck::new(0.0, 0.004, vol(0.06, 0.004), 1.0);
        demand_ou.reset_stationary(&mut demand_rng);
        wind_ou.reset_stationary(&mut wind_rng);
        cloud_ou.reset_stationary(&mut cloud_rng);
        outage_ou.reset_stationary(&mut outage_rng);
        RegionSim {
            params,
            demand_rng,
            wind_rng,
            cloud_rng,
            outage_rng,
            demand_ou,
            wind_ou,
            cloud_ou,
            outage_ou,
        }
    }

    /// The region's parameters.
    pub fn params(&self) -> &RegionParams {
        &self.params
    }

    /// Advances one hour and returns the dispatched generation mix.
    pub fn step(&mut self, stamp: HourStamp) -> GenerationMix {
        let ctx = HourContext::at(&self.params, stamp);
        let d = demand(
            &self.params,
            &ctx,
            self.demand_ou.step(&mut self.demand_rng),
        );
        let w = wind_generation(&self.params, &ctx, self.wind_ou.step(&mut self.wind_rng));
        let s = solar_generation(&self.params, &ctx, self.cloud_ou.step(&mut self.cloud_rng));
        let avail = (1.0 + self.outage_ou.step(&mut self.outage_rng)).clamp(0.75, 1.0);
        dispatch(&self.params, d, w, s, avail)
    }
}

/// Simulates one region for one civil year, returning the hourly intensity
/// trace. Deterministic in `(operator, year, seed)`.
pub fn simulate_year(operator: OperatorId, year: i32, seed: u64) -> IntensityTrace {
    let mut sim = RegionSim::new(operator, seed);
    let import_intensity = sim.params().import_intensity;
    let series = HourlySeries::from_fn(year, |stamp| {
        sim.step(stamp).intensity(import_intensity).as_g_per_kwh()
    });
    IntensityTrace::new(operator, series)
}

/// Simulates all seven Table 3 regions in parallel (one worker per region,
/// deterministically seeded per region so the result is identical to a
/// sequential run).
pub fn simulate_all_regions(year: i32, seed: u64) -> Vec<IntensityTrace> {
    hpcarbon_sim::par::par_map(&OperatorId::ALL, |_, op| simulate_year(*op, year, seed))
}

/// Annual average generation shares per fuel for a simulated region-year —
/// the simulator's "energy mix", validating that each region tells the
/// physical story its parameters intend (ESO wind-heavy, MISO coal-heavy,
/// CISO solar-rich, …).
pub fn annual_fuel_shares(operator: OperatorId, year: i32, seed: u64) -> Vec<(Fuel, f64)> {
    let mut sim = RegionSim::new(operator, seed);
    let mut totals = GenerationMix::new();
    for idx in 0..hpcarbon_timeseries::datetime::hours_in_year(year) {
        let mix = sim.step(HourStamp::from_hour_of_year(year, idx));
        for fuel in Fuel::ALL {
            totals.add(fuel, mix.get(fuel));
        }
    }
    Fuel::ALL.iter().map(|f| (*f, totals.share(*f))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_timeseries::datetime::CivilDate;

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_year(OperatorId::Eso, 2021, 7);
        let b = simulate_year(OperatorId::Eso, 2021, 7);
        assert_eq!(a.series().values(), b.series().values());
        let c = simulate_year(OperatorId::Eso, 2021, 8);
        assert_ne!(a.series().values(), c.series().values());
    }

    #[test]
    fn regions_have_distinct_traces_from_same_seed() {
        let eso = simulate_year(OperatorId::Eso, 2021, 7);
        let tk = simulate_year(OperatorId::Tokyo, 2021, 7);
        assert_ne!(eso.series().values(), tk.series().values());
    }

    #[test]
    fn parallel_matches_sequential() {
        let par = simulate_all_regions(2021, 42);
        for (i, op) in OperatorId::ALL.iter().enumerate() {
            let seq = simulate_year(*op, 2021, 42);
            assert_eq!(par[i].series().values(), seq.series().values(), "{op:?}");
        }
    }

    #[test]
    fn intensities_are_physical() {
        for trace in simulate_all_regions(2021, 1) {
            for (_, v) in trace.series().iter() {
                assert!(v.is_finite());
                // Bounded by the dirtiest fuel (coal 820) and cleanest
                // possible mix (> wind's 11).
                assert!(
                    (5.0..=850.0).contains(&v),
                    "{}: {v}",
                    trace.operator().info().short
                );
            }
        }
    }

    #[test]
    fn solar_is_zero_at_night() {
        let params = OperatorId::Ciso.params();
        let midnight_utc = HourStamp::new(CivilDate::new(2021, 6, 15).unwrap(), 8).unwrap();
        // UTC 08:00 = midnight PST.
        let ctx = HourContext::at(&params, midnight_utc);
        assert_eq!(ctx.local_hour, 0);
        assert_eq!(solar_generation(&params, &ctx, 0.0), 0.0);
        // Local noon (UTC 20:00) in June: strong solar.
        let noon_utc = HourStamp::new(CivilDate::new(2021, 6, 15).unwrap(), 20).unwrap();
        let ctx = HourContext::at(&params, noon_utc);
        assert_eq!(ctx.local_hour, 12);
        assert!(solar_generation(&params, &ctx, 0.0) > 0.4);
    }

    #[test]
    fn solar_stronger_in_summer_than_winter() {
        let params = OperatorId::Ciso.params();
        let summer = HourStamp::new(CivilDate::new(2021, 6, 21).unwrap(), 20).unwrap();
        let winter = HourStamp::new(CivilDate::new(2021, 12, 21).unwrap(), 20).unwrap();
        let s = solar_generation(&params, &HourContext::at(&params, summer), 0.0);
        let w = solar_generation(&params, &HourContext::at(&params, winter), 0.0);
        assert!(s > w, "summer {s} vs winter {w}");
    }

    #[test]
    fn demand_peaks_in_the_evening() {
        let params = OperatorId::Ercot.params();
        let day = CivilDate::new(2021, 7, 14).unwrap(); // a Wednesday
        let at = |utc_hour: u8| {
            let ctx = HourContext::at(&params, HourStamp::new(day, utc_hour).unwrap());
            demand(&params, &ctx, 0.0)
        };
        // CST: local 18:00 = UTC 0:00 next day; use UTC hours mapping to
        // local 3 AM (UTC 9) vs local 18:00 (UTC 0 of the same civil UTC day
        // maps to local 18:00 of the prior day — simpler: compare two UTC
        // hours whose local hours are 3 and 19).
        let trough = at(9); // local 03:00
        let peak = at(1); // local 19:00
        assert!(peak > trough * 1.2, "peak {peak} trough {trough}");
    }

    #[test]
    fn weekend_demand_is_lower() {
        let params = OperatorId::Eso.params();
        let saturday = CivilDate::new(2021, 7, 17).unwrap();
        let wednesday = CivilDate::new(2021, 7, 14).unwrap();
        let d_sat = demand(
            &params,
            &HourContext::at(&params, HourStamp::new(saturday, 12).unwrap()),
            0.0,
        );
        let d_wed = demand(
            &params,
            &HourContext::at(&params, HourStamp::new(wednesday, 12).unwrap()),
            0.0,
        );
        assert!(d_sat < d_wed);
    }

    #[test]
    fn dispatch_meets_demand_exactly() {
        let params = OperatorId::Eso.params();
        for (d, w, s) in [
            (1.0, 0.2, 0.05),
            (0.7, 0.5, 0.0),
            (1.3, 0.05, 0.1),
            (0.3, 0.6, 0.3), // over-supply -> curtailment
        ] {
            let mix = dispatch(&params, d, w, s, 1.0);
            assert!(
                (mix.total() - d).abs() < 1e-9,
                "demand {d}: total {}",
                mix.total()
            );
        }
    }

    #[test]
    fn curtailment_keeps_must_run() {
        let params = OperatorId::Eso.params();
        // Absurd over-supply: demand below must-run.
        let mix = dispatch(&params, 0.1, 2.0, 1.0, 1.0);
        assert_eq!(mix.get(Fuel::Wind), 0.0);
        assert_eq!(mix.get(Fuel::Solar), 0.0);
        assert!(mix.get(Fuel::Nuclear) > 0.0);
    }

    #[test]
    fn more_wind_means_cleaner_dispatch() {
        let params = OperatorId::Eso.params();
        let dirty = dispatch(&params, 1.0, 0.05, 0.0, 1.0).intensity(params.import_intensity);
        let clean = dispatch(&params, 1.0, 0.6, 0.0, 1.0).intensity(params.import_intensity);
        assert!(clean < dirty);
    }

    #[test]
    fn coal_first_regions_are_dirtier_at_baseload() {
        // At identical low residual, MISO (coal first) is dirtier than
        // ESO (gas first).
        let miso = OperatorId::Miso.params();
        let eso = OperatorId::Eso.params();
        let m = dispatch(&miso, 0.6, 0.1, 0.0, 1.0).intensity(miso.import_intensity);
        let e = dispatch(&eso, 0.6, 0.1, 0.0, 1.0).intensity(eso.import_intensity);
        assert!(m.as_g_per_kwh() > e.as_g_per_kwh() + 100.0);
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;

    fn share(shares: &[(Fuel, f64)], fuel: Fuel) -> f64 {
        shares.iter().find(|(f, _)| *f == fuel).expect("present").1
    }

    #[test]
    fn shares_sum_to_one() {
        for op in [OperatorId::Eso, OperatorId::Miso, OperatorId::Tokyo] {
            let shares = annual_fuel_shares(op, 2021, 9);
            let total: f64 = shares.iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "{op:?}: {total}");
        }
    }

    #[test]
    fn eso_mix_is_wind_and_gas() {
        // GB 2021 reality check: wind ~20-35%, gas the largest fossil,
        // negligible coal.
        let shares = annual_fuel_shares(OperatorId::Eso, 2021, 9);
        let wind = share(&shares, Fuel::Wind);
        let gas = share(&shares, Fuel::Gas);
        let coal = share(&shares, Fuel::Coal);
        assert!((0.18..0.40).contains(&wind), "wind {wind}");
        assert!((0.25..0.55).contains(&gas), "gas {gas}");
        assert!(coal < 0.05, "coal {coal}");
    }

    #[test]
    fn miso_mix_is_coal_heavy() {
        let shares = annual_fuel_shares(OperatorId::Miso, 2021, 9);
        let coal = share(&shares, Fuel::Coal);
        assert!(coal > 0.30, "coal {coal}");
        assert!(coal > share(&shares, Fuel::Wind));
    }

    #[test]
    fn ciso_mix_is_solar_rich_and_coal_free() {
        let shares = annual_fuel_shares(OperatorId::Ciso, 2021, 9);
        assert!(share(&shares, Fuel::Solar) > 0.10, "solar too small");
        assert_eq!(share(&shares, Fuel::Coal), 0.0);
    }

    #[test]
    fn tokyo_has_no_nuclear_in_2021() {
        let shares = annual_fuel_shares(OperatorId::Tokyo, 2021, 9);
        assert_eq!(share(&shares, Fuel::Nuclear), 0.0);
        assert!(share(&shares, Fuel::Gas) > 0.40);
    }

    #[test]
    fn region_sim_matches_simulate_year() {
        // The refactored RegionSim drives simulate_year: stepping it
        // manually reproduces the trace exactly.
        let trace = simulate_year(OperatorId::Ercot, 2021, 3);
        let mut sim = RegionSim::new(OperatorId::Ercot, 3);
        let import = sim.params().import_intensity;
        for idx in [0u32, 1, 100, 5000] {
            // Re-create a fresh sim each time and fast-forward, because
            // the stream is stateful.
            let mut s2 = RegionSim::new(OperatorId::Ercot, 3);
            let mut value = 0.0;
            for k in 0..=idx {
                value = s2
                    .step(HourStamp::from_hour_of_year(2021, k))
                    .intensity(import)
                    .as_g_per_kwh();
            }
            assert_eq!(value, trace.series().at(idx), "hour {idx}");
        }
        let _ = &mut sim;
    }
}
