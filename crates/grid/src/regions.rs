//! The seven power-system operators of the paper's Table 3, with the
//! physical parameters of each region's simulated generation stack.
//!
//! Parameter provenance: fleet compositions approximate each operator's
//! public 2021 generation mix (ESO's wind-heavy stack with gas on the
//! margin, CISO's solar duck curve plus imports, ERCOT's nocturnal wind and
//! coal baseload, PJM/MISO's nuclear+coal baseload, TEPCO/KEPCO's
//! LNG-dominated fleets with KEPCO's restarted nuclear). Magnitudes are
//! normalized to average regional demand = 1.0 and calibrated so the
//! simulated year lands on the paper's Fig. 6 statistics; see the
//! calibration targets on [`OperatorId::calibration`].

use crate::fuel::Fuel;
use hpcarbon_timeseries::datetime::TimeZone;
use hpcarbon_units::CarbonIntensity;

/// Independent system operators studied by the paper (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperatorId {
    /// Kansai Electric Power (Japan, Kansai region).
    Kansai,
    /// TEPCO Power Grid (Japan, Tokyo region).
    Tokyo,
    /// National Grid ESO (United Kingdom, Great Britain).
    Eso,
    /// California Independent System Operator (US, California).
    Ciso,
    /// PJM Interconnection (US, Mid-Atlantic).
    Pjm,
    /// Midcontinent ISO (US/Canada, Midwest + Manitoba).
    Miso,
    /// Electric Reliability Council of Texas (US, Texas).
    Ercot,
}

/// Table 3 row: operator identity and region of operation.
#[derive(Debug, Clone, Copy)]
pub struct OperatorInfo {
    /// Enum id.
    pub id: OperatorId,
    /// Short code used in the paper's figures (KN, TK, ESO, …).
    pub short: &'static str,
    /// Full operator name.
    pub name: &'static str,
    /// Country of operation.
    pub country: &'static str,
    /// Region of operation.
    pub region: &'static str,
    /// Local (standard) time zone.
    pub tz: TimeZone,
}

/// Fig. 6 calibration targets for a region's simulated year.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationTarget {
    /// Expected annual median intensity band (gCO₂/kWh).
    pub median_band: (f64, f64),
    /// Expected CoV band (%).
    pub cov_band: (f64, f64),
}

/// One rung of a region's dispatchable merit order.
#[derive(Debug, Clone, Copy)]
pub struct DispatchEntry {
    /// The fuel dispatched at this rung.
    pub fuel: Fuel,
    /// Capacity in units of average regional demand.
    pub capacity: f64,
}

/// The full parameter set of a simulated region.
#[derive(Debug, Clone)]
pub struct RegionParams {
    /// Local time zone (drives diurnal shapes).
    pub tz: TimeZone,
    /// Half-amplitude of day-length seasonality in hours (latitude proxy).
    pub daylen_amp: f64,
    /// Relative seasonal demand swing.
    pub seasonal_amp: f64,
    /// True when demand peaks in summer (air conditioning) rather than
    /// winter (heating/lighting).
    pub summer_peaking: bool,
    /// Relative diurnal demand swing.
    pub diurnal_amp: f64,
    /// Weekend demand multiplier (< 1).
    pub weekend_factor: f64,
    /// Stationary standard deviation of the multiplicative demand noise.
    pub demand_sigma: f64,
    /// OU mean-reversion rate of demand noise (per hour).
    pub demand_theta: f64,
    /// Must-run nuclear output.
    pub nuclear: f64,
    /// Must-run (run-of-river) hydro output.
    pub hydro_ror: f64,
    /// Must-run biomass output.
    pub biomass: f64,
    /// Wind fleet capacity.
    pub wind_cap: f64,
    /// Mean wind capacity factor.
    pub wind_cf_mean: f64,
    /// Stationary standard deviation of the wind capacity factor.
    pub wind_sigma: f64,
    /// OU mean-reversion rate of wind (per hour; small = multi-day fronts).
    pub wind_theta: f64,
    /// Relative winter boost of wind output (UK-style winter storms).
    pub wind_winter_boost: f64,
    /// Relative nocturnal boost of wind output (Texas-style night wind).
    pub wind_night_boost: f64,
    /// Solar fleet capacity.
    pub solar_cap: f64,
    /// Mean cloudiness in [0, 1) (fraction of clear-sky output lost).
    pub cloud_mean: f64,
    /// Stationary standard deviation of cloudiness.
    pub cloud_sigma: f64,
    /// OU mean-reversion rate of cloudiness (per hour).
    pub cloud_theta: f64,
    /// Dispatchable merit order (first rung dispatched first).
    pub merit: Vec<DispatchEntry>,
    /// Emission factor of marginal imports (the unlimited backstop).
    pub import_intensity: CarbonIntensity,
}

impl OperatorId {
    /// All operators in Table 3 order.
    pub const ALL: [OperatorId; 7] = [
        OperatorId::Kansai,
        OperatorId::Tokyo,
        OperatorId::Eso,
        OperatorId::Ciso,
        OperatorId::Pjm,
        OperatorId::Miso,
        OperatorId::Ercot,
    ];

    /// The three operators Fig. 7 compares ("the three operator regions
    /// with the lowest medium carbon intensity").
    pub const FIG7_REGIONS: [OperatorId; 3] =
        [OperatorId::Eso, OperatorId::Ciso, OperatorId::Ercot];

    /// Table 3 metadata.
    pub fn info(self) -> OperatorInfo {
        match self {
            OperatorId::Kansai => OperatorInfo {
                id: self,
                short: "KN",
                name: "Kansai Electric Power",
                country: "Japan",
                region: "Kansai Region",
                tz: TimeZone::JST,
            },
            OperatorId::Tokyo => OperatorInfo {
                id: self,
                short: "TK",
                name: "TEPCO Power Grid",
                country: "Japan",
                region: "Tokyo Region",
                tz: TimeZone::JST,
            },
            OperatorId::Eso => OperatorInfo {
                id: self,
                short: "ESO",
                name: "Electricity System Operator",
                country: "United Kingdom",
                region: "Great Britain",
                tz: TimeZone::GMT,
            },
            OperatorId::Ciso => OperatorInfo {
                id: self,
                short: "CISO",
                name: "California Independent System Operator",
                country: "United States",
                region: "California",
                tz: TimeZone::PST,
            },
            OperatorId::Pjm => OperatorInfo {
                id: self,
                short: "PJM",
                name: "Pennsylvania-New Jersey-Maryland Interconnection",
                country: "United States",
                region: "Mid-Atlantic US",
                tz: TimeZone::EST,
            },
            OperatorId::Miso => OperatorInfo {
                id: self,
                short: "MISO",
                name: "Midcontinent Independent System Operator",
                country: "United States, Canada",
                region: "Midwest US, Manitoba",
                tz: TimeZone::CST,
            },
            OperatorId::Ercot => OperatorInfo {
                id: self,
                short: "ERCOT",
                name: "Electric Reliability Council of Texas",
                country: "United States",
                region: "Texas",
                tz: TimeZone::CST,
            },
        }
    }

    /// Fig. 6 calibration bands asserted by the integration tests.
    pub fn calibration(self) -> CalibrationTarget {
        match self {
            // Japan: fossil-dominated, low variability.
            OperatorId::Kansai => CalibrationTarget {
                median_band: (330.0, 480.0),
                cov_band: (3.0, 14.0),
            },
            OperatorId::Tokyo => CalibrationTarget {
                median_band: (470.0, 620.0),
                cov_band: (3.0, 14.0),
            },
            // GB: lowest median, highest variability.
            OperatorId::Eso => CalibrationTarget {
                median_band: (130.0, 230.0),
                cov_band: (20.0, 40.0),
            },
            OperatorId::Ciso => CalibrationTarget {
                median_band: (180.0, 300.0),
                cov_band: (18.0, 36.0),
            },
            OperatorId::Pjm => CalibrationTarget {
                median_band: (330.0, 460.0),
                cov_band: (5.0, 16.0),
            },
            OperatorId::Miso => CalibrationTarget {
                median_band: (460.0, 620.0),
                cov_band: (4.0, 15.0),
            },
            OperatorId::Ercot => CalibrationTarget {
                median_band: (330.0, 470.0),
                cov_band: (12.0, 26.0),
            },
        }
    }

    /// The simulated generation-stack parameters for this region.
    pub fn params(self) -> RegionParams {
        use Fuel::*;
        match self {
            // KEPCO: restarted nuclear + LNG, some coal baseload, solar.
            OperatorId::Kansai => RegionParams {
                tz: TimeZone::JST,
                daylen_amp: 2.2,
                seasonal_amp: 0.14,
                summer_peaking: true,
                diurnal_amp: 0.16,
                weekend_factor: 0.95,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.22,
                hydro_ror: 0.08,
                biomass: 0.01,
                wind_cap: 0.01,
                wind_cf_mean: 0.25,
                wind_sigma: 0.10,
                wind_theta: 0.05,
                wind_winter_boost: 0.0,
                wind_night_boost: 0.0,
                solar_cap: 0.22,
                cloud_mean: 0.35,
                cloud_sigma: 0.10,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.20,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 0.80,
                    },
                    DispatchEntry {
                        fuel: Oil,
                        capacity: 0.08,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(500.0),
            },
            // TEPCO: no nuclear in 2021, LNG-dominated with coal baseload.
            OperatorId::Tokyo => RegionParams {
                tz: TimeZone::JST,
                daylen_amp: 2.2,
                seasonal_amp: 0.16,
                summer_peaking: true,
                diurnal_amp: 0.18,
                weekend_factor: 0.95,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.0,
                hydro_ror: 0.05,
                biomass: 0.02,
                wind_cap: 0.01,
                wind_cf_mean: 0.25,
                wind_sigma: 0.10,
                wind_theta: 0.05,
                wind_winter_boost: 0.0,
                wind_night_boost: 0.0,
                solar_cap: 0.22,
                cloud_mean: 0.35,
                cloud_sigma: 0.10,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.28,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 0.90,
                    },
                    DispatchEntry {
                        fuel: Oil,
                        capacity: 0.10,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(500.0),
            },
            // National Grid ESO: wind on a gas margin; winter-peaking
            // demand; large multi-day wind fronts drive the high CoV.
            OperatorId::Eso => RegionParams {
                tz: TimeZone::GMT,
                daylen_amp: 4.3,
                seasonal_amp: 0.12,
                summer_peaking: false,
                diurnal_amp: 0.18,
                weekend_factor: 0.94,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.21,
                hydro_ror: 0.015,
                biomass: 0.07,
                wind_cap: 0.85,
                wind_cf_mean: 0.36,
                wind_sigma: 0.13,
                wind_theta: 0.035,
                wind_winter_boost: 0.25,
                wind_night_boost: 0.05,
                solar_cap: 0.30,
                cloud_mean: 0.45,
                cloud_sigma: 0.18,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Hydro,
                        capacity: 0.02,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 1.10,
                    },
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.03,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(250.0),
            },
            // CAISO: the solar duck curve; gas + imports on the evening
            // ramp; drought-reduced hydro.
            OperatorId::Ciso => RegionParams {
                tz: TimeZone::PST,
                daylen_amp: 2.4,
                seasonal_amp: 0.15,
                summer_peaking: true,
                diurnal_amp: 0.20,
                weekend_factor: 0.96,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.10,
                hydro_ror: 0.07,
                biomass: 0.02,
                wind_cap: 0.32,
                wind_cf_mean: 0.30,
                wind_sigma: 0.15,
                wind_theta: 0.05,
                wind_winter_boost: 0.0,
                wind_night_boost: 0.35,
                solar_cap: 0.95,
                cloud_mean: 0.15,
                cloud_sigma: 0.10,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Hydro,
                        capacity: 0.06,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 0.55,
                    },
                    DispatchEntry {
                        fuel: Imports,
                        capacity: 0.30,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 0.40,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(330.0),
            },
            // PJM: nuclear + coal baseload, gas marginal; low variability.
            OperatorId::Pjm => RegionParams {
                tz: TimeZone::EST,
                daylen_amp: 2.6,
                seasonal_amp: 0.15,
                summer_peaking: true,
                diurnal_amp: 0.18,
                weekend_factor: 0.95,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.35,
                hydro_ror: 0.02,
                biomass: 0.01,
                wind_cap: 0.16,
                wind_cf_mean: 0.30,
                wind_sigma: 0.15,
                wind_theta: 0.05,
                wind_winter_boost: 0.1,
                wind_night_boost: 0.1,
                solar_cap: 0.05,
                cloud_mean: 0.35,
                cloud_sigma: 0.15,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.33,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 0.90,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(600.0),
            },
            // MISO: the most coal-heavy stack; highest median intensity.
            OperatorId::Miso => RegionParams {
                tz: TimeZone::CST,
                daylen_amp: 2.9,
                seasonal_amp: 0.16,
                summer_peaking: true,
                diurnal_amp: 0.17,
                weekend_factor: 0.95,
                demand_sigma: 0.02,
                demand_theta: 0.2,
                nuclear: 0.13,
                hydro_ror: 0.01,
                biomass: 0.005,
                wind_cap: 0.34,
                wind_cf_mean: 0.34,
                wind_sigma: 0.16,
                wind_theta: 0.05,
                wind_winter_boost: 0.1,
                wind_night_boost: 0.15,
                solar_cap: 0.02,
                cloud_mean: 0.35,
                cloud_sigma: 0.15,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.45,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 1.00,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(600.0),
            },
            // ERCOT: nocturnal wind + coal baseload + hot-summer demand.
            OperatorId::Ercot => RegionParams {
                tz: TimeZone::CST,
                daylen_amp: 2.0,
                seasonal_amp: 0.25,
                summer_peaking: true,
                diurnal_amp: 0.22,
                weekend_factor: 0.96,
                demand_sigma: 0.025,
                demand_theta: 0.2,
                nuclear: 0.11,
                hydro_ror: 0.003,
                biomass: 0.003,
                wind_cap: 0.75,
                wind_cf_mean: 0.35,
                wind_sigma: 0.14,
                wind_theta: 0.045,
                wind_winter_boost: 0.05,
                wind_night_boost: 0.35,
                solar_cap: 0.12,
                cloud_mean: 0.25,
                cloud_sigma: 0.12,
                cloud_theta: 0.08,
                merit: vec![
                    DispatchEntry {
                        fuel: Coal,
                        capacity: 0.22,
                    },
                    DispatchEntry {
                        fuel: Gas,
                        capacity: 1.20,
                    },
                ],
                import_intensity: CarbonIntensity::from_g_per_kwh(500.0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_metadata_matches_paper() {
        assert_eq!(OperatorId::ALL.len(), 7);
        let eso = OperatorId::Eso.info();
        assert_eq!(eso.short, "ESO");
        assert_eq!(eso.country, "United Kingdom");
        assert_eq!(eso.region, "Great Britain");
        let kn = OperatorId::Kansai.info();
        assert_eq!(kn.short, "KN");
        assert_eq!(kn.tz, TimeZone::JST);
        let miso = OperatorId::Miso.info();
        assert!(miso.country.contains("Canada"));
        let ercot = OperatorId::Ercot.info();
        assert_eq!(ercot.region, "Texas");
        assert_eq!(ercot.tz, TimeZone::CST);
    }

    #[test]
    fn fig7_regions_are_the_low_carbon_three() {
        assert_eq!(
            OperatorId::FIG7_REGIONS,
            [OperatorId::Eso, OperatorId::Ciso, OperatorId::Ercot]
        );
    }

    #[test]
    fn params_are_physically_sane() {
        for op in OperatorId::ALL {
            let p = op.params();
            assert!(p.weekend_factor > 0.8 && p.weekend_factor <= 1.0);
            assert!(p.wind_cf_mean > 0.0 && p.wind_cf_mean < 1.0);
            assert!(p.cloud_mean >= 0.0 && p.cloud_mean < 1.0);
            assert!(!p.merit.is_empty(), "{op:?} needs dispatchable capacity");
            let dispatchable: f64 = p.merit.iter().map(|e| e.capacity).sum();
            let firm = p.nuclear + p.hydro_ror + p.biomass + dispatchable;
            // Enough firm capacity to cover peak demand without unlimited
            // imports dominating (imports are a backstop, not the plan).
            assert!(firm > 0.9, "{op:?}: firm capacity {firm}");
        }
    }

    #[test]
    fn japan_regions_have_no_meaningful_wind() {
        assert!(OperatorId::Tokyo.params().wind_cap < 0.05);
        assert!(OperatorId::Kansai.params().wind_cap < 0.05);
    }

    #[test]
    fn eso_is_wind_heavy_and_winter_peaking() {
        let p = OperatorId::Eso.params();
        assert!(p.wind_cap > 0.5);
        assert!(!p.summer_peaking);
        assert!(p.wind_winter_boost > 0.0);
    }

    #[test]
    fn ciso_is_solar_heavy() {
        let p = OperatorId::Ciso.params();
        assert!(p.solar_cap > 0.5);
        assert!(p.solar_cap > OperatorId::Eso.params().solar_cap);
    }

    #[test]
    fn calibration_bands_are_ordered() {
        for op in OperatorId::ALL {
            let c = op.calibration();
            assert!(c.median_band.0 < c.median_band.1);
            assert!(c.cov_band.0 < c.cov_band.1);
        }
        // Tokyo's band sits ~3× above ESO's (paper: "medium annual carbon
        // intensity is three times ESO's").
        let tk = OperatorId::Tokyo.calibration().median_band;
        let eso = OperatorId::Eso.calibration().median_band;
        assert!(tk.0 / eso.1 > 2.0);
    }
}
