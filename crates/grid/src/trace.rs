//! A year of hourly carbon intensity bound to an operator.

use crate::regions::OperatorId;
use hpcarbon_timeseries::datetime::{HourStamp, TimeZone};
use hpcarbon_timeseries::series::HourlySeries;
use hpcarbon_timeseries::stats::{cov_percent, BoxplotStats};
use hpcarbon_units::CarbonIntensity;

/// An hourly carbon-intensity trace for one region-year. Values are stored
/// in gCO₂/kWh and indexed by UTC hour-of-year.
#[derive(Debug, Clone)]
pub struct IntensityTrace {
    operator: OperatorId,
    series: HourlySeries,
}

impl IntensityTrace {
    /// Binds a series (gCO₂/kWh) to an operator.
    pub fn new(operator: OperatorId, series: HourlySeries) -> IntensityTrace {
        IntensityTrace { operator, series }
    }

    /// The operator this trace belongs to.
    pub fn operator(&self) -> OperatorId {
        self.operator
    }

    /// The underlying hourly series (gCO₂/kWh).
    pub fn series(&self) -> &HourlySeries {
        &self.series
    }

    /// Intensity at a UTC hour stamp.
    pub fn at(&self, stamp: HourStamp) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.at_stamp(stamp))
    }

    /// Intensity at a UTC hour-of-year index.
    pub fn at_index(&self, index: u32) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.at(index))
    }

    /// Annual mean intensity.
    pub fn mean(&self) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.mean())
    }

    /// Fig. 6(a)'s box-plot summary of the annual distribution.
    pub fn boxplot(&self) -> BoxplotStats {
        BoxplotStats::compute(self.series.values()).expect("trace is non-empty")
    }

    /// Fig. 6(b)'s coefficient of variation (%).
    pub fn cov_percent(&self) -> f64 {
        cov_percent(self.series.values())
    }

    /// Mean intensity profile by local hour of day in `tz`.
    pub fn hourly_profile(&self, tz: TimeZone) -> [f64; 24] {
        self.series.hourly_profile(tz)
    }

    /// The `n` consecutive-hour window starting within the next `horizon`
    /// hours (from `start`) with the lowest mean intensity. Returns the
    /// starting hour-of-year index. This is the primitive a
    /// carbon-intensity-aware scheduler uses to defer jobs.
    pub fn greenest_window(&self, start: u32, horizon: u32, n: u32) -> u32 {
        assert!(n >= 1, "window must span at least one hour");
        let len = self.series.len() as u32;
        assert!(start < len, "start out of range");
        let last_start = (start + horizon).min(len.saturating_sub(n));
        let mut best_start = start;
        let mut best_mean = f64::INFINITY;
        for s in start..=last_start {
            if s + n > len {
                break;
            }
            let window = &self.series.values()[s as usize..(s + n) as usize];
            let mean = window.iter().sum::<f64>() / f64::from(n);
            if mean < best_mean {
                best_mean = mean;
                best_start = s;
            }
        }
        best_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_timeseries::datetime::CivilDate;

    fn ramp_trace() -> IntensityTrace {
        // Intensity equal to hour-of-day: low at night, high in the evening.
        let series = HourlySeries::from_fn(2021, |st| f64::from(st.hour()) * 10.0 + 100.0);
        IntensityTrace::new(OperatorId::Eso, series)
    }

    #[test]
    fn accessors() {
        let t = ramp_trace();
        assert_eq!(t.operator(), OperatorId::Eso);
        let stamp = HourStamp::new(CivilDate::new(2021, 5, 1).unwrap(), 7).unwrap();
        assert_eq!(t.at(stamp).as_g_per_kwh(), 170.0);
        assert_eq!(t.at_index(0).as_g_per_kwh(), 100.0);
    }

    #[test]
    fn boxplot_and_cov() {
        let t = ramp_trace();
        let b = t.boxplot();
        assert_eq!(b.min, 100.0);
        assert_eq!(b.max, 330.0);
        assert!((b.median - 215.0).abs() < 1e-9);
        assert!(t.cov_percent() > 0.0);
        assert!((t.mean().as_g_per_kwh() - 215.0).abs() < 1e-9);
    }

    #[test]
    fn greenest_window_finds_the_night() {
        let t = ramp_trace();
        // Starting at hour 12 (noon of Jan 1), looking 24h ahead for a 3h
        // window: the best start is midnight (hour 24 of the year).
        let best = t.greenest_window(12, 24, 3);
        assert_eq!(best, 24);
        // With zero horizon, the window must start immediately.
        assert_eq!(t.greenest_window(12, 0, 3), 12);
    }

    #[test]
    fn greenest_window_clamps_at_year_end() {
        let t = ramp_trace();
        let best = t.greenest_window(8756, 100, 4);
        assert!(best + 4 <= 8760);
    }

    #[test]
    #[should_panic(expected = "start out of range")]
    fn greenest_window_rejects_bad_start() {
        let _ = ramp_trace().greenest_window(9000, 10, 2);
    }
}
