//! A year of hourly carbon intensity bound to an operator.

use crate::regions::OperatorId;
use hpcarbon_timeseries::datetime::{HourStamp, TimeZone};
use hpcarbon_timeseries::series::HourlySeries;
use hpcarbon_timeseries::stats::{cov_percent, BoxplotStats};
use hpcarbon_timeseries::window::WindowIndex;
use hpcarbon_units::CarbonIntensity;

/// An hourly carbon-intensity trace for one region-year. Values are stored
/// in gCO₂/kWh and indexed by UTC hour-of-year.
///
/// Every trace carries a [`WindowIndex`] built at construction, so window
/// averages and greenest-start queries — the primitives of carbon-aware
/// shifting — are `O(1)`/`O(slack)` instead of rescans of the raw series.
#[derive(Debug, Clone)]
pub struct IntensityTrace {
    operator: OperatorId,
    series: HourlySeries,
    index: WindowIndex,
}

impl IntensityTrace {
    /// Binds a series (gCO₂/kWh) to an operator and indexes it.
    pub fn new(operator: OperatorId, series: HourlySeries) -> IntensityTrace {
        let index = WindowIndex::of_series(&series);
        IntensityTrace {
            operator,
            series,
            index,
        }
    }

    /// The operator this trace belongs to.
    pub fn operator(&self) -> OperatorId {
        self.operator
    }

    /// The underlying hourly series (gCO₂/kWh).
    pub fn series(&self) -> &HourlySeries {
        &self.series
    }

    /// Intensity at a UTC hour stamp.
    pub fn at(&self, stamp: HourStamp) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.at_stamp(stamp))
    }

    /// Intensity at a UTC hour-of-year index.
    pub fn at_index(&self, index: u32) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.at(index))
    }

    /// Annual mean intensity.
    pub fn mean(&self) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.series.mean())
    }

    /// Fig. 6(a)'s box-plot summary of the annual distribution.
    pub fn boxplot(&self) -> BoxplotStats {
        // lint: allow(panic-in-library) -- IntensityTrace construction rejects empty series, so compute always has samples
        BoxplotStats::compute(self.series.values()).expect("trace is non-empty")
    }

    /// Fig. 6(b)'s coefficient of variation (%).
    pub fn cov_percent(&self) -> f64 {
        cov_percent(self.series.values())
    }

    /// Mean intensity profile by local hour of day in `tz`.
    pub fn hourly_profile(&self, tz: TimeZone) -> [f64; 24] {
        self.series.hourly_profile(tz)
    }

    /// The prefix-sum window index over this trace.
    pub fn window_index(&self) -> &WindowIndex {
        &self.index
    }

    /// Mean intensity over the wrapped window `[start, start+w)` hours of
    /// the year; `O(1)` from the index.
    pub fn mean_over(&self, start: u32, w: u32) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.index.window_mean(start, w))
    }

    /// The shift `d ∈ [0, slack]` minimizing the mean intensity of the
    /// wrapped `w`-hour window starting `d` hours after `start` — the
    /// indexed primitive behind the temporal-shift policies. `start` may
    /// run past the year (it wraps); ties break toward the smallest
    /// shift, i.e. the lowest start hour.
    pub fn greenest_shift(&self, start: u32, slack: u32, w: u32) -> u32 {
        self.index.greenest_shift(start, slack, w)
    }

    /// The `n` consecutive-hour window starting within the next `horizon`
    /// hours (from `start`) with the lowest mean intensity, never wrapping
    /// past year end. Returns the starting hour-of-year index; ties break
    /// toward the lowest start. This is the primitive a
    /// carbon-intensity-aware scheduler uses to defer jobs.
    pub fn greenest_window(&self, start: u32, horizon: u32, n: u32) -> u32 {
        self.index.argmin_window_clamped(start, horizon, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_timeseries::datetime::CivilDate;

    fn ramp_trace() -> IntensityTrace {
        // Intensity equal to hour-of-day: low at night, high in the evening.
        let series = HourlySeries::from_fn(2021, |st| f64::from(st.hour()) * 10.0 + 100.0);
        IntensityTrace::new(OperatorId::Eso, series)
    }

    #[test]
    fn accessors() {
        let t = ramp_trace();
        assert_eq!(t.operator(), OperatorId::Eso);
        let stamp = HourStamp::new(CivilDate::new(2021, 5, 1).unwrap(), 7).unwrap();
        assert_eq!(t.at(stamp).as_g_per_kwh(), 170.0);
        assert_eq!(t.at_index(0).as_g_per_kwh(), 100.0);
    }

    #[test]
    fn boxplot_and_cov() {
        let t = ramp_trace();
        let b = t.boxplot();
        assert_eq!(b.min, 100.0);
        assert_eq!(b.max, 330.0);
        assert!((b.median - 215.0).abs() < 1e-9);
        assert!(t.cov_percent() > 0.0);
        assert!((t.mean().as_g_per_kwh() - 215.0).abs() < 1e-9);
    }

    #[test]
    fn greenest_window_finds_the_night() {
        let t = ramp_trace();
        // Starting at hour 12 (noon of Jan 1), looking 24h ahead for a 3h
        // window: the best start is midnight (hour 24 of the year).
        let best = t.greenest_window(12, 24, 3);
        assert_eq!(best, 24);
        // With zero horizon, the window must start immediately.
        assert_eq!(t.greenest_window(12, 0, 3), 12);
    }

    #[test]
    fn greenest_window_clamps_at_year_end() {
        let t = ramp_trace();
        let best = t.greenest_window(8756, 100, 4);
        assert!(best + 4 <= 8760);
    }

    #[test]
    #[should_panic(expected = "start out of range")]
    fn greenest_window_rejects_bad_start() {
        let _ = ramp_trace().greenest_window(9000, 10, 2);
    }

    #[test]
    fn indexed_queries_match_direct_scans() {
        let t = ramp_trace();
        // mean_over wraps: window [8758, 8762) covers hours 22, 23, 0, 1.
        let wrapped = t.mean_over(8758, 4).as_g_per_kwh();
        assert!((wrapped - (320.0 + 330.0 + 100.0 + 110.0) / 4.0).abs() < 1e-9);
        // greenest_shift from noon of day 1 with a day of slack lands on
        // the next midnight (shift 12).
        assert_eq!(t.greenest_shift(12, 24, 3), 12);
        // Zero slack pins the window at the start hour.
        assert_eq!(t.greenest_shift(12, 0, 3), 0);
        // Starts past the year wrap instead of panicking.
        assert_eq!(t.greenest_shift(8760 + 12, 24, 3), 12);
    }
}
