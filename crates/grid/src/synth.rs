//! Deterministic synthetic region-years.
//!
//! The full dispatch simulator ([`crate::sim`]) prices every hour through
//! a merit order — faithful, but a sweep axis limited to the paper's seven
//! calibrated regions. This module generates *synthetic* region-years from
//! closed-form harmonics instead: a diurnal double-harmonic in local time,
//! a seasonal cosine, a weekend dip, and fuel-mix-weighted
//! Ornstein–Uhlenbeck noise from forked [`SimRng`] substreams. One
//! synthetic year costs a few harmonic evaluations per hour — about half
//! a dispatch year (`bench_shifting` tracks the ratio) with no
//! merit-order state to calibrate — and any number of them can be derived
//! per region by varying the seed, so scenario sweeps are not limited to
//! the shipped trace set.
//!
//! ## Determinism contract
//!
//! [`SyntheticSpec::generate`] is a pure function of `(spec, year, seed)`:
//! the noise stream is forked as
//! `SimRng::seed_from(seed) → substream("synth") → substream(region)`,
//! never from thread or call order, so synthetic traces are byte-identical
//! across worker counts and runs — the same guarantee the sweep engine
//! gives for simulated traces (DESIGN.md §7).

use crate::fuel::{Fuel, GenerationMix};
use crate::regions::OperatorId;
use crate::trace::IntensityTrace;
use hpcarbon_sim::process::OrnsteinUhlenbeck;
use hpcarbon_sim::rng::SimRng;
use hpcarbon_timeseries::datetime::days_in_year;
use hpcarbon_timeseries::series::HourlySeries;

/// Parameters of one synthetic region-year.
///
/// [`SyntheticSpec::for_region`] derives a spec from a calibrated
/// operator's fuel mix; the fields are public so custom hypothetical
/// regions can be swept too.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Region the trace is attributed to (time zone + labeling).
    pub operator: OperatorId,
    /// Annual mean intensity, gCO₂/kWh.
    pub mean_g_per_kwh: f64,
    /// Relative amplitude of the diurnal swing (evening peak).
    pub diurnal_amp: f64,
    /// Relative depth of the midday solar dip.
    pub solar_dip: f64,
    /// Relative amplitude of the seasonal swing (clean-season trough).
    pub seasonal_amp: f64,
    /// Relative intensity reduction on weekends (lower demand means the
    /// dirty margin stays offline).
    pub weekend_drop: f64,
    /// Stationary standard deviation of the multiplicative OU noise —
    /// fuel-mix weighted: variable-renewable-heavy mixes are noisier.
    pub noise_sd: f64,
    /// OU mean-reversion rate (per hour); small values give multi-day
    /// weather fronts.
    pub noise_theta: f64,
    /// Physical floor, gCO₂/kWh (cleanest achievable mix).
    pub floor_g_per_kwh: f64,
}

/// Mean solar capacity factor implied by the clear-sky model, used to
/// estimate a region's average variable-renewable output.
const MEAN_SOLAR_CF: f64 = 0.22;

impl SyntheticSpec {
    /// Derives a spec from a calibrated region: the annual mean comes from
    /// dispatching the average hour through the region's merit order, and
    /// the harmonic/noise amplitudes are weighted by the region's fuel
    /// mix (solar share deepens the midday dip, wind share widens the
    /// noise, fossil share steepens the demand-following swing).
    pub fn for_region(operator: OperatorId) -> SyntheticSpec {
        let p = operator.params();
        let wind_avg = p.wind_cap * p.wind_cf_mean;
        let solar_avg = p.solar_cap * (1.0 - p.cloud_mean) * MEAN_SOLAR_CF;

        // Average-hour dispatch: must-run, then mean VRE, then the merit
        // order against demand 1.0 (units of average demand).
        let mut mix = GenerationMix::new();
        mix.add(Fuel::Nuclear, p.nuclear);
        mix.add(Fuel::Hydro, p.hydro_ror);
        mix.add(Fuel::Biomass, p.biomass);
        mix.add(Fuel::Wind, wind_avg);
        mix.add(Fuel::Solar, solar_avg);
        let mut residual = (1.0 - mix.total()).max(0.0);
        for entry in &p.merit {
            if residual <= 0.0 {
                break;
            }
            let take = residual.min(entry.capacity);
            mix.add(entry.fuel, take);
            residual -= take;
        }
        if residual > 0.0 {
            mix.add(Fuel::Imports, residual);
        }
        let mean = mix.intensity(p.import_intensity).as_g_per_kwh();

        let vre_share = (wind_avg + solar_avg).min(1.0);
        let fossil_share =
            (mix.get(Fuel::Gas) + mix.get(Fuel::Coal) + mix.get(Fuel::Oil)) / mix.total().max(1e-9);
        SyntheticSpec {
            operator,
            mean_g_per_kwh: mean,
            // Demand-following fossil margins swing intensity with demand.
            diurnal_amp: (0.35 * fossil_share + 0.05).min(0.45),
            solar_dip: (1.4 * solar_avg).min(0.5),
            seasonal_amp: (0.30 * vre_share + 0.05).min(0.35),
            weekend_drop: (1.0 - p.weekend_factor).clamp(0.0, 0.3),
            noise_sd: (0.10 + 0.45 * vre_share).min(0.45),
            noise_theta: 0.03,
            floor_g_per_kwh: 12.0,
        }
    }

    /// Generates the synthetic hourly trace for `year`. Pure in
    /// `(self, year, seed)` — see the module-level determinism contract.
    pub fn generate(&self, year: i32, seed: u64) -> IntensityTrace {
        let p = self.operator.params();
        let mut rng = SimRng::seed_from(seed)
            .substream("synth")
            .substream(self.operator.info().short);
        let vol = self.noise_sd * (2.0 * self.noise_theta).sqrt();
        let mut ou = OrnsteinUhlenbeck::new(0.0, self.noise_theta, vol, 1.0);
        ou.reset_stationary(&mut rng);
        let days = f64::from(days_in_year(year));

        let series = HourlySeries::from_fn(year, |stamp| {
            let local = p.tz.from_utc(stamp);
            let h = f64::from(local.hour());
            let doy = f64::from(local.date().day_of_year());
            // Evening-peaking first harmonic (peak ≈ 19:00 local) plus a
            // midday solar dip centered on 13:00.
            let diurnal = self.diurnal_amp * (std::f64::consts::TAU * (h - 19.0) / 24.0).cos()
                - self.solar_dip * gaussian_bump(h, 13.0, 3.0);
            // Clean season ≈ spring (day 110): VRE-rich shoulder months.
            let seasonal = self.seasonal_amp * (std::f64::consts::TAU * (doy - 110.0) / days).cos();
            let weekend = if local.date().weekday().is_weekend() {
                -self.weekend_drop
            } else {
                0.0
            };
            let noise = ou.step(&mut rng);
            let v = self.mean_g_per_kwh * (1.0 + diurnal + seasonal + weekend + noise);
            v.clamp(self.floor_g_per_kwh, 850.0)
        });
        IntensityTrace::new(self.operator, series)
    }
}

/// A smooth bump of unit height at `center` with width `sigma` hours.
fn gaussian_bump(h: f64, center: f64, sigma: f64) -> f64 {
    let d = (h - center) / sigma;
    (-0.5 * d * d).exp()
}

/// Generates the default synthetic year for a region — the
/// [`SyntheticSpec::for_region`] spec evaluated at `(year, seed)`.
/// Deterministic in `(operator, year, seed)`, and cheaper than
/// [`crate::sim::simulate_year`]'s full dispatch (about 2× in
/// `bench_shifting`) with no per-region calibration needed for custom
/// specs.
pub fn synthesize_year(operator: OperatorId, year: i32, seed: u64) -> IntensityTrace {
    SyntheticSpec::for_region(operator).generate(year, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize_year(OperatorId::Eso, 2021, 7);
        let b = synthesize_year(OperatorId::Eso, 2021, 7);
        assert_eq!(a.series().values(), b.series().values());
        let c = synthesize_year(OperatorId::Eso, 2021, 8);
        assert_ne!(a.series().values(), c.series().values());
    }

    #[test]
    fn regions_differ_from_the_same_seed() {
        let eso = synthesize_year(OperatorId::Eso, 2021, 7);
        let miso = synthesize_year(OperatorId::Miso, 2021, 7);
        assert_ne!(eso.series().values(), miso.series().values());
        // Coal-heavy MISO is dirtier than wind-heavy GB on annual mean.
        assert!(miso.mean().as_g_per_kwh() > eso.mean().as_g_per_kwh());
    }

    #[test]
    fn values_are_physical() {
        for op in OperatorId::ALL {
            let t = synthesize_year(op, 2021, 3);
            for (_, v) in t.series().iter() {
                assert!(v.is_finite());
                assert!((10.0..=850.0).contains(&v), "{op:?}: {v}");
            }
        }
    }

    #[test]
    fn means_land_near_the_spec() {
        for op in [OperatorId::Eso, OperatorId::Ciso, OperatorId::Miso] {
            let spec = SyntheticSpec::for_region(op);
            let t = spec.generate(2021, 11);
            let mean = t.series().mean();
            assert!(
                (mean - spec.mean_g_per_kwh).abs() < 0.25 * spec.mean_g_per_kwh,
                "{op:?}: trace mean {mean} vs spec {}",
                spec.mean_g_per_kwh
            );
        }
    }

    #[test]
    fn diurnal_structure_is_present() {
        // Fossil-margin regions must be cleaner overnight than at the
        // evening peak, on average.
        let t = synthesize_year(OperatorId::Ercot, 2021, 5);
        let prof = t.hourly_profile(OperatorId::Ercot.params().tz);
        let night = (prof[2] + prof[3] + prof[4]) / 3.0;
        let evening = (prof[18] + prof[19] + prof[20]) / 3.0;
        assert!(evening > night, "evening {evening} vs night {night}");
    }

    #[test]
    fn leap_years_generate_full_length() {
        let t = synthesize_year(OperatorId::Pjm, 2020, 1);
        assert_eq!(t.series().len(), 8784);
    }

    #[test]
    fn custom_specs_are_sweepable() {
        // A hypothetical ultra-clean region: tiny mean, big noise.
        let spec = SyntheticSpec {
            mean_g_per_kwh: 40.0,
            noise_sd: 0.4,
            ..SyntheticSpec::for_region(OperatorId::Eso)
        };
        let t = spec.generate(2021, 9);
        assert!(t.mean().as_g_per_kwh() < 80.0);
    }
}
