//! Real-trace ingestion: a strict ElectricityMaps/EIA-style hourly CSV
//! parser producing the same [`IntensityTrace`] the simulator emits, so
//! `WindowIndex` and every shifting policy apply to measured data
//! unchanged.
//!
//! ## File format
//!
//! One UTF-8 CSV per region-year, header row required:
//!
//! ```text
//! timestamp,zone,intensity,unit
//! 2021-01-01T00:00Z,eso,213.4,gCO2/kWh
//! 2021-01-01T01:00Z,eso,0.2101,kgCO2/kWh
//! ```
//!
//! - `timestamp` — `YYYY-MM-DDThh:00` plus a **mandatory** UTC marker:
//!   `Z` or a whole-hour `+hh:mm`/`-hh:mm` offset (normalized to UTC on
//!   read). Naive local timestamps are rejected outright: a local fall-back
//!   DST hour is ambiguous, and silently guessing would corrupt the hourly
//!   index. Rows must be strictly ascending and cover the civil year
//!   end-to-end (8760 rows, 8784 in leap years).
//! - `zone` — the region's lowercase short code (`kn`, `tk`, `eso`,
//!   `ciso`, `pjm`, `miso`, `ercot`), uniform across the file.
//! - `intensity` — finite, non-negative.
//! - `unit` — `gCO2/kWh`, `kgCO2/MWh` (numerically identical), or
//!   `kgCO2/kWh` (×1000); normalized to gCO₂/kWh on read, per row.
//!
//! Interior gaps are handled by an explicit [`GapPolicy`]; missing leading
//! or trailing hours are always a coverage error.
//!
//! ## Diagnostics
//!
//! Validation reports **all** diagnostics at once in the catalog idiom:
//! `{file}:{line}: {message}`, sorted by line. The strings are a frozen
//! contract (CI fixtures grep them; see `docs/TRACES.md` for the full
//! list) and [`TraceFileError`] is registered in the hpclint display
//! registry.

use crate::regions::OperatorId;
use crate::trace::IntensityTrace;
use hpcarbon_timeseries::datetime::{hours_in_year, CivilDate, HourStamp};
use hpcarbon_timeseries::series::HourlySeries;

/// The required header row.
pub const TRACE_HEADER: &str = "timestamp,zone,intensity,unit";

/// Accepted `unit` spellings, in documentation order.
pub const UNIT_VALUES: [&str; 3] = ["gCO2/kWh", "kgCO2/MWh", "kgCO2/kWh"];

/// Accepted `zone` codes, in [`OperatorId::ALL`] order.
pub const ZONE_VALUES: [&str; 7] = ["kn", "tk", "eso", "ciso", "pjm", "miso", "ercot"];

/// What to do about interior gaps (missing hours between valid rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GapPolicy {
    /// Reject the file (the default: real datasets should be complete).
    #[default]
    Reject,
    /// Linearly interpolate between the neighboring present hours.
    Interpolate,
    /// Hold the last present value flat across the gap.
    Hold,
}

impl GapPolicy {
    /// Accepted `--gaps` spellings, in documentation order.
    pub const VALUES: [&'static str; 3] = ["reject", "interpolate", "hold"];

    /// Parses a policy label; `None` for unknown spellings.
    pub fn parse(s: &str) -> Option<GapPolicy> {
        match s {
            "reject" => Some(GapPolicy::Reject),
            "interpolate" => Some(GapPolicy::Interpolate),
            "hold" => Some(GapPolicy::Hold),
            _ => None,
        }
    }

    /// The canonical label.
    pub fn label(self) -> &'static str {
        match self {
            GapPolicy::Reject => "reject",
            GapPolicy::Interpolate => "interpolate",
            GapPolicy::Hold => "hold",
        }
    }
}

/// One trace-file diagnostic, in the catalog error idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// A diagnostic anchored to one line of the file.
    Line {
        /// The file path as given to the parser.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The diagnostic message (see `docs/TRACES.md`).
        message: String,
    },
    /// A file-level diagnostic (no single line).
    File {
        /// The file path as given to the parser.
        file: String,
        /// The diagnostic message.
        message: String,
    },
}

impl TraceFileError {
    fn line(file: &str, line: usize, message: String) -> TraceFileError {
        TraceFileError::Line {
            file: file.to_string(),
            line,
            message,
        }
    }

    fn file(file: &str, message: String) -> TraceFileError {
        TraceFileError::File {
            file: file.to_string(),
            message,
        }
    }
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Line {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
            TraceFileError::File { file, message } => write!(f, "{file}: {message}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Every diagnostic of one failed parse, sorted by line (file-level
/// diagnostics last), newline-joined by `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileErrors(pub Vec<TraceFileError>);

impl std::fmt::Display for TraceFileErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TraceFileErrors {}

/// A successfully ingested trace file.
#[derive(Debug, Clone)]
pub struct ParsedTrace {
    /// The operator the file's `zone` column names.
    pub operator: OperatorId,
    /// The civil year the file covers.
    pub year: i32,
    /// The normalized trace (gCO₂/kWh, UTC hour-of-year indexed).
    pub trace: IntensityTrace,
    /// Hours synthesized by the gap policy (0 under [`GapPolicy::Reject`]).
    pub filled_hours: u32,
}

/// Maps a lowercase zone code to its operator.
pub fn parse_zone(zone: &str) -> Option<OperatorId> {
    OperatorId::ALL
        .iter()
        .copied()
        .find(|op| zone_label(*op) == zone)
}

/// The lowercase zone code of an operator (`eso`, `ciso`, …).
pub fn zone_label(op: OperatorId) -> &'static str {
    match op {
        OperatorId::Kansai => "kn",
        OperatorId::Tokyo => "tk",
        OperatorId::Eso => "eso",
        OperatorId::Ciso => "ciso",
        OperatorId::Pjm => "pjm",
        OperatorId::Miso => "miso",
        OperatorId::Ercot => "ercot",
    }
}

fn unknown_value(field: &str, value: &str, expected: &[&str]) -> String {
    format!(
        "unknown {field} \"{value}\" (valid values: {})",
        expected.join(", ")
    )
}

/// A timestamp parsed down to UTC.
fn parse_stamp(raw: &str) -> Result<HourStamp, String> {
    let malformed = || {
        format!(
            "timestamp \"{raw}\" must be \"YYYY-MM-DDThh:00\" with a \"Z\" or \"+hh:mm\"/\"-hh:mm\" offset"
        )
    };
    let (date_part, time_part) = raw.split_once('T').ok_or_else(malformed)?;
    let mut date_fields = date_part.split('-');
    let year: i32 = date_fields
        .next()
        .filter(|s| s.len() == 4)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let month: u8 = date_fields
        .next()
        .filter(|s| s.len() == 2)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let day: u8 = date_fields
        .next()
        .filter(|s| s.len() == 2)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    if date_fields.next().is_some() {
        return Err(malformed());
    }
    let date = CivilDate::new(year, month, day).map_err(|_| malformed())?;

    // Split the wall-clock hh:mm from its offset suffix.
    let (clock, offset_hours) = if let Some(clock) = time_part.strip_suffix('Z') {
        (clock, 0i64)
    } else if let Some(pos) = time_part.rfind(['+', '-']) {
        let (clock, offset) = time_part.split_at(pos);
        (clock, parse_offset(offset)?)
    } else {
        return Err(format!(
            "timestamp \"{raw}\" has no UTC offset (local times are ambiguous across DST folds; use \"Z\" or an explicit \"+hh:mm\" offset)"
        ));
    };
    let (hh, mm) = clock.split_once(':').ok_or_else(malformed)?;
    if hh.len() != 2 || mm != "00" {
        return Err(malformed());
    }
    let hour: u8 = hh.parse().map_err(|_| malformed())?;
    let local = HourStamp::new(date, hour).map_err(|_| malformed())?;
    Ok(local.plus_hours(-offset_hours))
}

/// Parses a `+hh:mm`/`-hh:mm` offset into whole hours.
fn parse_offset(offset: &str) -> Result<i64, String> {
    let bad = || format!("offset \"{offset}\" must be a whole hour between -12:00 and +14:00");
    let (sign, rest) = match offset.split_at(1) {
        ("+", rest) => (1i64, rest),
        ("-", rest) => (-1i64, rest),
        _ => return Err(bad()),
    };
    let (hh, mm) = rest.split_once(':').ok_or_else(bad)?;
    if hh.len() != 2 || mm != "00" {
        return Err(bad());
    }
    let hours: i64 = hh.parse().map_err(|_| bad())?;
    let signed = sign * hours;
    if !(-12..=14).contains(&signed) {
        return Err(bad());
    }
    Ok(signed)
}

/// Parses trace CSV text, reporting every diagnostic at once.
///
/// `file` is the label used in error anchors; `src` the file contents.
pub fn parse_trace_csv(
    file: &str,
    src: &str,
    gaps: GapPolicy,
) -> Result<ParsedTrace, TraceFileErrors> {
    let mut errors: Vec<TraceFileError> = Vec::new();
    let mut lines = src.lines().enumerate();

    match lines.next() {
        None => {
            return Err(TraceFileErrors(vec![TraceFileError::file(
                file,
                "trace has no data rows".to_string(),
            )]));
        }
        Some((_, header)) if header != TRACE_HEADER => {
            errors.push(TraceFileError::line(
                file,
                1,
                format!("header must be \"{TRACE_HEADER}\" (got \"{header}\")"),
            ));
        }
        Some(_) => {}
    }

    // (hour stamp, value in gCO₂/kWh) for every fully valid row.
    let mut rows: Vec<(HourStamp, f64)> = Vec::new();
    let mut zone: Option<(OperatorId, String, usize)> = None; // op, code, line
    let mut year: Option<i32> = None;
    let mut prev: Option<HourStamp> = None;
    let mut seen: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();

    for (idx, raw) in lines {
        let lineno = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 4 {
            errors.push(TraceFileError::line(
                file,
                lineno,
                format!("expected 4 comma-separated fields (got {})", fields.len()),
            ));
            continue;
        }

        let stamp = match parse_stamp(fields[0]) {
            Ok(s) => Some(s),
            Err(msg) => {
                errors.push(TraceFileError::line(file, lineno, msg));
                None
            }
        };

        let mut row_ok = stamp.is_some();

        match parse_zone(fields[1]) {
            Some(op) => match &zone {
                None => zone = Some((op, fields[1].to_string(), lineno)),
                Some((first, code, set_at)) if *first != op => {
                    errors.push(TraceFileError::line(
                        file,
                        lineno,
                        format!(
                            "zone \"{}\" does not match the file's zone \"{code}\" (first set at line {set_at})",
                            fields[1]
                        ),
                    ));
                    row_ok = false;
                }
                Some(_) => {}
            },
            None => {
                errors.push(TraceFileError::line(
                    file,
                    lineno,
                    unknown_value("zone", fields[1], &ZONE_VALUES),
                ));
                row_ok = false;
            }
        }

        let value: Option<f64> = match fields[2].parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => Some(v),
            _ => {
                errors.push(TraceFileError::line(
                    file,
                    lineno,
                    format!(
                        "field \"intensity\" must be a finite non-negative number (got \"{}\")",
                        fields[2]
                    ),
                ));
                None
            }
        };

        let scale: Option<f64> = match fields[3] {
            "gCO2/kWh" | "kgCO2/MWh" => Some(1.0),
            "kgCO2/kWh" => Some(1000.0),
            other => {
                errors.push(TraceFileError::line(
                    file,
                    lineno,
                    unknown_value("unit", other, &UNIT_VALUES),
                ));
                None
            }
        };

        let Some(stamp) = stamp else { continue };

        // Chronology checks run on any row with a valid timestamp, even if
        // other fields failed — ordering diagnostics stay precise.
        let key = stamp.hours_since_epoch();
        if let Some(first) = seen.get(&key) {
            errors.push(TraceFileError::line(
                file,
                lineno,
                format!("duplicate hour {stamp}Z (first given at line {first})"),
            ));
            continue;
        }
        if let Some(p) = prev {
            if stamp < p {
                errors.push(TraceFileError::line(
                    file,
                    lineno,
                    format!(
                        "timestamp {stamp}Z is out of order (expected a strictly later hour than {p}Z)"
                    ),
                ));
                continue;
            }
            let missing = stamp.hours_since_epoch() - p.hours_since_epoch() - 1;
            if missing > 0 && gaps == GapPolicy::Reject {
                errors.push(TraceFileError::line(
                    file,
                    lineno,
                    format!(
                        "gap of {missing} missing hour(s) before {stamp}Z (gap policy \"reject\")"
                    ),
                ));
            }
        }
        seen.insert(key, lineno);
        prev = Some(stamp);

        let y = *year.get_or_insert_with(|| stamp.date().year());
        if stamp.date().year() != y {
            errors.push(TraceFileError::line(
                file,
                lineno,
                format!("timestamp {stamp}Z is outside the trace year {y}"),
            ));
            continue;
        }

        if row_ok {
            if let (Some(v), Some(k)) = (value, scale) {
                rows.push((stamp, v * k));
            }
        }
    }

    if rows.is_empty() && errors.is_empty() {
        errors.push(TraceFileError::file(
            file,
            "trace has no data rows".to_string(),
        ));
    }

    // Coverage: the file must span its civil year end-to-end. Gap filling
    // never invents leading or trailing hours.
    if let (Some(year), Some((first, _)), Some((last, _))) = (year, rows.first(), rows.last()) {
        let n = hours_in_year(year);
        let start = HourStamp::from_hour_of_year(year, 0);
        let end = HourStamp::from_hour_of_year(year, n - 1);
        if *first != start {
            errors.push(TraceFileError::file(
                file,
                format!("trace must start at {start}Z (first row is {first}Z)"),
            ));
        }
        if *last != end {
            errors.push(TraceFileError::file(
                file,
                format!("trace must end at {end}Z (last row is {last}Z)"),
            ));
        }
    }

    if !errors.is_empty() {
        return Err(TraceFileErrors(errors));
    }

    // lint: allow(panic-in-library) -- rows is non-empty past the errors gate, so year and zone are set
    let year = year.expect("rows exist");
    // lint: allow(panic-in-library) -- every accepted row carried a valid zone
    let (operator, _, _) = zone.expect("rows exist");
    let n = hours_in_year(year) as usize;
    let mut values: Vec<Option<f64>> = vec![None; n];
    for (stamp, v) in &rows {
        values[stamp.hour_of_year() as usize] = Some(*v);
    }
    let filled_hours = values.iter().filter(|v| v.is_none()).count() as u32;
    let filled = fill_gaps(&values, gaps);
    let trace = IntensityTrace::new(operator, HourlySeries::new(year, filled));
    Ok(ParsedTrace {
        operator,
        year,
        trace,
        filled_hours,
    })
}

/// Resolves interior `None` runs per the gap policy. Coverage checks
/// guarantee the first and last slots are present.
fn fill_gaps(values: &[Option<f64>], gaps: GapPolicy) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    let mut i = 0;
    while i < values.len() {
        match values[i] {
            Some(v) => {
                out.push(v);
                i += 1;
            }
            None => {
                let run_start = i;
                while values[i].is_none() {
                    i += 1;
                }
                let before = out[run_start - 1];
                // lint: allow(panic-in-library) -- the trailing slot is always present (coverage-checked), so the run has a right neighbor
                let after = values[i].expect("run ends at a present hour");
                let len = i - run_start;
                for k in 0..len {
                    let v = match gaps {
                        GapPolicy::Hold => before,
                        GapPolicy::Interpolate => {
                            let t = (k + 1) as f64 / (len + 1) as f64;
                            before + (after - before) * t
                        }
                        // Reject never reaches filling: gaps already errored.
                        GapPolicy::Reject => before,
                    };
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Loads and parses a trace file from disk. I/O failures surface as a
/// single file-level diagnostic.
pub fn load_trace_file(path: &str, gaps: GapPolicy) -> Result<ParsedTrace, TraceFileErrors> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        TraceFileErrors(vec![TraceFileError::file(
            path,
            format!("cannot read trace file ({e})"),
        )])
    })?;
    parse_trace_csv(path, &src, gaps)
}

/// Emits a trace in canonical form: UTC `Z` stamps, lowercase zone code,
/// shortest-round-trip floats, `gCO2/kWh` throughout. `parse_trace_csv`
/// over the output reproduces the trace exactly.
pub fn write_trace_csv(trace: &IntensityTrace) -> String {
    let zone = zone_label(trace.operator());
    let series = trace.series();
    let mut out = String::with_capacity(series.len() * 40);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for (stamp, v) in series.iter() {
        out.push_str(&format!("{stamp}Z,{zone},{v},gCO2/kWh\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor(err: &TraceFileErrors, line: usize) -> String {
        err.0
            .iter()
            .find_map(|e| match e {
                TraceFileError::Line {
                    line: l, message, ..
                } if *l == line => Some(message.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no diagnostic at line {line}: {err}"))
    }

    fn tiny_year_csv() -> String {
        // A full 2021 file built programmatically: value = hour index.
        let mut s = String::from("timestamp,zone,intensity,unit\n");
        for i in 0..8760u32 {
            let stamp = HourStamp::from_hour_of_year(2021, i);
            s.push_str(&format!("{stamp}Z,eso,{}.5,gCO2/kWh\n", i % 97));
        }
        s
    }

    #[test]
    fn parses_a_complete_year() {
        let p = parse_trace_csv("t.csv", &tiny_year_csv(), GapPolicy::Reject).expect("parses");
        assert_eq!(p.operator, OperatorId::Eso);
        assert_eq!(p.year, 2021);
        assert_eq!(p.filled_hours, 0);
        assert_eq!(p.trace.series().len(), 8760);
        assert_eq!(p.trace.series().at(0), 0.5);
        assert_eq!(p.trace.series().at(98), 1.5);
    }

    #[test]
    fn normalizes_units_per_row() {
        let mut src = tiny_year_csv();
        src = src.replace(
            "2021-01-01T00:00Z,eso,0.5,gCO2/kWh",
            "2021-01-01T00:00Z,eso,0.5,kgCO2/kWh",
        );
        src = src.replace(
            "2021-01-01T01:00Z,eso,1.5,gCO2/kWh",
            "2021-01-01T01:00Z,eso,1.5,kgCO2/MWh",
        );
        let p = parse_trace_csv("t.csv", &src, GapPolicy::Reject).expect("parses");
        assert_eq!(p.trace.series().at(0), 500.0);
        assert_eq!(p.trace.series().at(1), 1.5);
    }

    #[test]
    fn normalizes_offsets_to_utc() {
        // The same year expressed in JST (+09:00) local stamps.
        let mut s = String::from("timestamp,zone,intensity,unit\n");
        for i in 0..8760u32 {
            let stamp = HourStamp::from_hour_of_year(2021, i).plus_hours(9);
            s.push_str(&format!("{stamp}+09:00,kn,{i}.0,gCO2/kWh\n"));
        }
        let p = parse_trace_csv("t.csv", &s, GapPolicy::Reject).expect("parses");
        assert_eq!(p.operator, OperatorId::Kansai);
        assert_eq!(p.trace.series().at(0), 0.0);
        assert_eq!(p.trace.series().at(8759), 8759.0);
    }

    #[test]
    fn handles_leap_years() {
        let mut s = String::from("timestamp,zone,intensity,unit\n");
        for i in 0..8784u32 {
            let stamp = HourStamp::from_hour_of_year(2020, i);
            s.push_str(&format!("{stamp}Z,pjm,1.0,gCO2/kWh\n"));
        }
        let p = parse_trace_csv("t.csv", &s, GapPolicy::Reject).expect("parses");
        assert_eq!(p.year, 2020);
        assert_eq!(p.trace.series().len(), 8784);
    }

    #[test]
    fn rejects_bad_header() {
        let src = "time,zone,value,unit\n2021-01-01T00:00Z,eso,1.0,gCO2/kWh\n";
        let err = parse_trace_csv("t.csv", src, GapPolicy::Reject).unwrap_err();
        assert!(anchor(&err, 1).starts_with("header must be \"timestamp,zone,intensity,unit\""));
    }

    #[test]
    fn rejects_naive_timestamps() {
        let mut src = tiny_year_csv();
        src = src.replace("2021-03-07T05:00Z,eso", "2021-03-07T05:00,eso");
        let err = parse_trace_csv("t.csv", &src, GapPolicy::Reject).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("has no UTC offset (local times are ambiguous across DST folds"),
            "{msg}"
        );
    }

    #[test]
    fn rejects_non_whole_hour_offsets() {
        let src = "timestamp,zone,intensity,unit\n2021-01-01T05:30Z,eso,1.0,gCO2/kWh\n";
        let err = parse_trace_csv("t.csv", src, GapPolicy::Reject).unwrap_err();
        let msg = err.to_string();
        // A :30 wall clock fails the stamp shape.
        assert!(msg.contains("must be \"YYYY-MM-DDThh:00\""), "{msg}");
        let src2 = "timestamp,zone,intensity,unit\n2021-01-01T05:00+05:30,eso,1.0,gCO2/kWh\n";
        let err2 = parse_trace_csv("t.csv", src2, GapPolicy::Reject).unwrap_err();
        assert!(
            err2.to_string()
                .contains("offset \"+05:30\" must be a whole hour between -12:00 and +14:00"),
            "{err2}"
        );
    }

    #[test]
    fn reports_all_diagnostics_at_once() {
        let mut src = tiny_year_csv();
        src = src.replace(
            "2021-02-01T00:00Z,eso,65.5,gCO2/kWh",
            "2021-02-01T00:00Z,eso,65.5,mgCO2/kWh",
        );
        src = src.replace(
            "2021-06-01T00:00Z,eso,35.5,gCO2/kWh",
            "2021-06-01T00:00Z,eso,-35.5,gCO2/kWh",
        );
        src = src.replace(
            "2021-09-01T00:00Z,eso,12.5,gCO2/kWh",
            "2021-09-01T00:00Z,ciso,12.5,gCO2/kWh",
        );
        let err = parse_trace_csv("t.csv", &src, GapPolicy::Reject).unwrap_err();
        assert_eq!(err.0.len(), 3, "{err}");
        assert!(err
            .to_string()
            .contains("unknown unit \"mgCO2/kWh\" (valid values: gCO2/kWh, kgCO2/MWh, kgCO2/kWh)"));
        assert!(err
            .to_string()
            .contains("field \"intensity\" must be a finite non-negative number (got \"-35.5\")"));
        assert!(err.to_string().contains(
            "zone \"ciso\" does not match the file's zone \"eso\" (first set at line 2)"
        ));
    }

    #[test]
    fn rejects_duplicates_and_disorder() {
        let src = "timestamp,zone,intensity,unit\n\
                   2021-01-01T00:00Z,eso,1.0,gCO2/kWh\n\
                   2021-01-01T01:00Z,eso,1.0,gCO2/kWh\n\
                   2021-01-01T01:00Z,eso,2.0,gCO2/kWh\n\
                   2021-01-01T03:00Z,eso,3.0,gCO2/kWh\n\
                   2021-01-01T02:00Z,eso,4.0,gCO2/kWh\n";
        let err = parse_trace_csv("t.csv", src, GapPolicy::Hold).unwrap_err();
        assert!(
            anchor(&err, 4).contains("duplicate hour 2021-01-01T01:00Z (first given at line 3)")
        );
        assert!(anchor(&err, 6).contains(
            "timestamp 2021-01-01T02:00Z is out of order (expected a strictly later hour than 2021-01-01T03:00Z)"
        ));
    }

    #[test]
    fn gap_policies() {
        let mut src = tiny_year_csv();
        // Remove two consecutive interior hours.
        src = src.replace("2021-05-01T03:00Z,eso,70.5,gCO2/kWh\n", "");
        src = src.replace("2021-05-01T04:00Z,eso,71.5,gCO2/kWh\n", "");
        let err = parse_trace_csv("t.csv", &src, GapPolicy::Reject).unwrap_err();
        assert!(
            err.to_string().contains(
                "gap of 2 missing hour(s) before 2021-05-01T05:00Z (gap policy \"reject\")"
            ),
            "{err}"
        );

        let hold = parse_trace_csv("t.csv", &src, GapPolicy::Hold).expect("hold fills");
        assert_eq!(hold.filled_hours, 2);
        let gap_start = (31 + 28 + 31 + 30) * 24 + 3; // 2021-05-01T03:00Z
        assert_eq!(hold.trace.series().at(gap_start), 69.5);
        assert_eq!(hold.trace.series().at(gap_start + 1), 69.5);

        let interp = parse_trace_csv("t.csv", &src, GapPolicy::Interpolate).expect("interpolates");
        assert_eq!(interp.filled_hours, 2);
        let before = 69.5;
        let after = 72.5;
        let a = interp.trace.series().at(gap_start);
        let b = interp.trace.series().at(gap_start + 1);
        assert!((a - (before + (after - before) / 3.0)).abs() < 1e-12);
        assert!((b - (before + 2.0 * (after - before) / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_checked_even_with_filling() {
        let mut src = tiny_year_csv();
        src = src.replace("2021-01-01T00:00Z,eso,0.5,gCO2/kWh\n", "");
        let err = parse_trace_csv("t.csv", &src, GapPolicy::Hold).unwrap_err();
        assert!(
            err.to_string()
                .contains("trace must start at 2021-01-01T00:00Z (first row is 2021-01-01T01:00Z)"),
            "{err}"
        );
        let mut src2 = tiny_year_csv();
        src2 = src2.replace("2021-12-31T23:00Z,eso,29.5,gCO2/kWh\n", "");
        let err2 = parse_trace_csv("t.csv", &src2, GapPolicy::Hold).unwrap_err();
        assert!(
            err2.to_string()
                .contains("trace must end at 2021-12-31T23:00Z (last row is 2021-12-31T22:00Z)"),
            "{err2}"
        );
    }

    #[test]
    fn rejects_empty_and_year_straddle() {
        let err = parse_trace_csv("t.csv", "", GapPolicy::Reject).unwrap_err();
        assert_eq!(err.to_string(), "t.csv: trace has no data rows");
        let err2 = parse_trace_csv(
            "t.csv",
            "timestamp,zone,intensity,unit\n",
            GapPolicy::Reject,
        )
        .unwrap_err();
        assert_eq!(err2.to_string(), "t.csv: trace has no data rows");

        let src = "timestamp,zone,intensity,unit\n\
                   2021-12-31T23:00Z,eso,1.0,gCO2/kWh\n\
                   2022-01-01T00:00Z,eso,1.0,gCO2/kWh\n";
        let err3 = parse_trace_csv("t.csv", src, GapPolicy::Reject).unwrap_err();
        assert!(
            err3.to_string()
                .contains("timestamp 2022-01-01T00:00Z is outside the trace year 2021"),
            "{err3}"
        );
    }

    #[test]
    fn field_count_diagnostic() {
        let src = "timestamp,zone,intensity,unit\n2021-01-01T00:00Z,eso,1.0\n";
        let err = parse_trace_csv("t.csv", src, GapPolicy::Reject).unwrap_err();
        assert!(anchor(&err, 2).contains("expected 4 comma-separated fields (got 3)"));
    }

    #[test]
    fn unknown_zone_diagnostic() {
        let src = "timestamp,zone,intensity,unit\n2021-01-01T00:00Z,mars,1.0,gCO2/kWh\n";
        let err = parse_trace_csv("t.csv", src, GapPolicy::Reject).unwrap_err();
        assert!(anchor(&err, 2)
            .contains("unknown zone \"mars\" (valid values: kn, tk, eso, ciso, pjm, miso, ercot)"));
    }

    #[test]
    fn emit_parse_round_trip() {
        let trace = crate::synth::synthesize_year(OperatorId::Ciso, 2021, 7);
        let csv = write_trace_csv(&trace);
        let p = parse_trace_csv("round.csv", &csv, GapPolicy::Reject).expect("round-trips");
        assert_eq!(p.operator, OperatorId::Ciso);
        assert_eq!(p.trace.series().values(), trace.series().values());
    }

    #[test]
    fn zone_labels_round_trip() {
        for op in OperatorId::ALL {
            assert_eq!(parse_zone(zone_label(op)), Some(op));
        }
        assert_eq!(parse_zone("ESO"), None);
    }
}
