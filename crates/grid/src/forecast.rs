//! Intensity forecasts for uncertainty-aware shifting.
//!
//! The shifting policies' argmin primitives (`greenest_shift`,
//! `greenest_window`) assume perfect future knowledge — the numbers they
//! produce are *oracle* savings. Real schedulers plan on a forecast and
//! pay the actual grid. This module builds whole-year *planning traces*
//! from an actual trace under several forecast models, so a scheduler can
//! argmin over the forecast while cost is realized against the actual
//! series:
//!
//! - [`persistence_forecast`] — tomorrow looks like today (24 h lag), the
//!   standard no-skill baseline of the forecasting literature;
//! - [`day_ahead_harmonic_forecast`] — a deterministic harmonic fit
//!   (annual mean + two diurnal harmonics + one seasonal harmonic), the
//!   shape a day-ahead market forecast captures;
//! - [`noisy_oracle_forecast`] — the actual trace under seeded
//!   multiplicative Gaussian error, for dialing forecast quality
//!   continuously between oracle and useless.
//!
//! All three return an [`IntensityTrace`] over the same year, so the
//! `WindowIndex` machinery applies to the forecast unchanged. Everything
//! here is deterministic: the harmonic fit uses no randomness, and the
//! noisy oracle forks one [`SimRng`] stream per hour from the caller's
//! seed, independent of thread count or evaluation order.

use crate::trace::IntensityTrace;
use hpcarbon_sim::dist::standard_normal;
use hpcarbon_sim::rng::SimRng;
use hpcarbon_timeseries::series::HourlySeries;

/// A model that turns the actual trace into a planning trace.
///
/// `seed` is the forecast substream seed (already forked from the request
/// seed by the caller); models without randomness ignore it.
pub trait ForecastProvider {
    /// Builds the planning trace for `actual`.
    fn forecast(&self, actual: &IntensityTrace, seed: u64) -> IntensityTrace;
}

/// Perfect knowledge: the planning trace *is* the actual trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl ForecastProvider for Oracle {
    fn forecast(&self, actual: &IntensityTrace, _seed: u64) -> IntensityTrace {
        actual.clone()
    }
}

/// 24-hour persistence (see [`persistence_forecast`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Persistence;

impl ForecastProvider for Persistence {
    fn forecast(&self, actual: &IntensityTrace, _seed: u64) -> IntensityTrace {
        persistence_forecast(actual)
    }
}

/// Harmonic day-ahead fit (see [`day_ahead_harmonic_forecast`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DayAhead;

impl ForecastProvider for DayAhead {
    fn forecast(&self, actual: &IntensityTrace, _seed: u64) -> IntensityTrace {
        day_ahead_harmonic_forecast(actual)
    }
}

/// Seeded noisy oracle (see [`noisy_oracle_forecast`]).
#[derive(Debug, Clone, Copy)]
pub struct NoisyOracle {
    /// Relative error, in whole percent (σ of the multiplicative noise).
    pub error_pct: u32,
}

impl ForecastProvider for NoisyOracle {
    fn forecast(&self, actual: &IntensityTrace, seed: u64) -> IntensityTrace {
        noisy_oracle_forecast(actual, self.error_pct, seed)
    }
}

/// The persistence forecast: each hour predicted by the same hour one day
/// earlier. The first day wraps to the last day of the year — a benign
/// fiction (both are midwinter) that keeps the planning trace total.
pub fn persistence_forecast(actual: &IntensityTrace) -> IntensityTrace {
    let series = actual.series();
    let n = series.len();
    let values = (0..n)
        .map(|h| series.at(((h + n - 24) % n) as u32))
        .collect();
    IntensityTrace::new(actual.operator(), HourlySeries::new(series.year(), values))
}

/// The day-ahead harmonic forecast: annual mean plus the first two
/// diurnal harmonics (periods 24 h and 12 h — the solar duck curve needs
/// the second) plus the first annual harmonic, fit to the actual series
/// by discrete Fourier projection. Captures the systematic structure a
/// day-ahead forecast gets right while missing all weather-driven
/// residuals. Negative fitted values clamp to zero.
pub fn day_ahead_harmonic_forecast(actual: &IntensityTrace) -> IntensityTrace {
    let series = actual.series();
    let v = series.values();
    let n = v.len();
    let nf = n as f64;
    let mean = series.mean();

    // Projection coefficients for angular frequency `w` (radians/hour).
    let project = |w: f64| -> (f64, f64) {
        let mut a = 0.0;
        let mut b = 0.0;
        for (h, x) in v.iter().enumerate() {
            let t = w * h as f64;
            a += (x - mean) * t.cos();
            b += (x - mean) * t.sin();
        }
        (2.0 * a / nf, 2.0 * b / nf)
    };

    let tau = std::f64::consts::TAU;
    let freqs = [tau / 24.0, tau / 12.0, tau / nf];
    let coeffs: Vec<(f64, f64, f64)> = freqs
        .iter()
        .map(|&w| {
            let (a, b) = project(w);
            (w, a, b)
        })
        .collect();

    let values = (0..n)
        .map(|h| {
            let t = h as f64;
            let fit: f64 = coeffs
                .iter()
                .map(|&(w, a, b)| a * (w * t).cos() + b * (w * t).sin())
                .sum();
            (mean + fit).max(0.0)
        })
        .collect();
    IntensityTrace::new(actual.operator(), HourlySeries::new(series.year(), values))
}

/// The noisy oracle: the actual value at each hour scaled by
/// `1 + σ·z_h` with `σ = error_pct / 100` and `z_h` standard normal,
/// clamped at zero. Each hour forks its own RNG stream from `seed`, so
/// the forecast is byte-identical regardless of thread count or
/// evaluation order, and `error_pct = 0` degenerates to the oracle.
pub fn noisy_oracle_forecast(actual: &IntensityTrace, error_pct: u32, seed: u64) -> IntensityTrace {
    let series = actual.series();
    let sigma = f64::from(error_pct) / 100.0;
    let base = SimRng::seed_from(seed);
    let values = series
        .values()
        .iter()
        .enumerate()
        .map(|(h, v)| {
            let mut rng = base.fork(h as u64);
            let z = standard_normal(&mut rng);
            (v * (1.0 + sigma * z)).max(0.0)
        })
        .collect();
    IntensityTrace::new(actual.operator(), HourlySeries::new(series.year(), values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::OperatorId;
    use crate::synth::synthesize_year;

    fn actual() -> IntensityTrace {
        synthesize_year(OperatorId::Eso, 2021, 11)
    }

    #[test]
    fn oracle_is_identity() {
        let a = actual();
        let f = Oracle.forecast(&a, 99);
        assert_eq!(f.series().values(), a.series().values());
    }

    #[test]
    fn persistence_lags_a_day() {
        let a = actual();
        let f = persistence_forecast(&a);
        assert_eq!(f.series().at(24), a.series().at(0));
        assert_eq!(f.series().at(8759), a.series().at(8735));
        // The first day wraps to the last day.
        assert_eq!(f.series().at(0), a.series().at(8736));
        assert_eq!(f.operator(), a.operator());
    }

    #[test]
    fn day_ahead_preserves_mean_and_diurnal_shape() {
        let a = actual();
        let f = day_ahead_harmonic_forecast(&a);
        // The projection keeps the annual mean (up to clamping).
        assert!((f.series().mean() - a.series().mean()).abs() / a.series().mean() < 0.02);
        // It explains variance: RMSE of the fit is below the raw std dev.
        let n = a.series().len() as f64;
        let var: f64 = a
            .series()
            .values()
            .iter()
            .map(|v| (v - a.series().mean()).powi(2))
            .sum::<f64>()
            / n;
        let mse: f64 = a
            .series()
            .values()
            .iter()
            .zip(f.series().values())
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            / n;
        assert!(
            mse < var,
            "harmonic fit should beat the mean: {mse} vs {var}"
        );
        // Deterministic: ignores the seed entirely.
        let g = DayAhead.forecast(&a, 1234);
        assert_eq!(f.series().values(), g.series().values());
    }

    #[test]
    fn noisy_oracle_is_seeded_and_scales_with_error() {
        let a = actual();
        let f1 = noisy_oracle_forecast(&a, 10, 42);
        let f2 = noisy_oracle_forecast(&a, 10, 42);
        assert_eq!(f1.series().values(), f2.series().values());
        let f3 = noisy_oracle_forecast(&a, 10, 43);
        assert_ne!(f1.series().values(), f3.series().values());
        // Zero error degenerates to the oracle.
        let f0 = noisy_oracle_forecast(&a, 0, 42);
        assert_eq!(f0.series().values(), a.series().values());
        // Larger error ⇒ larger mean absolute deviation.
        let mad = |f: &IntensityTrace| -> f64 {
            f.series()
                .values()
                .iter()
                .zip(a.series().values())
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
        };
        let f20 = noisy_oracle_forecast(&a, 20, 42);
        assert!(mad(&f20) > mad(&f1));
        // Never negative.
        assert!(f20.series().values().iter().all(|v| *v >= 0.0));
    }
}
