//! Property tests for the scheduler: conservation, bounds and determinism
//! under arbitrary workloads and policies.

use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_sched::{Cluster, Job, JobTraceGenerator, Policy, Simulation};
use hpcarbon_timeseries::series::HourlySeries;
use hpcarbon_units::Power;
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        (50.0..400.0f64).prop_map(|t| Policy::ThresholdDefer {
            threshold_g_per_kwh: t
        }),
        (1u32..48).prop_map(|h| Policy::GreenestWindow { horizon_hours: h }),
        Just(Policy::LowestIntensityRegion),
        (1u32..48).prop_map(|h| Policy::RegionAndTime { horizon_hours: h }),
    ]
}

fn test_clusters(seed: u64) -> Vec<Cluster> {
    vec![
        Cluster::new("a", diurnal_trace(seed), 64),
        Cluster::new("b", flat_trace(250.0), 64),
    ]
}

fn diurnal_trace(seed: u64) -> IntensityTrace {
    let phase = seed as f64;
    IntensityTrace::new(
        OperatorId::Eso,
        HourlySeries::from_fn(2021, move |st| {
            200.0 + 150.0 * (std::f64::consts::TAU * (f64::from(st.hour()) + phase) / 24.0).sin()
        }),
    )
}

fn flat_trace(level: f64) -> IntensityTrace {
    IntensityTrace::new(OperatorId::Ciso, HourlySeries::constant(2021, level))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job completes exactly once, with non-negative wait, on a
    /// valid cluster, under any policy.
    #[test]
    fn completeness_and_sanity(policy in any_policy(), seed in 0u64..100, n in 10usize..120) {
        let jobs = JobTraceGenerator::default_rates().generate(n, seed);
        let out = Simulation::multi_region(test_clusters(seed), policy, &jobs).run();
        prop_assert_eq!(out.jobs.len(), n);
        for (job, o) in jobs.iter().zip(&out.jobs) {
            prop_assert_eq!(o.id, job.id);
            prop_assert!(o.wait_hours >= -1e-9);
            prop_assert!(o.cluster < 2);
            prop_assert!(o.start_hours + 1e-9 >= job.arrival_hours);
            prop_assert!(o.carbon.as_g() > 0.0);
        }
    }

    /// Facility energy is policy-invariant (same jobs, same power, same
    /// PUE) — only carbon varies with placement/timing.
    #[test]
    fn energy_conservation(p1 in any_policy(), p2 in any_policy(), seed in 0u64..50) {
        let jobs = JobTraceGenerator::default_rates().generate(60, seed);
        let a = Simulation::multi_region(test_clusters(seed), p1, &jobs).run();
        let b = Simulation::multi_region(test_clusters(seed), p2, &jobs).run();
        prop_assert!((a.total_energy.as_kwh() - b.total_energy.as_kwh()).abs() < 1e-6);
    }

    /// Carbon totals are bounded by the trace extremes times the energy.
    #[test]
    fn carbon_bounds(policy in any_policy(), seed in 0u64..50) {
        let jobs = JobTraceGenerator::default_rates().generate(60, seed);
        let out = Simulation::multi_region(test_clusters(seed), policy, &jobs).run();
        // Bounds from the union of both clusters' intensity ranges.
        let lo = 50.0f64.min(250.0);
        let hi = 350.0f64.max(250.0);
        let e = out.total_energy.as_kwh();
        prop_assert!(out.total_carbon.as_g() >= e * lo - 1e-6);
        prop_assert!(out.total_carbon.as_g() <= e * hi + 1e-6);
    }

    /// Determinism: identical inputs give identical outcomes.
    #[test]
    fn deterministic(policy in any_policy(), seed in 0u64..50) {
        let jobs = JobTraceGenerator::default_rates().generate(40, seed);
        let a = Simulation::multi_region(test_clusters(seed), policy, &jobs).run();
        let b = Simulation::multi_region(test_clusters(seed), policy, &jobs).run();
        prop_assert_eq!(a.total_carbon.as_g(), b.total_carbon.as_g());
        prop_assert_eq!(a.mean_wait_hours, b.mean_wait_hours);
    }

    /// The greenest-window policy never increases carbon on a cluster pair
    /// where one trace is flat (deferral can only help or match).
    #[test]
    fn greenest_window_never_hurts_on_flat_trace(seed in 0u64..30) {
        let flat = vec![Cluster::new("flat", flat_trace(300.0), 128)];
        let jobs = JobTraceGenerator::default_rates().generate(50, seed);
        let fifo = Simulation::multi_region(flat.clone(), Policy::Fifo, &jobs).run();
        let aware = Simulation::multi_region(
            flat,
            Policy::GreenestWindow { horizon_hours: 24 },
            &jobs,
        )
        .run();
        // Flat trace: deferral buys nothing but costs nothing in carbon.
        prop_assert!((aware.total_carbon.as_g() - fifo.total_carbon.as_g()).abs() < 1e-6);
    }

    /// Single explicit job: carbon equals the cluster accounting exactly,
    /// for any runtime/power.
    #[test]
    fn single_job_carbon_exact(
        runtime in 0.1..100.0f64,
        kw in 0.05..10.0f64,
        arrival in 0.0..5000.0f64,
    ) {
        let c = Cluster::new("x", diurnal_trace(3), 16);
        let jobs = vec![Job {
            id: 0,
            user: 0,
            arrival_hours: arrival,
            runtime_hours: runtime,
            gpus: 1,
            power_per_gpu: Power::from_kw(kw),
            max_defer_hours: 0.0,
        }];
        let out = Simulation::single_region(c.clone(), Policy::Fifo, &jobs).run();
        let expect = c.carbon_for(
            arrival,
            hpcarbon_units::TimeSpan::from_hours(runtime),
            Power::from_kw(kw),
        );
        prop_assert!((out.total_carbon.as_g() - expect.as_g()).abs() < 1e-6);
    }
}
