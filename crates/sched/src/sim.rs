//! The scheduling simulation: discrete events over clusters and a policy.

use crate::budget::CarbonBudgetLedger;
use crate::cluster::Cluster;
use crate::job::Job;
use crate::policy::Policy;
use hpcarbon_sim::des::EventQueue;
use hpcarbon_units::{CarbonMass, Energy, TimeSpan};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A job is submitted.
    Arrive(usize),
    /// A deferred job becomes eligible to run on its placed cluster.
    Release(usize, usize),
    /// A running job completes on a cluster.
    Finish(usize, usize),
}

/// Why a configured simulation cannot run.
///
/// Sweep batches construct simulations from generated (cluster, trace,
/// job) combinations; an infeasible combination must come back as an
/// `Err` row rather than a panic that kills the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A job demands more GPUs than any cluster offers.
    OversizedJob {
        /// Offending job id.
        job: usize,
        /// GPUs the job demands.
        gpus: u32,
    },
    /// A shifting policy's slack spans at least one full trace year, so a
    /// deferred release hour could land outside the trace (and the
    /// "greenest window within slack" question degenerates to scanning
    /// the whole year again).
    ShiftSlackExceedsTrace {
        /// The policy's slack, hours.
        slack_hours: u32,
        /// The shortest cluster trace, hours.
        trace_hours: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OversizedJob { job, gpus } => write!(
                f,
                "job {job} needs {gpus} GPUs but no cluster is large enough"
            ),
            SimError::ShiftSlackExceedsTrace {
                slack_hours,
                trace_hours,
            } => write!(
                f,
                "shifting slack of {slack_hours} h meets or exceeds the {trace_hours} h trace horizon"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-job outcome.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// Job id.
    pub id: usize,
    /// Cluster the job ran on.
    pub cluster: usize,
    /// Queue wait (from arrival to start), hours. Includes policy
    /// deferral and capacity waiting.
    pub wait_hours: f64,
    /// Start time, hours since epoch.
    pub start_hours: f64,
    /// Operational carbon of the run.
    pub carbon: CarbonMass,
    /// Facility energy of the run.
    pub energy: Energy,
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Policy simulated.
    pub policy: Policy,
    /// Per-job outcomes, in job-id order.
    pub jobs: Vec<JobOutcome>,
    /// Sum of job carbon.
    pub total_carbon: CarbonMass,
    /// Sum of facility energy.
    pub total_energy: Energy,
    /// Mean queue wait, hours.
    pub mean_wait_hours: f64,
    /// Maximum queue wait, hours.
    pub max_wait_hours: f64,
    /// Per-user carbon ledger (filled when budgets are enabled).
    pub ledger: Option<CarbonBudgetLedger>,
}

impl SimOutcome {
    /// Mean carbon per job, grams.
    pub fn mean_carbon_g(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.total_carbon.as_g() / self.jobs.len() as f64
    }
}

/// How a region's capacity queue admits jobs when the head does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Strict FIFO: a blocked head blocks everything behind it. Trivially
    /// fair, wastes capacity.
    StrictFifo,
    /// First-fit: any queued job that fits may start (aggressive backfill;
    /// can starve wide jobs indefinitely).
    FirstFit,
    /// EASY backfill: the head gets a reservation at the earliest time
    /// enough GPUs free up; later jobs may jump ahead only if they finish
    /// before that reservation — bounded delay for wide jobs, high
    /// utilization.
    EasyBackfill,
}

struct RegionState {
    free_gpus: u32,
    /// Jobs eligible to run, waiting for capacity (job indices, in
    /// eligibility order; budget priority reorders at pop time).
    queue: Vec<usize>,
    /// Running jobs as (end_time_hours, gpus, job_index) — the EASY
    /// reservation calculation walks this sorted by end time.
    running: Vec<(f64, u32, usize)>,
}

/// A configured simulation.
pub struct Simulation<'a> {
    clusters: Vec<Cluster>,
    policy: Policy,
    jobs: &'a [Job],
    ledger: Option<CarbonBudgetLedger>,
    discipline: QueueDiscipline,
}

impl<'a> Simulation<'a> {
    /// Single-cluster setup.
    pub fn single_region(cluster: Cluster, policy: Policy, jobs: &'a [Job]) -> Simulation<'a> {
        Simulation {
            clusters: vec![cluster],
            policy,
            jobs,
            ledger: None,
            discipline: QueueDiscipline::FirstFit,
        }
    }

    /// Multi-cluster setup. Jobs arrive round-robin across clusters (the
    /// user's home site); multi-region policies may move them.
    pub fn multi_region(clusters: Vec<Cluster>, policy: Policy, jobs: &'a [Job]) -> Simulation<'a> {
        assert!(!clusters.is_empty(), "need at least one cluster");
        Simulation {
            clusters,
            policy,
            jobs,
            ledger: None,
            discipline: QueueDiscipline::FirstFit,
        }
    }

    /// Enables per-user carbon budgets: users with more remaining budget
    /// are popped from capacity queues first (the paper's queue-priority
    /// incentive).
    pub fn with_budgets(mut self, ledger: CarbonBudgetLedger) -> Simulation<'a> {
        self.ledger = Some(ledger);
        self
    }

    /// Selects the capacity-queue discipline (default: first-fit).
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Simulation<'a> {
        self.discipline = discipline;
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    /// If a job is larger than every cluster ([`Simulation::try_run`] is
    /// the non-panicking variant).
    pub fn run(self) -> SimOutcome {
        match self.try_run() {
            Ok(out) => out,
            // lint: allow(panic-in-library) -- documented "# Panics" convenience wrapper; try_run is the typed-error form
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation, reporting infeasible configurations as a
    /// [`SimError`] instead of panicking — the sweep-friendly entry point.
    ///
    /// # Errors
    /// [`SimError::OversizedJob`] when a job is larger than every cluster.
    pub fn try_run(self) -> Result<SimOutcome, SimError> {
        let Simulation {
            clusters,
            policy,
            jobs,
            mut ledger,
            discipline,
        } = self;
        let mut q: EventQueue<Event> = EventQueue::new();
        let mut regions: Vec<RegionState> = clusters
            .iter()
            .map(|c| RegionState {
                free_gpus: c.capacity_gpus,
                queue: Vec::new(),
                running: Vec::new(),
            })
            .collect();
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];

        for (i, job) in jobs.iter().enumerate() {
            q.schedule_at(job.arrival_hours, Event::Arrive(i));
        }

        // Capacity guard: a job larger than every cluster can never run.
        for job in jobs {
            if !clusters.iter().any(|c| c.capacity_gpus >= job.gpus) {
                return Err(SimError::OversizedJob {
                    job: job.id,
                    gpus: job.gpus,
                });
            }
        }

        // Slack guard: a shifting slack of a full trace year (or more)
        // would defer jobs past the hours the trace can price.
        if let Some(slack_hours) = policy.shift_slack_hours() {
            for c in &clusters {
                let trace_hours = c.trace.series().len() as u32;
                if slack_hours >= trace_hours {
                    return Err(SimError::ShiftSlackExceedsTrace {
                        slack_hours,
                        trace_hours,
                    });
                }
            }
        }

        while let Some((now, event)) = q.pop() {
            match event {
                Event::Arrive(i) => {
                    let arrival_cluster = jobs[i].user % clusters.len();
                    let mut placement = policy.place(&jobs[i], now, arrival_cluster, &clusters);
                    // The shared fallback rule; the capacity guard above
                    // ensures a fit exists.
                    placement.cluster =
                        crate::cluster::fitting_cluster(placement.cluster, &jobs[i], &clusters);
                    if placement.earliest_start_hours > now {
                        q.schedule_at(
                            placement.earliest_start_hours,
                            Event::Release(i, placement.cluster),
                        );
                    } else {
                        regions[placement.cluster].queue.push(i);
                        try_start(
                            &mut q,
                            &clusters,
                            &mut regions,
                            jobs,
                            &mut outcomes,
                            ledger.as_ref(),
                            discipline,
                            placement.cluster,
                            now,
                        );
                    }
                }
                Event::Release(i, cluster) => {
                    regions[cluster].queue.push(i);
                    try_start(
                        &mut q,
                        &clusters,
                        &mut regions,
                        jobs,
                        &mut outcomes,
                        ledger.as_ref(),
                        discipline,
                        cluster,
                        now,
                    );
                }
                Event::Finish(i, cluster) => {
                    regions[cluster].free_gpus += jobs[i].gpus;
                    regions[cluster].running.retain(|(_, _, j)| *j != i);
                    if let (Some(ledger), Some(outcome)) = (ledger.as_mut(), outcomes[i].as_ref()) {
                        ledger.charge(jobs[i].user, outcome.carbon);
                    }
                    try_start(
                        &mut q,
                        &clusters,
                        &mut regions,
                        jobs,
                        &mut outcomes,
                        ledger.as_ref(),
                        discipline,
                        cluster,
                        now,
                    );
                }
            }
        }

        let jobs_out: Vec<JobOutcome> = outcomes
            .into_iter()
            // lint: allow(panic-in-library) -- the event loop only terminates once every queue is drained, and try_run has already rejected jobs no cluster can fit
            .map(|o| o.expect("every job eventually runs"))
            .collect();
        let total_carbon: CarbonMass = jobs_out.iter().map(|j| j.carbon).sum();
        let total_energy: Energy = jobs_out.iter().map(|j| j.energy).sum();
        let mean_wait =
            jobs_out.iter().map(|j| j.wait_hours).sum::<f64>() / jobs_out.len().max(1) as f64;
        let max_wait = jobs_out.iter().map(|j| j.wait_hours).fold(0.0f64, f64::max);
        Ok(SimOutcome {
            policy,
            jobs: jobs_out,
            total_carbon,
            total_energy,
            mean_wait_hours: mean_wait,
            max_wait_hours: max_wait,
            ledger,
        })
    }
}

/// Starts as many queued jobs as the discipline and capacity allow on
/// `cluster`.
#[allow(clippy::too_many_arguments)]
fn try_start(
    q: &mut EventQueue<Event>,
    clusters: &[Cluster],
    regions: &mut [RegionState],
    jobs: &[Job],
    outcomes: &mut [Option<JobOutcome>],
    ledger: Option<&CarbonBudgetLedger>,
    discipline: QueueDiscipline,
    cluster: usize,
    now: f64,
) {
    loop {
        let region = &mut regions[cluster];
        if region.queue.is_empty() {
            return;
        }
        // Budget priority reorders the whole queue before admission;
        // otherwise the queue stays in eligibility order.
        if let Some(ledger) = ledger {
            region.queue.sort_by(|a, b| {
                // Remaining fractions are finite by construction, so
                // `total_cmp` orders them identically without the panic.
                ledger
                    .remaining_fraction(jobs[*b].user)
                    .total_cmp(&ledger.remaining_fraction(jobs[*a].user))
                    .then(a.cmp(b))
            });
        }

        let head = region.queue[0];
        let pick = if jobs[head].gpus <= region.free_gpus {
            Some(0)
        } else {
            match discipline {
                QueueDiscipline::StrictFifo => None,
                QueueDiscipline::FirstFit => (1..region.queue.len())
                    .find(|qi| jobs[region.queue[*qi]].gpus <= region.free_gpus),
                QueueDiscipline::EasyBackfill => {
                    let reservation = easy_reservation(region, &jobs[head], now);
                    (1..region.queue.len()).find(|qi| {
                        let j = &jobs[region.queue[*qi]];
                        j.gpus <= region.free_gpus && now + j.runtime_hours <= reservation + 1e-9
                    })
                }
            }
        };
        let Some(pick) = pick else { return };
        let job_idx = region.queue.remove(pick);
        let job = &jobs[job_idx];
        region.free_gpus -= job.gpus;
        region
            .running
            .push((now + job.runtime_hours, job.gpus, job_idx));
        let duration = TimeSpan::from_hours(job.runtime_hours);
        let carbon = clusters[cluster].carbon_for(now, duration, job.power());
        let energy = clusters[cluster].energy_for(duration, job.power());
        outcomes[job_idx] = Some(JobOutcome {
            id: job.id,
            cluster,
            wait_hours: now - job.arrival_hours,
            start_hours: now,
            carbon,
            energy,
        });
        q.schedule_at(now + job.runtime_hours, Event::Finish(job_idx, cluster));
    }
}

/// The EASY reservation: the earliest time enough GPUs free up for the
/// queue head, assuming running jobs finish on schedule.
fn easy_reservation(region: &RegionState, head: &Job, now: f64) -> f64 {
    let mut ends: Vec<(f64, u32)> = region
        .running
        .iter()
        .map(|(end, gpus, _)| (*end, *gpus))
        .collect();
    // End times are finite sums of finite starts and runtimes, so
    // `total_cmp` orders them identically without the panic arm.
    ends.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut free = region.free_gpus;
    for (end, gpus) in ends {
        free += gpus;
        if free >= head.gpus {
            return end.max(now);
        }
    }
    // Unreachable when the guard in run() holds (the head fits the
    // cluster), but stay safe.
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobTraceGenerator;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;
    use hpcarbon_units::Power;

    fn diurnal_cluster(capacity: u32) -> Cluster {
        let t = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 6 { 50.0 } else { 400.0 }),
        );
        Cluster::new("a", t, capacity)
    }

    fn jobs(n: usize, seed: u64) -> Vec<Job> {
        JobTraceGenerator::default_rates().generate(n, seed)
    }

    #[test]
    fn fifo_runs_everything_with_zero_policy_delay() {
        let js = jobs(100, 1);
        let out = Simulation::single_region(diurnal_cluster(512), Policy::Fifo, &js).run();
        assert_eq!(out.jobs.len(), 100);
        // Enormous capacity: every job starts on arrival.
        assert!(out.mean_wait_hours < 1e-9, "{}", out.mean_wait_hours);
        assert!(out.total_carbon.as_kg() > 0.0);
    }

    #[test]
    fn capacity_pressure_creates_waits() {
        let js = jobs(200, 2);
        let big = Simulation::single_region(diurnal_cluster(512), Policy::Fifo, &js).run();
        let small = Simulation::single_region(diurnal_cluster(8), Policy::Fifo, &js).run();
        assert!(small.mean_wait_hours > big.mean_wait_hours);
        // Same jobs, same region: energy identical regardless of capacity.
        assert!((small.total_energy.as_kwh() - big.total_energy.as_kwh()).abs() < 1e-6);
    }

    #[test]
    fn greenest_window_cuts_carbon_at_bounded_wait() {
        let js = jobs(300, 3);
        let fifo = Simulation::single_region(diurnal_cluster(512), Policy::Fifo, &js).run();
        let aware = Simulation::single_region(
            diurnal_cluster(512),
            Policy::GreenestWindow { horizon_hours: 24 },
            &js,
        )
        .run();
        assert!(
            aware.total_carbon.as_kg() < fifo.total_carbon.as_kg() * 0.8,
            "aware {} vs fifo {}",
            aware.total_carbon.as_kg(),
            fifo.total_carbon.as_kg()
        );
        // Waits stay within the deferral tolerances (+ small queueing).
        let max_tolerance = js.iter().map(|j| j.max_defer_hours).fold(0.0f64, f64::max);
        assert!(aware.max_wait_hours <= max_tolerance + 1.0);
    }

    #[test]
    fn threshold_defer_cuts_carbon() {
        let js = jobs(300, 4);
        let fifo = Simulation::single_region(diurnal_cluster(512), Policy::Fifo, &js).run();
        let aware = Simulation::single_region(
            diurnal_cluster(512),
            Policy::ThresholdDefer {
                threshold_g_per_kwh: 100.0,
            },
            &js,
        )
        .run();
        assert!(aware.total_carbon < fifo.total_carbon);
        assert!(aware.mean_wait_hours > fifo.mean_wait_hours);
    }

    #[test]
    fn cross_region_dispatch_prefers_clean_regions() {
        let dirty = Cluster::new(
            "dirty",
            IntensityTrace::new(OperatorId::Miso, HourlySeries::constant(2021, 500.0)),
            256,
        );
        let clean = Cluster::new(
            "clean",
            IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 100.0)),
            256,
        );
        let js = jobs(200, 5);
        let single =
            Simulation::multi_region(vec![dirty.clone(), clean.clone()], Policy::Fifo, &js).run();
        let multi =
            Simulation::multi_region(vec![dirty, clean], Policy::LowestIntensityRegion, &js).run();
        assert!(multi.total_carbon.as_kg() < single.total_carbon.as_kg());
        // All jobs land on the clean cluster.
        assert!(multi.jobs.iter().all(|j| j.cluster == 1));
    }

    #[test]
    fn outcomes_are_deterministic() {
        let js = jobs(150, 6);
        let a = Simulation::single_region(
            diurnal_cluster(32),
            Policy::GreenestWindow { horizon_hours: 12 },
            &js,
        )
        .run();
        let b = Simulation::single_region(
            diurnal_cluster(32),
            Policy::GreenestWindow { horizon_hours: 12 },
            &js,
        )
        .run();
        assert_eq!(a.total_carbon.as_g(), b.total_carbon.as_g());
        assert_eq!(a.mean_wait_hours, b.mean_wait_hours);
    }

    #[test]
    fn job_carbon_matches_cluster_accounting() {
        let c = diurnal_cluster(8);
        let js = vec![Job {
            id: 0,
            user: 0,
            arrival_hours: 2.0,
            runtime_hours: 3.0,
            gpus: 2,
            power_per_gpu: Power::from_w(250.0),
            max_defer_hours: 0.0,
        }];
        let out = Simulation::single_region(c.clone(), Policy::Fifo, &js).run();
        let expected = c.carbon_for(2.0, TimeSpan::from_hours(3.0), Power::from_w(500.0));
        assert!((out.total_carbon.as_g() - expected.as_g()).abs() < 1e-9);
    }

    #[test]
    fn temporal_shift_cuts_carbon_via_release_events() {
        let js = jobs(300, 3);
        let fifo = Simulation::single_region(diurnal_cluster(512), Policy::Fifo, &js).run();
        let shifted = Simulation::single_region(
            diurnal_cluster(512),
            Policy::TemporalShift { slack_hours: 24 },
            &js,
        )
        .run();
        assert!(
            shifted.total_carbon.as_kg() < fifo.total_carbon.as_kg() * 0.8,
            "shifted {} vs fifo {}",
            shifted.total_carbon.as_kg(),
            fifo.total_carbon.as_kg()
        );
        // Deferral is bounded by the policy slack (+ capacity queueing,
        // which is zero at this capacity).
        assert!(shifted.max_wait_hours <= 24.0 + 1e-9);
    }

    #[test]
    fn spatio_temporal_beats_single_axis_policies() {
        let dirty_flat = Cluster::new(
            "flat",
            IntensityTrace::new(OperatorId::Miso, HourlySeries::constant(2021, 300.0)),
            512,
        );
        let js = jobs(200, 9);
        let run = |policy| {
            Simulation::multi_region(vec![dirty_flat.clone(), diurnal_cluster(512)], policy, &js)
                .run()
                .total_carbon
                .as_kg()
        };
        let joint = run(Policy::SpatioTemporal { slack_hours: 24 });
        let temporal_only = run(Policy::TemporalShift { slack_hours: 24 });
        let spatial_only = run(Policy::LowestIntensityRegion);
        assert!(joint <= temporal_only + 1e-9, "{joint} vs {temporal_only}");
        assert!(joint <= spatial_only + 1e-9, "{joint} vs {spatial_only}");
    }

    #[test]
    fn shifting_outcomes_are_deterministic() {
        let js = jobs(150, 8);
        let run = || {
            Simulation::single_region(
                diurnal_cluster(32),
                Policy::SpatioTemporal { slack_hours: 18 },
                &js,
            )
            .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.total_carbon.as_g(), b.total_carbon.as_g());
        assert_eq!(a.mean_wait_hours, b.mean_wait_hours);
    }

    #[test]
    fn oversized_slack_fails_soft() {
        let js = jobs(10, 1);
        let err = Simulation::single_region(
            diurnal_cluster(512),
            Policy::TemporalShift { slack_hours: 8760 },
            &js,
        )
        .try_run()
        .unwrap_err();
        assert_eq!(
            err,
            SimError::ShiftSlackExceedsTrace {
                slack_hours: 8760,
                trace_hours: 8760
            }
        );
        assert!(err.to_string().contains("trace horizon"));
        // One hour less is fine.
        assert!(Simulation::single_region(
            diurnal_cluster(512),
            Policy::TemporalShift { slack_hours: 8759 },
            &js,
        )
        .try_run()
        .is_ok());
    }

    #[test]
    fn try_run_reports_oversized_jobs_softly() {
        let js = vec![Job {
            id: 7,
            user: 0,
            arrival_hours: 0.0,
            runtime_hours: 1.0,
            gpus: 64,
            power_per_gpu: Power::from_w(250.0),
            max_defer_hours: 0.0,
        }];
        let err = Simulation::single_region(diurnal_cluster(8), Policy::Fifo, &js)
            .try_run()
            .unwrap_err();
        assert_eq!(err, SimError::OversizedJob { job: 7, gpus: 64 });
    }

    #[test]
    #[should_panic(expected = "no cluster is large enough")]
    fn oversized_job_is_rejected_up_front() {
        let js = vec![Job {
            id: 0,
            user: 0,
            arrival_hours: 0.0,
            runtime_hours: 1.0,
            gpus: 64,
            power_per_gpu: Power::from_w(250.0),
            max_defer_hours: 0.0,
        }];
        let _ = Simulation::single_region(diurnal_cluster(8), Policy::Fifo, &js).run();
    }
}

#[cfg(test)]
mod discipline_tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;
    use hpcarbon_units::Power;

    fn cluster(capacity: u32) -> Cluster {
        Cluster::new(
            "c",
            IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 200.0)),
            capacity,
        )
    }

    /// A wide job arrives just after a stream of narrow jobs begins; more
    /// narrow jobs keep arriving forever after.
    fn starvation_trace() -> Vec<Job> {
        let mut jobs = Vec::new();
        // Two 4-GPU jobs occupy the whole 8-GPU cluster from t=0, renewed
        // in staggered fashion so 4 GPUs free up periodically.
        for k in 0..60 {
            jobs.push(Job {
                id: jobs.len(),
                user: 0,
                arrival_hours: k as f64 * 1.0,
                runtime_hours: 2.0,
                gpus: 4,
                power_per_gpu: Power::from_w(300.0),
                max_defer_hours: 0.0,
            });
        }
        // The wide job arrives at t=0.5 and needs the whole cluster.
        jobs.push(Job {
            id: jobs.len(),
            user: 1,
            arrival_hours: 0.5,
            runtime_hours: 4.0,
            gpus: 8,
            power_per_gpu: Power::from_w(300.0),
            max_defer_hours: 0.0,
        });
        jobs.sort_by(|a, b| a.arrival_hours.partial_cmp(&b.arrival_hours).unwrap());
        let mut jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, mut j)| {
                j.id = i;
                j
            })
            .collect();
        jobs.sort_by_key(|j| j.id);
        jobs
    }

    fn wide_job_wait(discipline: QueueDiscipline) -> f64 {
        let jobs = starvation_trace();
        let wide_id = jobs
            .iter()
            .find(|j| j.gpus == 8)
            .expect("wide job present")
            .id;
        let out = Simulation::single_region(cluster(8), Policy::Fifo, &jobs)
            .with_discipline(discipline)
            .run();
        out.jobs[wide_id].wait_hours
    }

    #[test]
    fn first_fit_starves_the_wide_job() {
        // Narrow jobs keep slipping in front: the wide job waits until the
        // narrow stream dries up.
        let ff = wide_job_wait(QueueDiscipline::FirstFit);
        let easy = wide_job_wait(QueueDiscipline::EasyBackfill);
        assert!(
            ff > easy + 4.0,
            "first-fit {ff} should starve vs EASY {easy}"
        );
    }

    #[test]
    fn strict_fifo_bounds_the_wide_job_too() {
        let fifo = wide_job_wait(QueueDiscipline::StrictFifo);
        let ff = wide_job_wait(QueueDiscipline::FirstFit);
        assert!(fifo < ff);
    }

    #[test]
    fn all_disciplines_complete_all_jobs_with_equal_energy() {
        let jobs = crate::job::JobTraceGenerator::default_rates().generate(120, 11);
        let mut energies = Vec::new();
        for d in [
            QueueDiscipline::StrictFifo,
            QueueDiscipline::FirstFit,
            QueueDiscipline::EasyBackfill,
        ] {
            let out = Simulation::single_region(cluster(16), Policy::Fifo, &jobs)
                .with_discipline(d)
                .run();
            assert_eq!(out.jobs.len(), jobs.len(), "{d:?}");
            energies.push(out.total_energy.as_kwh());
        }
        for w in energies.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn strict_fifo_preserves_start_order() {
        let jobs = crate::job::JobTraceGenerator::default_rates().generate(80, 13);
        let out = Simulation::single_region(cluster(12), Policy::Fifo, &jobs)
            .with_discipline(QueueDiscipline::StrictFifo)
            .run();
        // Under strict FIFO with a single region and no deferral, start
        // times are non-decreasing in arrival order.
        let mut last = 0.0;
        for o in &out.jobs {
            assert!(o.start_hours + 1e-9 >= last);
            last = o.start_hours;
        }
    }

    #[test]
    fn easy_utilization_beats_strict_fifo() {
        // EASY finishes the same workload sooner than strict FIFO on a
        // congested cluster (it fills holes the blocked head leaves).
        let jobs = crate::job::JobTraceGenerator::default_rates().generate(150, 17);
        let makespan = |d: QueueDiscipline| {
            let out = Simulation::single_region(cluster(12), Policy::Fifo, &jobs)
                .with_discipline(d)
                .run();
            out.jobs
                .iter()
                .zip(&jobs)
                .map(|(o, j)| o.start_hours + j.runtime_hours)
                .fold(0.0f64, f64::max)
        };
        let fifo = makespan(QueueDiscipline::StrictFifo);
        let easy = makespan(QueueDiscipline::EasyBackfill);
        assert!(easy <= fifo + 1e-9, "easy {easy} vs fifo {fifo}");
    }
}
