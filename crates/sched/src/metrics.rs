//! Outcome metrics beyond totals: wait-time distribution, per-user
//! statistics, fairness, and shifted-vs-baseline carbon savings — what an
//! operator actually reviews when weighing a carbon-aware policy against
//! its queue-time cost.

use crate::cluster::Cluster;
use crate::job::Job;
use crate::sim::SimOutcome;
use hpcarbon_timeseries::stats::quantile;
use hpcarbon_units::{CarbonMass, TimeSpan};

/// Distribution summary of queue waits for one outcome.
#[derive(Debug, Clone, Copy)]
pub struct WaitStats {
    /// Mean wait, hours.
    pub mean: f64,
    /// Median wait.
    pub median: f64,
    /// 95th percentile wait — the metric queue SLAs are written against.
    pub p95: f64,
    /// Maximum wait.
    pub max: f64,
}

/// Computes the wait distribution of an outcome.
pub fn wait_stats(outcome: &SimOutcome) -> WaitStats {
    let waits: Vec<f64> = outcome.jobs.iter().map(|j| j.wait_hours).collect();
    WaitStats {
        mean: outcome.mean_wait_hours,
        median: quantile(&waits, 0.5),
        p95: quantile(&waits, 0.95),
        max: outcome.max_wait_hours,
    }
}

/// Per-user aggregate: jobs run, carbon emitted, mean wait.
#[derive(Debug, Clone, Copy)]
pub struct UserStats {
    /// User index.
    pub user: usize,
    /// Jobs completed.
    pub jobs: usize,
    /// Carbon attributed.
    pub carbon: CarbonMass,
    /// Mean wait, hours.
    pub mean_wait: f64,
}

/// Splits an outcome by user. `jobs` must be the job slice the simulation
/// ran (outcomes are positionally aligned with it).
pub fn per_user(outcome: &SimOutcome, jobs: &[Job]) -> Vec<UserStats> {
    assert_eq!(outcome.jobs.len(), jobs.len(), "outcome/job mismatch");
    let users = jobs.iter().map(|j| j.user).max().map_or(0, |u| u + 1);
    let mut stats: Vec<UserStats> = (0..users)
        .map(|user| UserStats {
            user,
            jobs: 0,
            carbon: CarbonMass::ZERO,
            mean_wait: 0.0,
        })
        .collect();
    for (job, o) in jobs.iter().zip(&outcome.jobs) {
        let s = &mut stats[job.user];
        s.jobs += 1;
        s.carbon += o.carbon;
        s.mean_wait += o.wait_hours;
    }
    for s in &mut stats {
        if s.jobs > 0 {
            s.mean_wait /= s.jobs as f64;
        }
    }
    stats
}

/// One job's shifted-vs-baseline carbon comparison: what the job emitted
/// where the policy actually ran it, against what it would have emitted
/// starting the moment it arrived on its arrival cluster.
#[derive(Debug, Clone, Copy)]
pub struct JobShiftSavings {
    /// Job id.
    pub job: usize,
    /// Carbon of the run-at-arrival counterfactual, kgCO₂.
    pub baseline_kg: f64,
    /// Carbon of the actual (possibly shifted/moved) run, kgCO₂.
    pub actual_kg: f64,
    /// `baseline - actual`; negative when waiting made things worse.
    pub saved_kg: f64,
}

/// Aggregate of [`JobShiftSavings`] over one outcome.
#[derive(Debug, Clone, Copy)]
pub struct ShiftSavingsSummary {
    /// Total baseline carbon, kgCO₂.
    pub baseline_kg: f64,
    /// Total actual carbon, kgCO₂.
    pub actual_kg: f64,
    /// Total savings, kgCO₂.
    pub saved_kg: f64,
    /// Savings as a percentage of the baseline (0 when the baseline is 0).
    pub saved_pct: f64,
}

/// Per-job carbon savings of an outcome against the run-at-arrival
/// baseline. `jobs` and `clusters` must be the slices the simulation ran
/// (outcomes align positionally with `jobs`). The baseline places each
/// job at its arrival via [`crate::cluster::fitting_cluster`] — the same
/// rule the simulator's arrival event applies — so the counterfactual is
/// always a feasible run.
pub fn shift_savings(
    outcome: &SimOutcome,
    jobs: &[Job],
    clusters: &[Cluster],
) -> Vec<JobShiftSavings> {
    assert_eq!(outcome.jobs.len(), jobs.len(), "outcome/job mismatch");
    assert!(!clusters.is_empty(), "need at least one cluster");
    jobs.iter()
        .zip(&outcome.jobs)
        .map(|(job, o)| {
            let baseline_cluster =
                crate::cluster::fitting_cluster(job.user % clusters.len(), job, clusters);
            let baseline_kg = clusters[baseline_cluster]
                .carbon_for(
                    job.arrival_hours,
                    TimeSpan::from_hours(job.runtime_hours),
                    job.power(),
                )
                .as_kg();
            let actual_kg = o.carbon.as_kg();
            JobShiftSavings {
                job: job.id,
                baseline_kg,
                actual_kg,
                saved_kg: baseline_kg - actual_kg,
            }
        })
        .collect()
}

/// Sums per-job savings into one summary.
pub fn summarize_shift_savings(savings: &[JobShiftSavings]) -> ShiftSavingsSummary {
    let baseline_kg: f64 = savings.iter().map(|s| s.baseline_kg).sum();
    let actual_kg: f64 = savings.iter().map(|s| s.actual_kg).sum();
    let saved_kg = baseline_kg - actual_kg;
    ShiftSavingsSummary {
        baseline_kg,
        actual_kg,
        saved_kg,
        saved_pct: if baseline_kg > 0.0 {
            100.0 * saved_kg / baseline_kg
        } else {
            0.0
        },
    }
}

/// Jain's fairness index over per-user mean waits (1 = perfectly equal,
/// 1/n = one user absorbs everything). Users with no jobs are skipped.
/// Waits of zero across the board count as perfectly fair.
pub fn wait_fairness(stats: &[UserStats]) -> f64 {
    let waits: Vec<f64> = stats
        .iter()
        .filter(|s| s.jobs > 0)
        .map(|s| s.mean_wait)
        .collect();
    if waits.is_empty() {
        return 1.0;
    }
    let sum: f64 = waits.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = waits.iter().map(|w| w * w).sum();
    (sum * sum) / (waits.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::job::JobTraceGenerator;
    use crate::policy::Policy;
    use crate::sim::Simulation;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;

    fn run(capacity: u32, n: usize) -> (SimOutcome, Vec<Job>) {
        let jobs = JobTraceGenerator::default_rates().generate(n, 3);
        let cluster = Cluster::new(
            "c",
            IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 200.0)),
            capacity,
        );
        let out = Simulation::single_region(cluster, Policy::Fifo, &jobs).run();
        (out, jobs)
    }

    #[test]
    fn wait_stats_are_ordered() {
        let (out, _) = run(8, 200);
        let w = wait_stats(&out);
        assert!(w.median <= w.p95 + 1e-9);
        assert!(w.p95 <= w.max + 1e-9);
        assert!(w.mean >= 0.0);
    }

    #[test]
    fn uncongested_waits_are_zero_and_fair() {
        let (out, jobs) = run(4096, 100);
        let w = wait_stats(&out);
        assert!(w.max < 1e-9);
        let users = per_user(&out, &jobs);
        assert!((wait_fairness(&users) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_user_conserves_jobs_and_carbon() {
        let (out, jobs) = run(16, 200);
        let users = per_user(&out, &jobs);
        let total_jobs: usize = users.iter().map(|u| u.jobs).sum();
        assert_eq!(total_jobs, jobs.len());
        let total_carbon: f64 = users.iter().map(|u| u.carbon.as_g()).sum();
        assert!((total_carbon - out.total_carbon.as_g()).abs() < 1e-6);
    }

    #[test]
    fn fairness_detects_skew() {
        let skewed = vec![
            UserStats {
                user: 0,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 100.0,
            },
            UserStats {
                user: 1,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 0.0,
            },
        ];
        let even = vec![
            UserStats {
                user: 0,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 50.0,
            },
            UserStats {
                user: 1,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 50.0,
            },
        ];
        assert!((wait_fairness(&skewed) - 0.5).abs() < 1e-12);
        assert!((wait_fairness(&even) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_set_is_fair() {
        assert_eq!(wait_fairness(&[]), 1.0);
    }
}

#[cfg(test)]
mod savings_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::job::JobTraceGenerator;
    use crate::policy::Policy;
    use crate::sim::Simulation;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;

    fn diurnal_cluster() -> Cluster {
        let t = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 6 { 50.0 } else { 400.0 }),
        );
        Cluster::new("a", t, 4096)
    }

    #[test]
    fn fifo_at_capacity_has_zero_savings() {
        // With unlimited capacity, FIFO runs every job at arrival — the
        // baseline itself — so savings vanish identically.
        let jobs = JobTraceGenerator::default_rates().generate(80, 5);
        let clusters = vec![diurnal_cluster()];
        let out = Simulation::multi_region(clusters.clone(), Policy::Fifo, &jobs).run();
        let s = shift_savings(&out, &jobs, &clusters);
        assert_eq!(s.len(), jobs.len());
        for js in &s {
            assert!(js.saved_kg.abs() < 1e-9, "job {}: {}", js.job, js.saved_kg);
        }
        let sum = summarize_shift_savings(&s);
        assert!(sum.saved_kg.abs() < 1e-9);
        assert!(sum.saved_pct.abs() < 1e-9);
    }

    #[test]
    fn temporal_shift_saves_against_the_baseline() {
        let jobs = JobTraceGenerator::default_rates().generate(150, 6);
        let clusters = vec![diurnal_cluster()];
        let out = Simulation::multi_region(
            clusters.clone(),
            Policy::TemporalShift { slack_hours: 24 },
            &jobs,
        )
        .run();
        let s = shift_savings(&out, &jobs, &clusters);
        let sum = summarize_shift_savings(&s);
        assert!(
            sum.saved_pct > 20.0,
            "expected big savings on a diurnal trace, got {:.1}%",
            sum.saved_pct
        );
        // The summary is consistent with the outcome's totals.
        assert!((sum.actual_kg - out.total_carbon.as_kg()).abs() < 1e-6);
    }

    #[test]
    fn empty_savings_summarize_to_zero() {
        let sum = summarize_shift_savings(&[]);
        assert_eq!(sum.saved_kg, 0.0);
        assert_eq!(sum.saved_pct, 0.0);
    }
}
