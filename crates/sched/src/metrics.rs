//! Outcome metrics beyond totals: wait-time distribution, per-user
//! statistics and fairness — what an operator actually reviews when
//! weighing a carbon-aware policy against its queue-time cost.

use crate::job::Job;
use crate::sim::SimOutcome;
use hpcarbon_timeseries::stats::quantile;
use hpcarbon_units::CarbonMass;

/// Distribution summary of queue waits for one outcome.
#[derive(Debug, Clone, Copy)]
pub struct WaitStats {
    /// Mean wait, hours.
    pub mean: f64,
    /// Median wait.
    pub median: f64,
    /// 95th percentile wait — the metric queue SLAs are written against.
    pub p95: f64,
    /// Maximum wait.
    pub max: f64,
}

/// Computes the wait distribution of an outcome.
pub fn wait_stats(outcome: &SimOutcome) -> WaitStats {
    let waits: Vec<f64> = outcome.jobs.iter().map(|j| j.wait_hours).collect();
    WaitStats {
        mean: outcome.mean_wait_hours,
        median: quantile(&waits, 0.5),
        p95: quantile(&waits, 0.95),
        max: outcome.max_wait_hours,
    }
}

/// Per-user aggregate: jobs run, carbon emitted, mean wait.
#[derive(Debug, Clone, Copy)]
pub struct UserStats {
    /// User index.
    pub user: usize,
    /// Jobs completed.
    pub jobs: usize,
    /// Carbon attributed.
    pub carbon: CarbonMass,
    /// Mean wait, hours.
    pub mean_wait: f64,
}

/// Splits an outcome by user. `jobs` must be the job slice the simulation
/// ran (outcomes are positionally aligned with it).
pub fn per_user(outcome: &SimOutcome, jobs: &[Job]) -> Vec<UserStats> {
    assert_eq!(outcome.jobs.len(), jobs.len(), "outcome/job mismatch");
    let users = jobs.iter().map(|j| j.user).max().map_or(0, |u| u + 1);
    let mut stats: Vec<UserStats> = (0..users)
        .map(|user| UserStats {
            user,
            jobs: 0,
            carbon: CarbonMass::ZERO,
            mean_wait: 0.0,
        })
        .collect();
    for (job, o) in jobs.iter().zip(&outcome.jobs) {
        let s = &mut stats[job.user];
        s.jobs += 1;
        s.carbon += o.carbon;
        s.mean_wait += o.wait_hours;
    }
    for s in &mut stats {
        if s.jobs > 0 {
            s.mean_wait /= s.jobs as f64;
        }
    }
    stats
}

/// Jain's fairness index over per-user mean waits (1 = perfectly equal,
/// 1/n = one user absorbs everything). Users with no jobs are skipped.
/// Waits of zero across the board count as perfectly fair.
pub fn wait_fairness(stats: &[UserStats]) -> f64 {
    let waits: Vec<f64> = stats
        .iter()
        .filter(|s| s.jobs > 0)
        .map(|s| s.mean_wait)
        .collect();
    if waits.is_empty() {
        return 1.0;
    }
    let sum: f64 = waits.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = waits.iter().map(|w| w * w).sum();
    (sum * sum) / (waits.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::job::JobTraceGenerator;
    use crate::policy::Policy;
    use crate::sim::Simulation;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;

    fn run(capacity: u32, n: usize) -> (SimOutcome, Vec<Job>) {
        let jobs = JobTraceGenerator::default_rates().generate(n, 3);
        let cluster = Cluster::new(
            "c",
            IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 200.0)),
            capacity,
        );
        let out = Simulation::single_region(cluster, Policy::Fifo, &jobs).run();
        (out, jobs)
    }

    #[test]
    fn wait_stats_are_ordered() {
        let (out, _) = run(8, 200);
        let w = wait_stats(&out);
        assert!(w.median <= w.p95 + 1e-9);
        assert!(w.p95 <= w.max + 1e-9);
        assert!(w.mean >= 0.0);
    }

    #[test]
    fn uncongested_waits_are_zero_and_fair() {
        let (out, jobs) = run(4096, 100);
        let w = wait_stats(&out);
        assert!(w.max < 1e-9);
        let users = per_user(&out, &jobs);
        assert!((wait_fairness(&users) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_user_conserves_jobs_and_carbon() {
        let (out, jobs) = run(16, 200);
        let users = per_user(&out, &jobs);
        let total_jobs: usize = users.iter().map(|u| u.jobs).sum();
        assert_eq!(total_jobs, jobs.len());
        let total_carbon: f64 = users.iter().map(|u| u.carbon.as_g()).sum();
        assert!((total_carbon - out.total_carbon.as_g()).abs() < 1e-6);
    }

    #[test]
    fn fairness_detects_skew() {
        let skewed = vec![
            UserStats {
                user: 0,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 100.0,
            },
            UserStats {
                user: 1,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 0.0,
            },
        ];
        let even = vec![
            UserStats {
                user: 0,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 50.0,
            },
            UserStats {
                user: 1,
                jobs: 5,
                carbon: CarbonMass::ZERO,
                mean_wait: 50.0,
            },
        ];
        assert!((wait_fairness(&skewed) - 0.5).abs() < 1e-12);
        assert!((wait_fairness(&even) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_set_is_fair() {
        assert_eq!(wait_fairness(&[]), 1.0);
    }
}
