//! # hpcarbon-sched
//!
//! A carbon-intensity-aware job-scheduling substrate — the system the
//! paper calls for but does not build:
//!
//! > "There is a strong need to design, develop, and deploy
//! > carbon-intensity-aware job schedulers to exploit these opportunities
//! > across geographically distributed HPC centers." (§4, Implication)
//!
//! > "Similar to core-hour accounting and budgeting, HPC users should also
//! > be provided a carbon budget as a part of their allocation, and they
//! > could be prioritized to reduce their queue wait time if the carbon
//! > footprint of their jobs have been economical." (§4, Implication)
//!
//! Components:
//!
//! - [`job`]: jobs and a seeded trace generator (Poisson arrivals,
//!   log-normal runtimes, power-law GPU sizes — the standard HPC workload
//!   shape);
//! - [`cluster`]: a GPU partition bound to a regional intensity trace;
//! - [`policy`]: scheduling policies — FIFO baseline, temporal deferral
//!   (threshold and greenest-window forms), cross-region dispatch, and
//!   the indexed shifting pair [`Policy::TemporalShift`] /
//!   [`Policy::SpatioTemporal`] answering "greenest start within slack"
//!   from the trace's window index instead of rescans;
//! - [`sim`]: a discrete-event simulation joining the above, accounting
//!   every job's operational carbon against the hourly trace (Eq. 6 per
//!   hour);
//! - [`budget`]: per-user carbon budgets with queue-priority incentives;
//! - [`metrics`]: wait-time distributions, per-user statistics, Jain
//!   fairness, and per-job shifted-vs-baseline carbon savings — the
//!   operator's view of what a policy costs in queue time and buys in
//!   carbon.
//!
//! # Example
//!
//! ```
//! use hpcarbon_sched::{job::JobTraceGenerator, sim::Simulation, policy::Policy, cluster::Cluster};
//! use hpcarbon_grid::{simulate_year, OperatorId};
//!
//! let trace = simulate_year(OperatorId::Eso, 2021, 7);
//! let jobs = JobTraceGenerator::default_rates().generate(200, 99);
//! let fifo = Simulation::single_region(Cluster::new("gb", trace.clone(), 64), Policy::Fifo, &jobs).run();
//! let aware = Simulation::single_region(
//!     Cluster::new("gb", trace, 64),
//!     Policy::GreenestWindow { horizon_hours: 24 },
//!     &jobs,
//! ).run();
//! // Carbon-aware deferral emits less carbon for the same jobs.
//! assert!(aware.total_carbon.as_kg() < fifo.total_carbon.as_kg());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cluster;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod sim;

pub use budget::CarbonBudgetLedger;
pub use cluster::Cluster;
pub use job::{Job, JobTraceGenerator};
pub use metrics::{shift_savings, summarize_shift_savings, JobShiftSavings, ShiftSavingsSummary};
pub use policy::Policy;
pub use sim::{QueueDiscipline, SimError, SimOutcome, Simulation};
