//! Scheduling policies: the carbon-unaware baseline and the
//! carbon-intensity-aware strategies the paper's §4 implications describe.

use crate::cluster::Cluster;
use crate::job::Job;

/// A placement decision: which cluster to run on and the earliest start
/// the policy requests (the simulator may start later if GPUs are busy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index into the simulation's cluster list.
    pub cluster: usize,
    /// Earliest start time requested, hours since epoch.
    pub earliest_start_hours: f64,
}

/// Scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Carbon-unaware baseline: run as soon as possible on the arrival
    /// cluster.
    Fifo,
    /// Temporal deferral: wait (within the job's tolerance) until the
    /// local intensity drops below `threshold_g_per_kwh`, else start at
    /// the tolerance limit.
    ThresholdDefer {
        /// Start when intensity is below this level.
        threshold_g_per_kwh: f64,
    },
    /// Temporal deferral: start at the greenest window of the next
    /// `horizon_hours` (bounded by the job's tolerance) — the paper's
    /// "exploit temporal variations" scheduler.
    GreenestWindow {
        /// Look-ahead horizon.
        horizon_hours: u32,
    },
    /// Cross-region dispatch: run immediately, but on the cluster whose
    /// mean intensity over the job's runtime is lowest — the paper's
    /// "distributing jobs across geographically distributed HPC centers".
    LowestIntensityRegion,
    /// Cross-region dispatch plus greenest-window deferral.
    RegionAndTime {
        /// Look-ahead horizon.
        horizon_hours: u32,
    },
    /// Indexed temporal shifting: defer to the greenest runtime-length
    /// window within the *policy's* slack, found by one `O(slack)` query
    /// against the trace's window index (the `O(slack × runtime)` scan of
    /// [`Policy::GreenestWindow`] collapsed to indexed lookups). The slack
    /// is an operator-level contract applied to every job; per-job
    /// deferral tolerance is not consulted. Ties break toward the
    /// earliest start hour.
    TemporalShift {
        /// Hours a job may be deferred past its arrival.
        slack_hours: u32,
    },
    /// Joint cluster + start-hour choice by indexed lookup: for every
    /// cluster that fits the job, find its greenest in-slack window, then
    /// run where the resulting window mean is lowest. Ties break toward
    /// the earlier start hour, then the lower cluster index.
    SpatioTemporal {
        /// Hours a job may be deferred past its arrival.
        slack_hours: u32,
    },
}

impl Policy {
    /// True when the policy may place jobs on non-arrival clusters.
    pub fn is_multi_region(self) -> bool {
        matches!(
            self,
            Policy::LowestIntensityRegion
                | Policy::RegionAndTime { .. }
                | Policy::SpatioTemporal { .. }
        )
    }

    /// The policy's shifting slack, when it is a shifting policy.
    pub fn shift_slack_hours(self) -> Option<u32> {
        match self {
            Policy::TemporalShift { slack_hours } | Policy::SpatioTemporal { slack_hours } => {
                Some(slack_hours)
            }
            _ => None,
        }
    }

    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO (carbon-unaware)",
            Policy::ThresholdDefer { .. } => "threshold deferral",
            Policy::GreenestWindow { .. } => "greenest-window deferral",
            Policy::LowestIntensityRegion => "lowest-intensity region",
            Policy::RegionAndTime { .. } => "region + time aware",
            Policy::TemporalShift { .. } => "temporal shift",
            Policy::SpatioTemporal { .. } => "spatio-temporal shift",
        }
    }

    /// Decides the placement of `job`, arriving now at `arrival_cluster`.
    pub fn place(
        self,
        job: &Job,
        now_hours: f64,
        arrival_cluster: usize,
        clusters: &[Cluster],
    ) -> Placement {
        match self {
            Policy::Fifo => Placement {
                cluster: arrival_cluster,
                earliest_start_hours: now_hours,
            },
            Policy::ThresholdDefer {
                threshold_g_per_kwh,
            } => {
                let c = &clusters[arrival_cluster];
                // Decide on the planning trace: a threshold crossing a
                // forecast predicts may not materialize in the actual.
                let planning = c.planning_trace();
                let limit = now_hours + job.max_defer_hours;
                let len = planning.series().len() as f64;
                let mut t = now_hours;
                // Scan forward hour by hour until the threshold is met or
                // tolerance runs out.
                while t < limit {
                    let idx = (t.floor() as u64 % len as u64) as u32;
                    if planning.at_index(idx).as_g_per_kwh() <= threshold_g_per_kwh {
                        break;
                    }
                    t = t.floor() + 1.0;
                }
                Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: t.min(limit),
                }
            }
            Policy::GreenestWindow { horizon_hours } => {
                let c = &clusters[arrival_cluster];
                let start = greenest_start(c, job, now_hours, horizon_hours);
                Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: start,
                }
            }
            Policy::LowestIntensityRegion => {
                let best = (0..clusters.len())
                    .filter(|i| clusters[*i].capacity_gpus >= job.gpus)
                    .min_by(|a, b| {
                        let ia = clusters[*a].mean_intensity_over(now_hours, job.runtime_hours);
                        let ib = clusters[*b].mean_intensity_over(now_hours, job.runtime_hours);
                        // Trace intensities are finite by construction, so
                        // `total_cmp` orders them identically without the
                        // panic arm.
                        ia.total_cmp(&ib)
                    })
                    .unwrap_or(arrival_cluster);
                Placement {
                    cluster: best,
                    earliest_start_hours: now_hours,
                }
            }
            Policy::RegionAndTime { horizon_hours } => {
                let mut best = Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: now_hours,
                };
                let mut best_mean = f64::INFINITY;
                for (i, c) in clusters.iter().enumerate() {
                    if c.capacity_gpus < job.gpus {
                        continue;
                    }
                    let start = greenest_start(c, job, now_hours, horizon_hours);
                    let mean = c.mean_intensity_over(start, job.runtime_hours);
                    if mean < best_mean {
                        best_mean = mean;
                        best = Placement {
                            cluster: i,
                            earliest_start_hours: start,
                        };
                    }
                }
                best
            }
            Policy::TemporalShift { slack_hours } => {
                // Shift against the trace of the cluster the job will
                // actually run on, so the deferral is never optimized
                // against the wrong region's trace.
                let cluster = crate::cluster::fitting_cluster(arrival_cluster, job, clusters);
                let (shift, _) =
                    clusters[cluster].greenest_shift_for(now_hours, job.runtime_hours, slack_hours);
                Placement {
                    cluster,
                    earliest_start_hours: now_hours + f64::from(shift),
                }
            }
            Policy::SpatioTemporal { slack_hours } => {
                let mut best = Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: now_hours,
                };
                let mut best_key = (f64::INFINITY, u32::MAX);
                for (i, c) in clusters.iter().enumerate() {
                    if c.capacity_gpus < job.gpus {
                        continue;
                    }
                    let (shift, mean) =
                        c.greenest_shift_for(now_hours, job.runtime_hours, slack_hours);
                    // Strict lexicographic improvement keeps the earliest
                    // start on equal means and the lowest cluster index on
                    // full ties — fully deterministic placement.
                    if (mean, shift) < best_key {
                        best_key = (mean, shift);
                        best = Placement {
                            cluster: i,
                            earliest_start_hours: now_hours + f64::from(shift),
                        };
                    }
                }
                best
            }
        }
    }
}

/// The start within `[now, now + min(horizon, tolerance)]` minimizing the
/// job's mean intensity over its runtime on cluster `c`.
fn greenest_start(c: &Cluster, job: &Job, now_hours: f64, horizon_hours: u32) -> f64 {
    let max_shift = f64::from(horizon_hours).min(job.max_defer_hours).max(0.0);
    let mut best = now_hours;
    let mut best_mean = c.mean_intensity_over(now_hours, job.runtime_hours);
    let mut shift = 1.0;
    while shift <= max_shift {
        let t = now_hours + shift;
        let mean = c.mean_intensity_over(t, job.runtime_hours);
        if mean < best_mean {
            best_mean = mean;
            best = t;
        }
        shift += 1.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;
    use hpcarbon_units::Power;

    fn job(defer: f64, runtime: f64) -> Job {
        Job {
            id: 0,
            user: 0,
            arrival_hours: 0.0,
            runtime_hours: runtime,
            gpus: 1,
            power_per_gpu: Power::from_w(300.0),
            max_defer_hours: defer,
        }
    }

    fn diurnal_cluster() -> Cluster {
        // Clean overnight (hours 0-5: 50), dirty otherwise (400).
        let t = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 6 { 50.0 } else { 400.0 }),
        );
        Cluster::new("a", t, 16)
    }

    fn flat_cluster(level: f64) -> Cluster {
        let t = IntensityTrace::new(OperatorId::Ciso, HourlySeries::constant(2021, level));
        Cluster::new("b", t, 16)
    }

    #[test]
    fn fifo_runs_immediately() {
        let clusters = [diurnal_cluster()];
        let p = Policy::Fifo.place(&job(100.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.cluster, 0);
        assert_eq!(p.earliest_start_hours, 10.0);
    }

    #[test]
    fn threshold_defers_to_clean_hours() {
        let clusters = [diurnal_cluster()];
        // Arriving at hour 10 (dirty): wait until midnight (hour 24).
        let p = Policy::ThresholdDefer {
            threshold_g_per_kwh: 100.0,
        }
        .place(&job(100.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn threshold_respects_tolerance() {
        let clusters = [diurnal_cluster()];
        // Only 3 hours of tolerance: must start by hour 13.
        let p = Policy::ThresholdDefer {
            threshold_g_per_kwh: 100.0,
        }
        .place(&job(3.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 13.0);
    }

    #[test]
    fn greenest_window_finds_the_night() {
        let clusters = [diurnal_cluster()];
        let p =
            Policy::GreenestWindow { horizon_hours: 24 }.place(&job(48.0, 4.0), 8.0, 0, &clusters);
        // Best 4-hour window within 24 h of hour 8 starts at hour 24
        // (midnight, fully inside the clean block).
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn greenest_window_with_no_tolerance_runs_now() {
        let clusters = [diurnal_cluster()];
        let p =
            Policy::GreenestWindow { horizon_hours: 24 }.place(&job(0.0, 4.0), 8.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 8.0);
    }

    #[test]
    fn lowest_region_picks_cleaner_cluster() {
        let clusters = [flat_cluster(400.0), flat_cluster(100.0)];
        let p = Policy::LowestIntensityRegion.place(&job(0.0, 2.0), 5.0, 0, &clusters);
        assert_eq!(p.cluster, 1);
        assert_eq!(p.earliest_start_hours, 5.0);
    }

    #[test]
    fn lowest_region_respects_capacity() {
        let mut small = flat_cluster(50.0);
        small.capacity_gpus = 1;
        let clusters = [flat_cluster(400.0), small];
        let mut j = job(0.0, 2.0);
        j.gpus = 4; // cannot fit on the clean-but-tiny cluster
        let p = Policy::LowestIntensityRegion.place(&j, 0.0, 0, &clusters);
        assert_eq!(p.cluster, 0);
    }

    #[test]
    fn region_and_time_beats_either_alone() {
        // Cluster 0 is diurnal (clean nights); cluster 1 is flat 200.
        let clusters = [diurnal_cluster(), flat_cluster(200.0)];
        let j = job(48.0, 4.0);
        let p = Policy::RegionAndTime { horizon_hours: 24 }.place(&j, 8.0, 1, &clusters);
        // Best choice: defer to cluster 0's night (mean 50) rather than
        // run at 200 now.
        assert_eq!(p.cluster, 0);
        let mean = clusters[0].mean_intensity_over(p.earliest_start_hours, 4.0);
        assert!(mean < 100.0, "mean {mean}");
    }

    #[test]
    fn labels_exist() {
        for p in [
            Policy::Fifo,
            Policy::ThresholdDefer {
                threshold_g_per_kwh: 1.0,
            },
            Policy::GreenestWindow { horizon_hours: 1 },
            Policy::LowestIntensityRegion,
            Policy::RegionAndTime { horizon_hours: 1 },
            Policy::TemporalShift { slack_hours: 1 },
            Policy::SpatioTemporal { slack_hours: 1 },
        ] {
            assert!(!p.label().is_empty());
        }
        assert!(Policy::LowestIntensityRegion.is_multi_region());
        assert!(Policy::SpatioTemporal { slack_hours: 1 }.is_multi_region());
        assert!(!Policy::TemporalShift { slack_hours: 1 }.is_multi_region());
        assert!(!Policy::Fifo.is_multi_region());
        assert_eq!(
            Policy::TemporalShift { slack_hours: 9 }.shift_slack_hours(),
            Some(9)
        );
        assert_eq!(Policy::Fifo.shift_slack_hours(), None);
    }

    #[test]
    fn temporal_shift_defers_into_the_night() {
        let clusters = [diurnal_cluster()];
        // Arriving at hour 8 with 24 h of slack: a 4-hour run is greenest
        // starting at the next midnight (hour 24 -> shift 16).
        let p = Policy::TemporalShift { slack_hours: 24 }.place(
            &job(0.0, 4.0), // job tolerance is irrelevant to this policy
            8.0,
            0,
            &clusters,
        );
        assert_eq!(p.cluster, 0);
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn temporal_shift_with_zero_slack_runs_now() {
        let clusters = [diurnal_cluster()];
        let p = Policy::TemporalShift { slack_hours: 0 }.place(&job(0.0, 4.0), 8.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 8.0);
    }

    #[test]
    fn temporal_shift_ties_break_to_the_earliest_start() {
        let clusters = [flat_cluster(200.0)];
        let p = Policy::TemporalShift { slack_hours: 48 }.place(&job(0.0, 3.0), 5.0, 0, &clusters);
        // All windows are equal on a flat trace: run immediately.
        assert_eq!(p.earliest_start_hours, 5.0);
    }

    #[test]
    fn spatio_temporal_jointly_picks_region_and_hour() {
        // Cluster 0 is flat 200; cluster 1 is diurnal (clean nights at 50).
        let clusters = [flat_cluster(200.0), diurnal_cluster()];
        let p = Policy::SpatioTemporal { slack_hours: 24 }.place(&job(0.0, 4.0), 8.0, 0, &clusters);
        // Deferring to cluster 1's night (mean 50) beats running at 200.
        assert_eq!(p.cluster, 1);
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn spatio_temporal_respects_capacity() {
        let mut tiny = diurnal_cluster();
        tiny.capacity_gpus = 1;
        let clusters = [flat_cluster(200.0), tiny];
        let mut j = job(0.0, 4.0);
        j.gpus = 4;
        let p = Policy::SpatioTemporal { slack_hours: 24 }.place(&j, 8.0, 1, &clusters);
        assert_eq!(p.cluster, 0);
    }

    #[test]
    fn spatio_temporal_ties_break_to_the_lowest_cluster() {
        let clusters = [flat_cluster(200.0), flat_cluster(200.0)];
        let p = Policy::SpatioTemporal { slack_hours: 12 }.place(&job(0.0, 2.0), 1.0, 1, &clusters);
        assert_eq!(p.cluster, 0);
        assert_eq!(p.earliest_start_hours, 1.0);
    }

    #[test]
    fn temporal_shift_falls_back_to_a_fitting_cluster() {
        // The arrival cluster is too small: the shift must be computed on
        // (and the placement point at) the cluster the job actually runs
        // on, not the arrival cluster's unrelated trace.
        let mut tiny = flat_cluster(100.0);
        tiny.capacity_gpus = 1;
        let clusters = [tiny, diurnal_cluster()];
        let mut j = job(0.0, 4.0);
        j.gpus = 4;
        let p = Policy::TemporalShift { slack_hours: 24 }.place(&j, 8.0, 0, &clusters);
        assert_eq!(p.cluster, 1);
        // Deferred to cluster 1's clean night, not run immediately on the
        // flat trace's "everything is equal" answer.
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn temporal_shift_matches_naive_argmin() {
        // The indexed placement must agree with a direct scan of every
        // candidate start on a structured trace.
        let clusters = [diurnal_cluster()];
        let j = job(0.0, 5.0);
        for now in [0.0, 7.0, 13.0, 22.0] {
            let p = Policy::TemporalShift { slack_hours: 30 }.place(&j, now, 0, &clusters);
            let mut best_shift = 0u32;
            let mut best = f64::INFINITY;
            for d in 0..=30u32 {
                let m = clusters[0].mean_intensity_over(now + f64::from(d), 5.0);
                if m < best {
                    best = m;
                    best_shift = d;
                }
            }
            assert_eq!(
                p.earliest_start_hours,
                now + f64::from(best_shift),
                "now {now}"
            );
        }
    }
}
