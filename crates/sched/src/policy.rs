//! Scheduling policies: the carbon-unaware baseline and the
//! carbon-intensity-aware strategies the paper's §4 implications describe.

use crate::cluster::Cluster;
use crate::job::Job;

/// A placement decision: which cluster to run on and the earliest start
/// the policy requests (the simulator may start later if GPUs are busy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index into the simulation's cluster list.
    pub cluster: usize,
    /// Earliest start time requested, hours since epoch.
    pub earliest_start_hours: f64,
}

/// Scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Carbon-unaware baseline: run as soon as possible on the arrival
    /// cluster.
    Fifo,
    /// Temporal deferral: wait (within the job's tolerance) until the
    /// local intensity drops below `threshold_g_per_kwh`, else start at
    /// the tolerance limit.
    ThresholdDefer {
        /// Start when intensity is below this level.
        threshold_g_per_kwh: f64,
    },
    /// Temporal deferral: start at the greenest window of the next
    /// `horizon_hours` (bounded by the job's tolerance) — the paper's
    /// "exploit temporal variations" scheduler.
    GreenestWindow {
        /// Look-ahead horizon.
        horizon_hours: u32,
    },
    /// Cross-region dispatch: run immediately, but on the cluster whose
    /// mean intensity over the job's runtime is lowest — the paper's
    /// "distributing jobs across geographically distributed HPC centers".
    LowestIntensityRegion,
    /// Cross-region dispatch plus greenest-window deferral.
    RegionAndTime {
        /// Look-ahead horizon.
        horizon_hours: u32,
    },
}

impl Policy {
    /// True when the policy may place jobs on non-arrival clusters.
    pub fn is_multi_region(self) -> bool {
        matches!(
            self,
            Policy::LowestIntensityRegion | Policy::RegionAndTime { .. }
        )
    }

    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO (carbon-unaware)",
            Policy::ThresholdDefer { .. } => "threshold deferral",
            Policy::GreenestWindow { .. } => "greenest-window deferral",
            Policy::LowestIntensityRegion => "lowest-intensity region",
            Policy::RegionAndTime { .. } => "region + time aware",
        }
    }

    /// Decides the placement of `job`, arriving now at `arrival_cluster`.
    pub fn place(
        self,
        job: &Job,
        now_hours: f64,
        arrival_cluster: usize,
        clusters: &[Cluster],
    ) -> Placement {
        match self {
            Policy::Fifo => Placement {
                cluster: arrival_cluster,
                earliest_start_hours: now_hours,
            },
            Policy::ThresholdDefer {
                threshold_g_per_kwh,
            } => {
                let c = &clusters[arrival_cluster];
                let limit = now_hours + job.max_defer_hours;
                let len = c.trace.series().len() as f64;
                let mut t = now_hours;
                // Scan forward hour by hour until the threshold is met or
                // tolerance runs out.
                while t < limit {
                    let idx = (t.floor() as u64 % len as u64) as u32;
                    if c.trace.at_index(idx).as_g_per_kwh() <= threshold_g_per_kwh {
                        break;
                    }
                    t = t.floor() + 1.0;
                }
                Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: t.min(limit),
                }
            }
            Policy::GreenestWindow { horizon_hours } => {
                let c = &clusters[arrival_cluster];
                let start = greenest_start(c, job, now_hours, horizon_hours);
                Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: start,
                }
            }
            Policy::LowestIntensityRegion => {
                let best = (0..clusters.len())
                    .filter(|i| clusters[*i].capacity_gpus >= job.gpus)
                    .min_by(|a, b| {
                        let ia = clusters[*a].mean_intensity_over(now_hours, job.runtime_hours);
                        let ib = clusters[*b].mean_intensity_over(now_hours, job.runtime_hours);
                        ia.partial_cmp(&ib).expect("intensities are finite")
                    })
                    .unwrap_or(arrival_cluster);
                Placement {
                    cluster: best,
                    earliest_start_hours: now_hours,
                }
            }
            Policy::RegionAndTime { horizon_hours } => {
                let mut best = Placement {
                    cluster: arrival_cluster,
                    earliest_start_hours: now_hours,
                };
                let mut best_mean = f64::INFINITY;
                for (i, c) in clusters.iter().enumerate() {
                    if c.capacity_gpus < job.gpus {
                        continue;
                    }
                    let start = greenest_start(c, job, now_hours, horizon_hours);
                    let mean = c.mean_intensity_over(start, job.runtime_hours);
                    if mean < best_mean {
                        best_mean = mean;
                        best = Placement {
                            cluster: i,
                            earliest_start_hours: start,
                        };
                    }
                }
                best
            }
        }
    }
}

/// The start within `[now, now + min(horizon, tolerance)]` minimizing the
/// job's mean intensity over its runtime on cluster `c`.
fn greenest_start(c: &Cluster, job: &Job, now_hours: f64, horizon_hours: u32) -> f64 {
    let max_shift = f64::from(horizon_hours).min(job.max_defer_hours).max(0.0);
    let mut best = now_hours;
    let mut best_mean = c.mean_intensity_over(now_hours, job.runtime_hours);
    let mut shift = 1.0;
    while shift <= max_shift {
        let t = now_hours + shift;
        let mean = c.mean_intensity_over(t, job.runtime_hours);
        if mean < best_mean {
            best_mean = mean;
            best = t;
        }
        shift += 1.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_grid::trace::IntensityTrace;
    use hpcarbon_timeseries::series::HourlySeries;
    use hpcarbon_units::Power;

    fn job(defer: f64, runtime: f64) -> Job {
        Job {
            id: 0,
            user: 0,
            arrival_hours: 0.0,
            runtime_hours: runtime,
            gpus: 1,
            power_per_gpu: Power::from_w(300.0),
            max_defer_hours: defer,
        }
    }

    fn diurnal_cluster() -> Cluster {
        // Clean overnight (hours 0-5: 50), dirty otherwise (400).
        let t = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 6 { 50.0 } else { 400.0 }),
        );
        Cluster::new("a", t, 16)
    }

    fn flat_cluster(level: f64) -> Cluster {
        let t = IntensityTrace::new(OperatorId::Ciso, HourlySeries::constant(2021, level));
        Cluster::new("b", t, 16)
    }

    #[test]
    fn fifo_runs_immediately() {
        let clusters = [diurnal_cluster()];
        let p = Policy::Fifo.place(&job(100.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.cluster, 0);
        assert_eq!(p.earliest_start_hours, 10.0);
    }

    #[test]
    fn threshold_defers_to_clean_hours() {
        let clusters = [diurnal_cluster()];
        // Arriving at hour 10 (dirty): wait until midnight (hour 24).
        let p = Policy::ThresholdDefer {
            threshold_g_per_kwh: 100.0,
        }
        .place(&job(100.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn threshold_respects_tolerance() {
        let clusters = [diurnal_cluster()];
        // Only 3 hours of tolerance: must start by hour 13.
        let p = Policy::ThresholdDefer {
            threshold_g_per_kwh: 100.0,
        }
        .place(&job(3.0, 2.0), 10.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 13.0);
    }

    #[test]
    fn greenest_window_finds_the_night() {
        let clusters = [diurnal_cluster()];
        let p =
            Policy::GreenestWindow { horizon_hours: 24 }.place(&job(48.0, 4.0), 8.0, 0, &clusters);
        // Best 4-hour window within 24 h of hour 8 starts at hour 24
        // (midnight, fully inside the clean block).
        assert_eq!(p.earliest_start_hours, 24.0);
    }

    #[test]
    fn greenest_window_with_no_tolerance_runs_now() {
        let clusters = [diurnal_cluster()];
        let p =
            Policy::GreenestWindow { horizon_hours: 24 }.place(&job(0.0, 4.0), 8.0, 0, &clusters);
        assert_eq!(p.earliest_start_hours, 8.0);
    }

    #[test]
    fn lowest_region_picks_cleaner_cluster() {
        let clusters = [flat_cluster(400.0), flat_cluster(100.0)];
        let p = Policy::LowestIntensityRegion.place(&job(0.0, 2.0), 5.0, 0, &clusters);
        assert_eq!(p.cluster, 1);
        assert_eq!(p.earliest_start_hours, 5.0);
    }

    #[test]
    fn lowest_region_respects_capacity() {
        let mut small = flat_cluster(50.0);
        small.capacity_gpus = 1;
        let clusters = [flat_cluster(400.0), small];
        let mut j = job(0.0, 2.0);
        j.gpus = 4; // cannot fit on the clean-but-tiny cluster
        let p = Policy::LowestIntensityRegion.place(&j, 0.0, 0, &clusters);
        assert_eq!(p.cluster, 0);
    }

    #[test]
    fn region_and_time_beats_either_alone() {
        // Cluster 0 is diurnal (clean nights); cluster 1 is flat 200.
        let clusters = [diurnal_cluster(), flat_cluster(200.0)];
        let j = job(48.0, 4.0);
        let p = Policy::RegionAndTime { horizon_hours: 24 }.place(&j, 8.0, 1, &clusters);
        // Best choice: defer to cluster 0's night (mean 50) rather than
        // run at 200 now.
        assert_eq!(p.cluster, 0);
        let mean = clusters[0].mean_intensity_over(p.earliest_start_hours, 4.0);
        assert!(mean < 100.0, "mean {mean}");
    }

    #[test]
    fn labels_exist() {
        for p in [
            Policy::Fifo,
            Policy::ThresholdDefer {
                threshold_g_per_kwh: 1.0,
            },
            Policy::GreenestWindow { horizon_hours: 1 },
            Policy::LowestIntensityRegion,
            Policy::RegionAndTime { horizon_hours: 1 },
        ] {
            assert!(!p.label().is_empty());
        }
        assert!(Policy::LowestIntensityRegion.is_multi_region());
        assert!(!Policy::Fifo.is_multi_region());
    }
}
