//! Per-user carbon budgets and queue-priority incentives.
//!
//! The paper's §4 implication: "Similar to core-hour accounting and
//! budgeting, HPC users should also be provided a carbon budget as a part
//! of their allocation, and they could be prioritized to reduce their
//! queue wait time if the carbon footprint of their jobs have been
//! economical."

use hpcarbon_units::CarbonMass;

/// Tracks each user's carbon allocation and spend for one allocation
/// period.
#[derive(Debug, Clone)]
pub struct CarbonBudgetLedger {
    allocation: Vec<CarbonMass>,
    spent: Vec<CarbonMass>,
}

impl CarbonBudgetLedger {
    /// Gives every one of `users` the same allocation.
    pub fn uniform(users: usize, allocation: CarbonMass) -> CarbonBudgetLedger {
        assert!(users > 0, "need at least one user");
        assert!(allocation.as_g() > 0.0, "allocation must be positive");
        CarbonBudgetLedger {
            allocation: vec![allocation; users],
            spent: vec![CarbonMass::ZERO; users],
        }
    }

    /// Per-user allocations.
    pub fn with_allocations(allocations: Vec<CarbonMass>) -> CarbonBudgetLedger {
        assert!(!allocations.is_empty(), "need at least one user");
        let n = allocations.len();
        CarbonBudgetLedger {
            allocation: allocations,
            spent: vec![CarbonMass::ZERO; n],
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.allocation.len()
    }

    /// Charges `user` for emitted carbon. Overspending is permitted but
    /// drives the remaining fraction negative (lowest queue priority).
    pub fn charge(&mut self, user: usize, carbon: CarbonMass) {
        self.spent[user] += carbon;
    }

    /// Carbon spent so far by `user`.
    pub fn spent(&self, user: usize) -> CarbonMass {
        self.spent[user]
    }

    /// Remaining budget (may be negative when overspent).
    pub fn remaining(&self, user: usize) -> CarbonMass {
        self.allocation[user] - self.spent[user]
    }

    /// Remaining fraction of the allocation in `(-inf, 1]`; the
    /// queue-priority key (larger = served sooner).
    pub fn remaining_fraction(&self, user: usize) -> f64 {
        self.remaining(user).as_g() / self.allocation[user].as_g()
    }

    /// Total spent across users.
    pub fn total_spent(&self) -> CarbonMass {
        self.spent.iter().copied().sum()
    }

    /// Users sorted by priority (most remaining fraction first).
    pub fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.users()).collect();
        order.sort_by(|a, b| {
            // Remaining fractions are finite by construction, so
            // `total_cmp` orders them identically without the panic arm.
            self.remaining_fraction(*b)
                .total_cmp(&self.remaining_fraction(*a))
                .then(a.cmp(b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ledger_starts_full() {
        let l = CarbonBudgetLedger::uniform(4, CarbonMass::from_kg(10.0));
        for u in 0..4 {
            assert_eq!(l.remaining(u).as_kg(), 10.0);
            assert_eq!(l.remaining_fraction(u), 1.0);
        }
        assert_eq!(l.total_spent().as_g(), 0.0);
    }

    #[test]
    fn charging_decreases_remaining() {
        let mut l = CarbonBudgetLedger::uniform(2, CarbonMass::from_kg(10.0));
        l.charge(0, CarbonMass::from_kg(4.0));
        assert_eq!(l.remaining(0).as_kg(), 6.0);
        assert_eq!(l.remaining(1).as_kg(), 10.0);
        assert!((l.remaining_fraction(0) - 0.6).abs() < 1e-12);
        assert_eq!(l.total_spent().as_kg(), 4.0);
    }

    #[test]
    fn overspending_goes_negative() {
        let mut l = CarbonBudgetLedger::uniform(1, CarbonMass::from_kg(1.0));
        l.charge(0, CarbonMass::from_kg(3.0));
        assert!(l.remaining(0).as_kg() < 0.0);
        assert!(l.remaining_fraction(0) < 0.0);
    }

    #[test]
    fn priority_order_rewards_economy() {
        let mut l = CarbonBudgetLedger::uniform(3, CarbonMass::from_kg(10.0));
        l.charge(0, CarbonMass::from_kg(9.0)); // heavy spender
        l.charge(2, CarbonMass::from_kg(2.0)); // light spender
        assert_eq!(l.priority_order(), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_user_index() {
        let l = CarbonBudgetLedger::uniform(3, CarbonMass::from_kg(5.0));
        assert_eq!(l.priority_order(), vec![0, 1, 2]);
    }

    #[test]
    fn heterogeneous_allocations() {
        let mut l = CarbonBudgetLedger::with_allocations(vec![
            CarbonMass::from_kg(1.0),
            CarbonMass::from_kg(100.0),
        ]);
        l.charge(0, CarbonMass::from_kg(0.5));
        l.charge(1, CarbonMass::from_kg(10.0));
        // User 1 spent more absolutely but less fractionally.
        assert!(l.remaining_fraction(1) > l.remaining_fraction(0));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn rejects_empty() {
        let _ = CarbonBudgetLedger::uniform(0, CarbonMass::from_kg(1.0));
    }
}
