//! Jobs and workload-trace generation.

use hpcarbon_sim::dist::{Exponential, LogNormal, WeightedIndex};
use hpcarbon_sim::rng::SimRng;
use hpcarbon_units::Power;

/// One batch job: arrives, waits, runs exclusively on `gpus` GPUs for
/// `runtime_hours`, drawing `power_per_gpu` while running.
#[derive(Debug, Clone)]
pub struct Job {
    /// Dense job id (index into the trace).
    pub id: usize,
    /// Submitting user (index into the user pool).
    pub user: usize,
    /// Submission time, hours since the simulation epoch.
    pub arrival_hours: f64,
    /// Execution length, hours.
    pub runtime_hours: f64,
    /// GPUs held while running.
    pub gpus: u32,
    /// IT power drawn per held GPU while running (board + host share).
    pub power_per_gpu: Power,
    /// Hours of deferral the job tolerates (its slack before the user's
    /// deadline). Carbon-aware policies must respect it.
    pub max_defer_hours: f64,
}

impl Job {
    /// Total IT power while running.
    pub fn power(&self) -> Power {
        self.power_per_gpu * f64::from(self.gpus)
    }

    /// GPU-hours consumed.
    pub fn gpu_hours(&self) -> f64 {
        f64::from(self.gpus) * self.runtime_hours
    }
}

/// Seeded generator of job traces with the canonical HPC shape:
/// Poisson arrivals, log-normal runtimes, skewed GPU-size mix.
#[derive(Debug, Clone)]
pub struct JobTraceGenerator {
    /// Mean arrivals per hour.
    pub arrival_rate_per_hour: f64,
    /// Median runtime, hours.
    pub median_runtime_hours: f64,
    /// Log-normal spread of runtimes.
    pub runtime_sigma: f64,
    /// GPU-count choices and weights.
    pub gpu_sizes: Vec<(u32, f64)>,
    /// Number of distinct users.
    pub users: usize,
    /// Per-GPU IT power while running.
    pub power_per_gpu: Power,
    /// Mean tolerated deferral, hours (exponentially distributed).
    pub mean_defer_tolerance_hours: f64,
}

impl JobTraceGenerator {
    /// A production-like default: ~2 jobs/hour, 3 h median runtime,
    /// mostly small jobs, 350 W per GPU (board + host share), up to a
    /// day of tolerated deferral on average.
    pub fn default_rates() -> JobTraceGenerator {
        JobTraceGenerator {
            arrival_rate_per_hour: 2.0,
            median_runtime_hours: 3.0,
            runtime_sigma: 1.0,
            gpu_sizes: vec![(1, 0.45), (2, 0.25), (4, 0.20), (8, 0.10)],
            users: 16,
            power_per_gpu: Power::from_w(350.0),
            mean_defer_tolerance_hours: 24.0,
        }
    }

    /// Generates `n` jobs deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Job> {
        assert!(self.arrival_rate_per_hour > 0.0);
        let mut rng = SimRng::seed_from(seed).substream("jobs");
        // lint: allow(panic-in-library) -- rate positivity is asserted two lines up, so the constructor cannot fail
        let inter = Exponential::new(self.arrival_rate_per_hour).expect("positive rate");
        let runtime = LogNormal::from_median(self.median_runtime_hours, self.runtime_sigma)
            // lint: allow(panic-in-library) -- workload presets carry positive medians and sigmas; a bad hand-built preset should stop loudly at generation time
            .expect("valid");
        // lint: allow(panic-in-library) -- mean_defer_tolerance_hours is positive in every preset, so the rate 1/mean is positive and finite
        let defer = Exponential::new(1.0 / self.mean_defer_tolerance_hours).expect("positive");
        let weights: Vec<f64> = self.gpu_sizes.iter().map(|(_, w)| *w).collect();
        // lint: allow(panic-in-library) -- gpu_sizes presets always carry at least one positive weight, the only way WeightedIndex::new fails
        let size_dist = WeightedIndex::new(&weights).expect("valid weights");

        let mut t = 0.0;
        (0..n)
            .map(|id| {
                t += inter.sample(&mut rng);
                Job {
                    id,
                    user: rng.index(self.users),
                    arrival_hours: t,
                    // Cap runtimes at a week to keep the tail physical.
                    runtime_hours: runtime.sample(&mut rng).clamp(0.05, 168.0),
                    gpus: self.gpu_sizes[size_dist.sample(&mut rng)].0,
                    power_per_gpu: self.power_per_gpu,
                    max_defer_hours: defer.sample(&mut rng),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = JobTraceGenerator::default_rates();
        let a = g.generate(100, 5);
        let b = g.generate(100, 5);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_hours, y.arrival_hours);
            assert_eq!(x.runtime_hours, y.runtime_hours);
            assert_eq!(x.gpus, y.gpus);
            assert_eq!(x.user, y.user);
        }
        let c = g.generate(100, 6);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.arrival_hours != y.arrival_hours));
    }

    #[test]
    fn arrivals_are_increasing_and_rate_plausible() {
        let g = JobTraceGenerator::default_rates();
        let jobs = g.generate(2000, 1);
        for w in jobs.windows(2) {
            assert!(w[1].arrival_hours > w[0].arrival_hours);
        }
        // ~2 jobs/hour -> 2000 jobs span ~1000 h.
        let span = jobs.last().unwrap().arrival_hours;
        assert!((800.0..1250.0).contains(&span), "span {span}");
    }

    #[test]
    fn runtimes_and_sizes_in_range() {
        let g = JobTraceGenerator::default_rates();
        let jobs = g.generate(2000, 2);
        let valid_sizes: Vec<u32> = g.gpu_sizes.iter().map(|(s, _)| *s).collect();
        for j in &jobs {
            assert!(j.runtime_hours >= 0.05 && j.runtime_hours <= 168.0);
            assert!(valid_sizes.contains(&j.gpus));
            assert!(j.user < g.users);
            assert!(j.max_defer_hours >= 0.0);
        }
        // Median runtime lands near the configured median.
        let mut rt: Vec<f64> = jobs.iter().map(|j| j.runtime_hours).collect();
        rt.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rt[rt.len() / 2];
        assert!((median / 3.0 - 1.0).abs() < 0.2, "median {median}");
    }

    #[test]
    fn power_and_gpu_hours() {
        let j = Job {
            id: 0,
            user: 0,
            arrival_hours: 0.0,
            runtime_hours: 2.0,
            gpus: 4,
            power_per_gpu: Power::from_w(300.0),
            max_defer_hours: 0.0,
        };
        assert_eq!(j.power().as_kw(), 1.2);
        assert_eq!(j.gpu_hours(), 8.0);
    }
}
