//! A GPU partition in one grid region.

use crate::job::Job;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_units::{CarbonMass, Energy, Power, TimeSpan};
use std::sync::Arc;

/// The cluster `job` actually runs on when `preferred` is requested:
/// `preferred` if it fits, else the first cluster that does, else
/// `preferred` again (callers guard the no-fit case up front).
///
/// This is THE placement-fallback rule. The simulator's arrival event,
/// the shifting policies and the savings baseline all call it, so the
/// deferral trace, the counterfactual and the actual run can never
/// drift onto different clusters when the rule changes.
pub fn fitting_cluster(preferred: usize, job: &Job, clusters: &[Cluster]) -> usize {
    if clusters[preferred].capacity_gpus >= job.gpus {
        preferred
    } else {
        clusters
            .iter()
            .position(|c| c.capacity_gpus >= job.gpus)
            .unwrap_or(preferred)
    }
}

/// A homogeneous GPU partition whose electricity comes from one regional
/// grid (its [`IntensityTrace`]).
///
/// The trace is held behind an [`Arc`] so that cloning a cluster — or a
/// whole cluster topology, as the shift-savings baseline does — shares
/// the indexed year trace instead of copying its megabyte of prefix
/// sums. Streaming sweeps clone thousands of topologies per second off
/// one precomputed trace set, so this sharing is load-bearing.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Site name.
    pub name: String,
    /// The regional hourly intensity trace (shared, immutable). This is
    /// what jobs *pay*: carbon accounting always integrates this series.
    pub trace: Arc<IntensityTrace>,
    /// The planning trace policies argmin over, when scheduling under a
    /// forecast instead of perfect knowledge. `None` (the default) plans
    /// on [`Cluster::trace`] itself — the oracle.
    pub forecast: Option<Arc<IntensityTrace>>,
    /// Total schedulable GPUs.
    pub capacity_gpus: u32,
    /// Facility PUE.
    pub pue: f64,
}

impl Cluster {
    /// Creates a cluster with the default facility PUE (1.2). Accepts an
    /// owned [`IntensityTrace`] or an `Arc` to one already shared.
    pub fn new(
        name: impl Into<String>,
        trace: impl Into<Arc<IntensityTrace>>,
        capacity_gpus: u32,
    ) -> Cluster {
        assert!(capacity_gpus > 0, "cluster needs capacity");
        Cluster {
            name: name.into(),
            trace: trace.into(),
            forecast: None,
            capacity_gpus,
            pue: 1.2,
        }
    }

    /// Attaches a planning forecast. Policies will argmin over it while
    /// carbon is still realized against the actual trace.
    ///
    /// # Panics
    /// If the forecast covers a different number of hours than the
    /// actual trace (they must index the same year).
    pub fn with_forecast(mut self, forecast: impl Into<Arc<IntensityTrace>>) -> Cluster {
        let forecast = forecast.into();
        assert_eq!(
            forecast.series().len(),
            self.trace.series().len(),
            "forecast must cover the same year as the actual trace"
        );
        self.forecast = Some(forecast);
        self
    }

    /// The trace scheduling decisions are made against: the forecast when
    /// one is attached, else the actual trace.
    pub fn planning_trace(&self) -> &IntensityTrace {
        self.forecast.as_deref().unwrap_or(&self.trace)
    }

    /// Operational carbon of drawing `power` (IT) from this cluster for
    /// `[start, start+duration]` hours since the trace's year start —
    /// the hourly-priced Eq. 6.
    pub fn carbon_for(&self, start_hours: f64, duration: TimeSpan, power: Power) -> CarbonMass {
        assert!(start_hours >= 0.0, "start must be non-negative");
        assert!(duration.as_hours() > 0.0, "duration must be positive");
        let facility_kw = power.as_kw() * self.pue;
        let len = self.trace.series().len() as f64;
        let mut grams = 0.0;
        let mut t = start_hours;
        let end = start_hours + duration.as_hours();
        while t < end {
            let hour_end = (t.floor() + 1.0).min(end);
            let dt = hour_end - t;
            let idx = (t.floor() as u64 % len as u64) as u32;
            grams += facility_kw * dt * self.trace.at_index(idx).as_g_per_kwh();
            t = hour_end;
        }
        CarbonMass::from_g(grams)
    }

    /// Facility energy of drawing `power` (IT) for `duration`.
    pub fn energy_for(&self, duration: TimeSpan, power: Power) -> Energy {
        (power * duration) * self.pue
    }

    /// Average *planning* intensity over a window (what policies decide
    /// on): one `O(1)` lookup in the planning trace's window index,
    /// wrapping past year end. Durations beyond one trace year are
    /// approximated by the full-year mean — the clamp ignores the extra
    /// weight a partial second cycle would put on its hours, which only
    /// matters for runtimes far outside the workload model (log-normal,
    /// median 3 h).
    pub fn mean_intensity_over(&self, start_hours: f64, duration_hours: f64) -> f64 {
        let planning = self.planning_trace();
        let len = planning.series().len() as u32;
        let w = (duration_hours.ceil().max(1.0) as u32).min(len);
        let start = (start_hours.floor() as u64 % u64::from(len)) as u32;
        planning.window_index().window_mean(start, w)
    }

    /// The indexed greenest shift for a `duration_hours` run on this
    /// cluster: the deferral `d ∈ [0, slack_hours]` minimizing the mean
    /// *planning* intensity of the (wrapped) run window, plus that mean.
    /// `O(slack)` via the planning trace's window index; ties break
    /// toward the smallest shift.
    pub fn greenest_shift_for(
        &self,
        start_hours: f64,
        duration_hours: f64,
        slack_hours: u32,
    ) -> (u32, f64) {
        let planning = self.planning_trace();
        let len = planning.series().len() as u32;
        let w = (duration_hours.ceil().max(1.0) as u32).min(len);
        let start = (start_hours.floor() as u64 % u64::from(len)) as u32;
        let shift = planning.greenest_shift(start, slack_hours, w);
        let mean = planning
            .window_index()
            .window_mean((start + shift) % len, w);
        (shift, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_timeseries::series::HourlySeries;

    fn step_trace() -> IntensityTrace {
        // 100 g/kWh during hours 0-11, 300 during 12-23 of every day.
        IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 12 { 100.0 } else { 300.0 }),
        )
    }

    #[test]
    fn carbon_integrates_hour_by_hour() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // 1 kW for 2 h starting at hour 11: one hour at 100, one at 300.
        let m = c.carbon_for(11.0, TimeSpan::from_hours(2.0), Power::from_kw(1.0));
        assert!((m.as_g() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_window() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // 1 kW from 11.5 to 12.5: 0.5 h at 100 + 0.5 h at 300 = 200 g.
        let m = c.carbon_for(11.5, TimeSpan::from_hours(1.0), Power::from_kw(1.0));
        assert!((m.as_g() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pue_scales_carbon_and_energy() {
        let base = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        let lossy = Cluster {
            pue: 1.5,
            ..Cluster::new("t", step_trace(), 8)
        };
        let d = TimeSpan::from_hours(3.0);
        let p = Power::from_kw(2.0);
        assert!(
            (lossy.carbon_for(0.0, d, p).as_g() / base.carbon_for(0.0, d, p).as_g() - 1.5).abs()
                < 1e-9
        );
        assert!((lossy.energy_for(d, p).as_kwh() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn mean_intensity_window() {
        let c = Cluster::new("t", step_trace(), 8);
        assert!((c.mean_intensity_over(0.0, 12.0) - 100.0).abs() < 1e-9);
        assert!((c.mean_intensity_over(6.0, 12.0) - 200.0).abs() < 1e-9);
        // The mean wraps at year end: hours 8759 (dirty) and 0 (clean).
        assert!((c.mean_intensity_over(8759.0, 2.0) - 200.0).abs() < 1e-9);
        // Durations beyond the trace clamp to one full year.
        assert!((c.mean_intensity_over(0.0, 20_000.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn greenest_shift_finds_the_clean_block() {
        let c = Cluster::new("t", step_trace(), 8);
        // A 4-hour run arriving at hour 18 (dirty): best shift is 6 hours
        // to midnight, mean 100.
        let (shift, mean) = c.greenest_shift_for(18.0, 4.0, 24);
        assert_eq!(shift, 6);
        assert!((mean - 100.0).abs() < 1e-9);
        // No slack: pinned to now.
        assert_eq!(c.greenest_shift_for(18.0, 4.0, 0).0, 0);
    }

    #[test]
    fn wraps_across_year_end() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // Starting at the last hour of the year and running 2 h wraps to
        // hour 0 (intensity 300 then 100).
        let m = c.carbon_for(8759.0, TimeSpan::from_hours(2.0), Power::from_kw(1.0));
        assert!((m.as_g() - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cluster needs capacity")]
    fn rejects_zero_capacity() {
        let _ = Cluster::new("t", step_trace(), 0);
    }

    #[test]
    fn forecast_drives_planning_but_not_carbon() {
        // The forecast inverts the diurnal pattern: it predicts clean
        // afternoons where the actual grid is dirty.
        let inverted = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 12 { 300.0 } else { 100.0 }),
        );
        let c = Cluster::new("t", step_trace(), 8).with_forecast(inverted);
        // Planning follows the (wrong) forecast into the afternoon.
        let (shift, mean) = c.greenest_shift_for(10.0, 4.0, 12);
        assert_eq!(shift, 2);
        assert!((mean - 100.0).abs() < 1e-9);
        assert!((c.mean_intensity_over(12.0, 4.0) - 100.0).abs() < 1e-9);
        // Carbon still integrates the actual trace (hour 12 is 300 g/kWh).
        let m = Cluster { pue: 1.0, ..c }.carbon_for(
            12.0,
            TimeSpan::from_hours(1.0),
            Power::from_kw(1.0),
        );
        assert!((m.as_g() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn no_forecast_plans_on_the_actual() {
        let c = Cluster::new("t", step_trace(), 8);
        assert_eq!(
            c.planning_trace().series().values(),
            c.trace.series().values()
        );
    }

    #[test]
    #[should_panic(expected = "forecast must cover the same year")]
    fn rejects_mismatched_forecast() {
        let leap = IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2020, 100.0));
        let _ = Cluster::new("t", step_trace(), 8).with_forecast(leap);
    }
}
