//! A GPU partition in one grid region.

use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_units::{CarbonMass, Energy, Power, TimeSpan};

/// A homogeneous GPU partition whose electricity comes from one regional
/// grid (its [`IntensityTrace`]).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Site name.
    pub name: String,
    /// The regional hourly intensity trace.
    pub trace: IntensityTrace,
    /// Total schedulable GPUs.
    pub capacity_gpus: u32,
    /// Facility PUE.
    pub pue: f64,
}

impl Cluster {
    /// Creates a cluster with the default facility PUE (1.2).
    pub fn new(name: impl Into<String>, trace: IntensityTrace, capacity_gpus: u32) -> Cluster {
        assert!(capacity_gpus > 0, "cluster needs capacity");
        Cluster {
            name: name.into(),
            trace,
            capacity_gpus,
            pue: 1.2,
        }
    }

    /// Operational carbon of drawing `power` (IT) from this cluster for
    /// `[start, start+duration]` hours since the trace's year start —
    /// the hourly-priced Eq. 6.
    pub fn carbon_for(&self, start_hours: f64, duration: TimeSpan, power: Power) -> CarbonMass {
        assert!(start_hours >= 0.0, "start must be non-negative");
        assert!(duration.as_hours() > 0.0, "duration must be positive");
        let facility_kw = power.as_kw() * self.pue;
        let len = self.trace.series().len() as f64;
        let mut grams = 0.0;
        let mut t = start_hours;
        let end = start_hours + duration.as_hours();
        while t < end {
            let hour_end = (t.floor() + 1.0).min(end);
            let dt = hour_end - t;
            let idx = (t.floor() as u64 % len as u64) as u32;
            grams += facility_kw * dt * self.trace.at_index(idx).as_g_per_kwh();
            t = hour_end;
        }
        CarbonMass::from_g(grams)
    }

    /// Facility energy of drawing `power` (IT) for `duration`.
    pub fn energy_for(&self, duration: TimeSpan, power: Power) -> Energy {
        (power * duration) * self.pue
    }

    /// Average intensity over a window (used by forecast-free policies).
    pub fn mean_intensity_over(&self, start_hours: f64, duration_hours: f64) -> f64 {
        let len = self.trace.series().len() as f64;
        let n = duration_hours.ceil().max(1.0) as u32;
        let mut acc = 0.0;
        for k in 0..n {
            let idx = ((start_hours.floor() + f64::from(k)) as u64 % len as u64) as u32;
            acc += self.trace.at_index(idx).as_g_per_kwh();
        }
        acc / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_timeseries::series::HourlySeries;

    fn step_trace() -> IntensityTrace {
        // 100 g/kWh during hours 0-11, 300 during 12-23 of every day.
        IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| if st.hour() < 12 { 100.0 } else { 300.0 }),
        )
    }

    #[test]
    fn carbon_integrates_hour_by_hour() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // 1 kW for 2 h starting at hour 11: one hour at 100, one at 300.
        let m = c.carbon_for(11.0, TimeSpan::from_hours(2.0), Power::from_kw(1.0));
        assert!((m.as_g() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_window() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // 1 kW from 11.5 to 12.5: 0.5 h at 100 + 0.5 h at 300 = 200 g.
        let m = c.carbon_for(11.5, TimeSpan::from_hours(1.0), Power::from_kw(1.0));
        assert!((m.as_g() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pue_scales_carbon_and_energy() {
        let base = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        let lossy = Cluster {
            pue: 1.5,
            ..Cluster::new("t", step_trace(), 8)
        };
        let d = TimeSpan::from_hours(3.0);
        let p = Power::from_kw(2.0);
        assert!(
            (lossy.carbon_for(0.0, d, p).as_g() / base.carbon_for(0.0, d, p).as_g() - 1.5).abs()
                < 1e-9
        );
        assert!((lossy.energy_for(d, p).as_kwh() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn mean_intensity_window() {
        let c = Cluster::new("t", step_trace(), 8);
        assert!((c.mean_intensity_over(0.0, 12.0) - 100.0).abs() < 1e-9);
        assert!((c.mean_intensity_over(6.0, 12.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn wraps_across_year_end() {
        let c = Cluster {
            pue: 1.0,
            ..Cluster::new("t", step_trace(), 8)
        };
        // Starting at the last hour of the year and running 2 h wraps to
        // hour 0 (intensity 300 then 100).
        let m = c.carbon_for(8759.0, TimeSpan::from_hours(2.0), Power::from_kw(1.0));
        assert!((m.as_g() - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cluster needs capacity")]
    fn rejects_zero_capacity() {
        let _ = Cluster::new("t", step_trace(), 0);
    }
}
