//! Deterministic, forkable random number streams.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`]
//! created from an explicit seed, so whole experiments (grid year traces,
//! scheduler simulations, workload jitter) are reproducible bit-for-bit.
//!
//! Substreams are derived with a SplitMix64 hash of `(seed, label)`, which
//! gives statistically independent streams and — crucially for the parallel
//! helpers in [`crate::par`] — makes the assignment of randomness to work
//! items independent of the number of worker threads.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step; used to derive seeds, never as the main generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a string label into a 64-bit stream discriminator (FNV-1a).
#[inline]
pub fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A seeded random stream wrapping [`rand::rngs::StdRng`].
///
/// `SimRng` adds two things over a bare `StdRng`:
/// 1. construction from a simple `u64` seed expanded via SplitMix64, and
/// 2. [`SimRng::fork`] / [`SimRng::substream`], which derive independent
///    child streams deterministically.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng {
            inner: StdRng::from_seed(key),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream from an integer discriminator.
    ///
    /// `rng.fork(i)` is a pure function of `(seed, i)` — it does not consume
    /// state from `self` — so forks can be taken in any order.
    pub fn fork(&self, index: u64) -> SimRng {
        let mut state = self.seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut state);
        let mut state2 = a ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        SimRng::seed_from(splitmix64(&mut state2))
    }

    /// Derives an independent child stream from a string label, e.g.
    /// `rng.substream("wind")`.
    pub fn substream(&self, label: &str) -> SimRng {
        self.fork(label_hash(label))
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_pure() {
        let root = SimRng::seed_from(99);
        let mut f1 = root.fork(3);
        let mut f2 = root.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
        // Forking does not advance the parent.
        let mut r1 = SimRng::seed_from(99);
        let mut r2 = SimRng::seed_from(99);
        let _ = r1.fork(1);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn forks_are_independent() {
        let root = SimRng::seed_from(99);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substream_labels() {
        let root = SimRng::seed_from(5);
        let mut wind1 = root.substream("wind");
        let mut wind2 = root.substream("wind");
        let mut solar = root.substream("solar");
        assert_eq!(wind1.next_u64(), wind2.next_u64());
        assert_ne!(wind1.next_u64(), solar.next_u64());
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::seed_from(123);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(2);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn label_hash_distinguishes() {
        assert_ne!(label_hash("wind"), label_hash("solar"));
        assert_ne!(label_hash(""), label_hash(" "));
    }
}
