//! A minimal discrete-event simulation engine.
//!
//! Events are ordered by `(time, sequence)` in a binary heap; ties are
//! broken by insertion order so simulations are fully deterministic. The
//! engine is deliberately generic: the carbon-aware scheduler drives it with
//! job-arrival / job-completion / intensity-update events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation timestamps are `f64` hours since the simulation epoch,
/// matching the hourly resolution of grid traces while allowing sub-hour
/// event times.
pub type SimTime = f64;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue / clock of a discrete-event simulation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// If `time` is NaN or earlier than the current time (events cannot be
    /// scheduled in the past).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock. Returns `None` when the
    /// simulation has run dry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Peeks at the next event time without advancing the clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Runs the simulation until the queue is empty or `handler` returns
    /// `false` (stop request). `handler` may schedule further events.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E) -> bool,
    {
        while let Some(s) = self.heap.pop() {
            self.now = s.time;
            self.processed += 1;
            if !handler(self, s.time, s.event) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(1.0, 2);
        q.schedule_at(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "first");
        q.pop();
        q.schedule_in(2.5, "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 12.5);
        assert_eq!(e, "second");
    }

    #[test]
    fn run_with_cascading_events() {
        // A handler that re-schedules a follow-up for the first 4 events.
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 0u32);
        let mut seen = Vec::new();
        q.run(|q, t, gen| {
            seen.push((t, gen));
            if gen < 4 {
                q.schedule_in(1.0, gen + 1);
            }
            true
        });
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last(), Some(&(5.0, 4)));
        assert_eq!(q.processed(), 5);
    }

    #[test]
    fn run_stops_on_false() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(i as f64, i);
        }
        let mut count = 0;
        q.run(|_, _, i| {
            count += 1;
            i < 3
        });
        // Events 0,1,2 return true; event 3 returns false and stops the run.
        assert_eq!(count, 4);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }
}
