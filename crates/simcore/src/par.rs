//! Structured data-parallel helpers over crossbeam scoped threads.
//!
//! The workspace's heavy computations (per-region year traces, per-policy
//! scheduler sweeps, parameter grids) are embarrassingly parallel across
//! independent work items. `par_map` provides a Rayon-like `map` with two
//! guarantees the guides call out:
//!
//! 1. **Determinism** — results are returned in input order and any
//!    randomness must be derived per-item (see [`crate::rng::SimRng::fork`]),
//!    so the outcome is independent of thread count and interleaving.
//! 2. **Data-race freedom by construction** — work items are distributed by
//!    an atomic cursor; each output slot is written by exactly one worker.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the available parallelism, capped by
/// the number of work items (spawning more threads than items is waste).
pub fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Applies `f` to every element of `items` in parallel, returning results
/// in input order.
///
/// Work is distributed dynamically with an atomic cursor (work-stealing-lite),
/// so heterogeneous item costs — e.g. simulating regions with different
/// fuel-mix complexity — still balance.
///
/// ```
/// let squares = hpcarbon_sim::par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_workers(items, worker_count(items.len()), f)
}

/// [`par_map`] with an explicit worker count.
///
/// The result is identical for every `workers` value — work distribution
/// affects only wall-clock time, never outputs (results return in input
/// order and randomness must be forked per item, not per thread). Sweep
/// determinism tests exercise exactly this property; `workers` is clamped
/// to `[1, items.len()]`.
pub fn par_map_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    {
        // Split the output buffer into one-slot mutable views that can be
        // handed to workers without aliasing.
        let slots: Vec<parking_lot_free::SlotWriter<'_, R>> =
            parking_lot_free::split_slots(&mut results);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                let f = &f;
                let slots = &slots;
                scope.spawn(move |_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i, &items[i]);
                    slots[i].write(value);
                });
            }
        })
        // lint: allow(panic-in-library) -- re-raising a worker panic on the caller is the point: returning partial results would silently corrupt the sweep
        .expect("parallel worker panicked");
    }
    results
        .into_iter()
        // lint: allow(panic-in-library) -- the cursor hands out each index exactly once and the scope join guarantees every worker finished, so every slot is Some
        .map(|r| r.expect("every slot written exactly once"))
        .collect()
}

/// Applies `f` to indices `0..n` in parallel and returns results in order.
/// Convenience wrapper for index-driven workloads (e.g. one result per
/// simulated day or per parameter-grid cell).
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |_, &i| f(i))
}

/// Safe single-writer slot views over a `Vec<Option<R>>`.
///
/// Each slot is written by exactly one worker (the one that claimed its
/// index from the atomic cursor), which we enforce dynamically with a
/// per-slot atomic flag instead of `unsafe` pointer writes.
mod parking_lot_free {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// A write-once view of one output slot.
    pub struct SlotWriter<'a, R> {
        slot: Mutex<&'a mut Option<R>>,
        written: AtomicBool,
    }

    impl<'a, R> SlotWriter<'a, R> {
        /// Writes the value; panics if the slot was already written, which
        /// would indicate a work-distribution bug.
        pub fn write(&self, value: R) {
            if self.written.swap(true, Ordering::AcqRel) {
                // lint: allow(panic-in-library) -- documented panic on a work-distribution bug; overwriting a finished result would corrupt the sweep silently
                panic!("output slot written twice");
            }
            // lint: allow(panic-in-library) -- the slot mutex is per-writer and uncontended (the swap above admits exactly one write), so poisoning is unreachable
            **self.slot.lock().expect("slot lock poisoned") = Some(value);
        }
    }

    /// Splits a mutable vector of options into independent slot writers.
    pub fn split_slots<R>(out: &mut [Option<R>]) -> Vec<SlotWriter<'_, R>> {
        out.iter_mut()
            .map(|slot| SlotWriter {
                slot: Mutex::new(slot),
                written: AtomicBool::new(false),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[42u64], |i, &x| (i, x));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let n = 10_000;
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..n).collect();
        let out = par_map(&items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), n as u64);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn matches_sequential_result() {
        // The Rayon guarantee: parallel result equals sequential result.
        let items: Vec<f64> = (0..5000).map(|i| i as f64 * 0.001).collect();
        let seq: Vec<f64> = items.iter().map(|x| (x.sin() * x.cos()).abs()).collect();
        let par = par_map(&items, |_, x| (x.sin() * x.cos()).abs());
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_indexed_basic() {
        let out = par_map_indexed(5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }

    #[test]
    fn forced_worker_counts_agree() {
        use rand::RngCore;
        // The determinism guarantee the sweep engine is built on: the
        // result is a pure function of the input, not of the thread count.
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = par_map_workers(&items, 1, |i, &x| {
            let mut rng = crate::rng::SimRng::seed_from(42).fork(i as u64);
            x.wrapping_add(rng.next_u64())
        });
        for workers in [2, 3, 4, 8, 64, 1000] {
            let out = par_map_workers(&items, workers, |i, &x| {
                let mut rng = crate::rng::SimRng::seed_from(42).fork(i as u64);
                x.wrapping_add(rng.next_u64())
            });
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_with_forced_workers() {
        let out: Vec<u64> = par_map_workers(&[] as &[u64], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential() {
        // With one worker the items are processed strictly in order.
        let order = std::sync::Mutex::new(Vec::new());
        let items: Vec<usize> = (0..100).collect();
        let _ = par_map_workers(&items, 1, |i, _| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), items);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_workers(&items, 4, |_, &x| {
                if x == 33 {
                    panic!("worker exploded on item {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "a worker panic must not be swallowed");
    }

    #[test]
    fn heterogeneous_costs_balance() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
