//! Stochastic processes for synthesizing physically plausible signals.
//!
//! The grid simulator needs *temporally correlated* noise: wind availability
//! does not jump independently hour to hour, it drifts. The standard model
//! is an Ornstein–Uhlenbeck (OU) mean-reverting process; an AR(1) process is
//! its exact discretization, which is what we implement.

use crate::dist::standard_normal;
use crate::rng::SimRng;

/// A mean-reverting Ornstein–Uhlenbeck process sampled on a fixed step.
///
/// `dX = theta * (mu - X) dt + sigma dW`, discretized exactly:
/// `X_{t+dt} = mu + (X_t - mu) e^{-theta dt} + sigma_eff * N(0,1)` with
/// `sigma_eff = sigma * sqrt((1 - e^{-2 theta dt}) / (2 theta))`.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    mu: f64,
    decay: f64,     // e^{-theta dt}
    sigma_eff: f64, // stationary-consistent per-step std dev
    state: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates the process with mean `mu`, reversion rate `theta` (per unit
    /// time), volatility `sigma` and step `dt`.
    ///
    /// # Panics
    /// If `theta <= 0`, `sigma < 0` or `dt <= 0`.
    pub fn new(mu: f64, theta: f64, sigma: f64, dt: f64) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(dt > 0.0, "dt must be positive");
        let decay = (-theta * dt).exp();
        let sigma_eff = sigma * ((1.0 - decay * decay) / (2.0 * theta)).sqrt();
        OrnsteinUhlenbeck {
            mu,
            decay,
            sigma_eff,
            state: mu,
        }
    }

    /// Resets the state to an explicit starting value.
    pub fn reset(&mut self, x0: f64) {
        self.state = x0;
    }

    /// Starts the process from its stationary distribution
    /// `N(mu, sigma^2 / (2 theta))`, so traces have no warm-up transient.
    pub fn reset_stationary(&mut self, rng: &mut SimRng) {
        // sigma_eff^2 = sigma^2 (1 - d^2) / (2 theta); stationary var is
        // sigma^2 / (2 theta) = sigma_eff^2 / (1 - d^2).
        let stationary_sd = self.sigma_eff / (1.0 - self.decay * self.decay).sqrt();
        self.state = self.mu + stationary_sd * standard_normal(rng);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Long-run mean.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Advances one step and returns the new value.
    pub fn step(&mut self, rng: &mut SimRng) -> f64 {
        self.state =
            self.mu + (self.state - self.mu) * self.decay + self.sigma_eff * standard_normal(rng);
        self.state
    }
}

/// A first-order autoregressive process `X_{t+1} = c + phi X_t + eps`,
/// kept for callers that think in AR terms rather than OU terms.
#[derive(Debug, Clone)]
pub struct Ar1 {
    c: f64,
    phi: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Creates the process; `|phi| < 1` is required for stationarity.
    ///
    /// # Panics
    /// If `|phi| >= 1` or `sigma < 0`.
    pub fn new(c: f64, phi: f64, sigma: f64) -> Self {
        assert!(phi.abs() < 1.0, "|phi| must be < 1 for stationarity");
        assert!(sigma >= 0.0);
        let mean = c / (1.0 - phi);
        Ar1 {
            c,
            phi,
            sigma,
            state: mean,
        }
    }

    /// Long-run mean `c / (1 - phi)`.
    pub fn mean(&self) -> f64 {
        self.c / (1.0 - self.phi)
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Advances one step and returns the new value.
    pub fn step(&mut self, rng: &mut SimRng) -> f64 {
        self.state = self.c + self.phi * self.state + self.sigma * standard_normal(rng);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ou_reverts_to_mean() {
        let mut rng = SimRng::seed_from(21);
        let mut ou = OrnsteinUhlenbeck::new(10.0, 0.5, 0.0, 1.0);
        ou.reset(100.0);
        for _ in 0..50 {
            ou.step(&mut rng);
        }
        assert!((ou.value() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ou_stationary_moments() {
        let mut rng = SimRng::seed_from(22);
        let theta = 0.2;
        let sigma = 1.5;
        let mut ou = OrnsteinUhlenbeck::new(0.0, theta, sigma, 1.0);
        ou.reset_stationary(&mut rng);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| ou.step(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expect_var = sigma * sigma / (2.0 * theta);
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!(
            (var / expect_var - 1.0).abs() < 0.1,
            "var={var} vs {expect_var}"
        );
    }

    #[test]
    fn ou_autocorrelation_decays() {
        let mut rng = SimRng::seed_from(23);
        let mut ou = OrnsteinUhlenbeck::new(0.0, 0.3, 1.0, 1.0);
        ou.reset_stationary(&mut rng);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| ou.step(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let lag1: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n as f64 - 1.0)
            / var;
        let expect = (-0.3f64).exp();
        assert!((lag1 - expect).abs() < 0.02, "lag1={lag1} expect={expect}");
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn ou_rejects_nonpositive_theta() {
        let _ = OrnsteinUhlenbeck::new(0.0, 0.0, 1.0, 1.0);
    }

    #[test]
    fn ar1_mean() {
        let mut rng = SimRng::seed_from(24);
        let mut p = Ar1::new(2.0, 0.8, 0.5);
        let n = 100_000;
        let mean = (0..n).map(|_| p.step(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
        assert!((p.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stationarity")]
    fn ar1_rejects_unit_root() {
        let _ = Ar1::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rng = SimRng::seed_from(seed);
            let mut ou = OrnsteinUhlenbeck::new(5.0, 0.1, 2.0, 1.0);
            ou.reset_stationary(&mut rng);
            (0..100).map(|_| ou.step(&mut rng)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
