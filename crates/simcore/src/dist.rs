//! Sampling distributions built on the uniform source.
//!
//! Implemented from first principles (Box–Muller, inversion, Knuth,
//! Walker's alias method) because the offline dependency set excludes
//! `rand_distr`. Each distribution validates its parameters at construction
//! and is immutable afterwards, so a single instance can be shared across
//! threads.

use crate::rng::SimRng;

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub &'static str);

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Normal (Gaussian) distribution sampled with the Box–Muller transform.
///
/// The polar rejection variant is used to avoid evaluating trigonometric
/// functions in the hot path of trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(ParamError("normal: non-finite parameter"));
        }
        if std_dev < 0.0 {
            return Err(ParamError("normal: negative std dev"));
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// One standard-normal draw via Marsaglia's polar method.
#[inline]
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.uniform() - 1.0;
        let v = 2.0 * rng.uniform() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Job runtimes and sizes in the scheduler trace generator follow
/// log-normals, the standard model for HPC job-length distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// From the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }

    /// Constructs the log-normal with a given *median* and multiplicative
    /// spread `sigma` (median = exp(mu)).
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, ParamError> {
        if median <= 0.0 || median.is_nan() {
            return Err(ParamError("lognormal: median must be positive"));
        }
        Self::new(median.ln(), sigma)
    }

    /// Theoretical mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.norm.mean() + 0.5 * self.norm.std_dev().powi(2)).exp()
    }

    /// Draws one sample (always positive).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution sampled by inversion; used for Poisson-process
/// inter-arrival times in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// `rate` (lambda) must be finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError("exponential: rate must be positive"));
        }
        Ok(Exponential { rate })
    }

    /// Mean `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // 1 - U avoids ln(0).
        -(1.0 - rng.uniform()).ln() / self.rate
    }
}

/// Poisson distribution. Knuth's product method for small means; for
/// `lambda > 30` a normal approximation with continuity correction is used
/// (adequate for workload counts, and branch-free in the hot path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError("poisson: lambda must be positive"));
        }
        Ok(Poisson { lambda })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.lambda > 30.0 {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            return x.round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k: u64 = 0;
        let mut p = 1.0;
        loop {
            p *= rng.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// Weighted discrete distribution over `0..n` using Walker's alias method:
/// O(n) construction, O(1) sampling.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedIndex {
    /// Builds the table from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError("weighted: empty weights"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError("weighted: weights must be finite and >= 0"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError("weighted: total weight must be positive"));
        }
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, s) in scaled.iter().enumerate() {
            if *s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            // lint: allow(panic-in-library) -- both stacks are checked non-empty by the loop condition on the line above; a while-let tuple would pop (and drop) from one stack when the other is empty
            let s = small.pop().expect("checked non-empty");
            // lint: allow(panic-in-library) -- same loop-condition guarantee as the pop above
            let l = large.pop().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large {
            prob[i] = 1.0;
        }
        for i in small {
            prob[i] = 1.0;
        }
        Ok(WeightedIndex { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from(11);
        let d = Normal::new(5.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 5.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut rng = SimRng::seed_from(12);
        let d = LogNormal::from_median(100.0, 0.8).unwrap();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|x| *x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median={median}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from(13);
        let d = Exponential::new(0.25).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = SimRng::seed_from(14);
        let d = Poisson::new(3.0).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 3.0).abs() < 0.12, "var={var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = SimRng::seed_from(15);
        let d = Poisson::new(200.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 200.0).abs() < 0.5, "mean={mean}");
        assert!((var / 200.0 - 1.0).abs() < 0.08, "var={var}");
    }

    #[test]
    fn weighted_frequencies() {
        let mut rng = SimRng::seed_from(16);
        let w = WeightedIndex::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut counts = [0usize; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|c| *c as f64 / n as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01, "{f:?}");
        assert!((f[1] - 0.2).abs() < 0.01, "{f:?}");
        assert!((f[2] - 0.7).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn weighted_zero_weight_never_sampled() {
        let mut rng = SimRng::seed_from(17);
        let w = WeightedIndex::new(&[0.0, 1.0, 0.0]).unwrap();
        for _ in 0..10_000 {
            assert_eq!(w.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0, 2.0]).is_err());
        assert!(WeightedIndex::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn single_category_weighted() {
        let mut rng = SimRng::seed_from(18);
        let w = WeightedIndex::new(&[3.5]).unwrap();
        assert_eq!(w.sample(&mut rng), 0);
        assert_eq!(w.len(), 1);
    }
}
