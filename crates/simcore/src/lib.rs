//! # hpcarbon-sim
//!
//! The stochastic simulation substrate shared by the grid simulator, the
//! workload models and the carbon-aware scheduler:
//!
//! - [`rng`]: deterministic, forkable random streams ([`rng::SimRng`]) so
//!   every experiment in the workspace is reproducible from a single seed,
//!   and parallel runs produce bit-identical results to sequential ones.
//! - [`dist`]: sampling distributions implemented from first principles on
//!   top of `rand`'s uniform source (Box–Muller normal, lognormal,
//!   exponential, Poisson, alias-method weighted discrete), since the
//!   offline dependency set intentionally excludes `rand_distr`.
//! - [`process`]: mean-reverting Ornstein–Uhlenbeck and AR(1) processes used
//!   to synthesize wind/solar availability and demand noise in the grid
//!   simulator.
//! - [`des`]: a binary-heap discrete-event engine driving the carbon-aware
//!   job scheduler simulation.
//! - [`par`]: structured data-parallel helpers (`par_map`) over crossbeam
//!   scoped threads, with deterministic chunk seeding.
//!
//! # Example
//!
//! ```
//! use hpcarbon_sim::rng::SimRng;
//! use hpcarbon_sim::dist::Normal;
//!
//! let mut rng = SimRng::seed_from(42);
//! let normal = Normal::new(0.0, 1.0).unwrap();
//! let xs: Vec<f64> = (0..1000).map(|_| normal.sample(&mut rng)).collect();
//! let mean = xs.iter().sum::<f64>() / xs.len() as f64;
//! assert!(mean.abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod dist;
pub mod par;
pub mod process;
pub mod rng;
