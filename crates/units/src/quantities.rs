//! Concrete quantity types and their physically meaningful cross-operations.

use core::fmt;

quantity!(
    /// A mass of CO₂-equivalent emissions. Stored in grams (gCO₂e).
    ///
    /// The paper reports embodied carbon in gCO₂/kgCO₂ (Eqs. 2–5) and
    /// operational carbon via Eq. 6.
    CarbonMass,
    "gCO2"
);

quantity!(
    /// Electrical energy. Stored in kilowatt-hours (kWh), the unit used by
    /// the paper's Eq. 6.
    Energy,
    "kWh"
);

quantity!(
    /// Instantaneous electrical power. Stored in watts.
    Power,
    "W"
);

quantity!(
    /// Grid carbon intensity: emissions per unit of energy produced.
    /// Stored in gCO₂/kWh, the unit of the paper's `I_sys`.
    CarbonIntensity,
    "gCO2/kWh"
);

quantity!(
    /// A span of time. Stored in hours (the resolution of the paper's grid
    /// traces and the natural unit for kWh arithmetic).
    TimeSpan,
    "h"
);

quantity!(
    /// Silicon die area. Stored in mm² (the unit die areas are reported in
    /// by vendors); fab densities are per cm², conversions are handled by
    /// the cross-ops.
    SiliconArea,
    "mm2"
);

quantity!(
    /// Fab carbon emitted per unit wafer area (the paper's FPA, GPA and MPA
    /// terms of Eq. 3). Stored in gCO₂/cm².
    CarbonAreaDensity,
    "gCO2/cm2"
);

quantity!(
    /// Data capacity of a memory or storage device. Stored in GB
    /// (decimal, 10⁹ bytes, matching vendor capacity marketing and the
    /// paper's EPC units).
    DataCapacity,
    "GB"
);

quantity!(
    /// Manufacturing emissions per unit capacity (the paper's EPC term of
    /// Eq. 4). Stored in gCO₂/GB.
    CarbonPerCapacity,
    "gCO2/GB"
);

quantity!(
    /// Sustained data bandwidth. Stored in GB/s (Fig. 2's normalization
    /// basis).
    Bandwidth,
    "GB/s"
);

quantity!(
    /// Floating-point compute rate. Stored in GFLOPS; the paper normalizes
    /// Fig. 1 by theoretical FP64 TFLOPS.
    ComputeRate,
    "GFLOPS"
);

// ---------------------------------------------------------------------------
// Constructors / accessors
// ---------------------------------------------------------------------------

impl CarbonMass {
    /// From grams of CO₂e.
    #[inline]
    pub const fn from_g(g: f64) -> Self {
        Self(g)
    }
    /// From kilograms of CO₂e.
    #[inline]
    pub const fn from_kg(kg: f64) -> Self {
        Self(kg * 1e3)
    }
    /// From metric tonnes of CO₂e.
    #[inline]
    pub const fn from_t(t: f64) -> Self {
        Self(t * 1e6)
    }
    /// In grams.
    #[inline]
    pub const fn as_g(self) -> f64 {
        self.0
    }
    /// In kilograms.
    #[inline]
    pub fn as_kg(self) -> f64 {
        self.0 / 1e3
    }
    /// In metric tonnes.
    #[inline]
    pub fn as_t(self) -> f64 {
        self.0 / 1e6
    }
}

impl Energy {
    /// From kilowatt-hours.
    #[inline]
    pub const fn from_kwh(kwh: f64) -> Self {
        Self(kwh)
    }
    /// From watt-hours.
    #[inline]
    pub const fn from_wh(wh: f64) -> Self {
        Self(wh / 1e3)
    }
    /// From megawatt-hours.
    #[inline]
    pub const fn from_mwh(mwh: f64) -> Self {
        Self(mwh * 1e3)
    }
    /// From joules (1 kWh = 3.6 MJ).
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self(j / 3.6e6)
    }
    /// In kilowatt-hours.
    #[inline]
    pub const fn as_kwh(self) -> f64 {
        self.0
    }
    /// In watt-hours.
    #[inline]
    pub fn as_wh(self) -> f64 {
        self.0 * 1e3
    }
    /// In megawatt-hours.
    #[inline]
    pub fn as_mwh(self) -> f64 {
        self.0 / 1e3
    }
    /// In joules.
    #[inline]
    pub fn as_joules(self) -> f64 {
        self.0 * 3.6e6
    }
}

impl Power {
    /// From watts.
    #[inline]
    pub const fn from_w(w: f64) -> Self {
        Self(w)
    }
    /// From kilowatts.
    #[inline]
    pub const fn from_kw(kw: f64) -> Self {
        Self(kw * 1e3)
    }
    /// From megawatts.
    #[inline]
    pub const fn from_mw(mw: f64) -> Self {
        Self(mw * 1e6)
    }
    /// In watts.
    #[inline]
    pub const fn as_w(self) -> f64 {
        self.0
    }
    /// In kilowatts.
    #[inline]
    pub fn as_kw(self) -> f64 {
        self.0 / 1e3
    }
    /// In megawatts.
    #[inline]
    pub fn as_mw(self) -> f64 {
        self.0 / 1e6
    }
}

impl CarbonIntensity {
    /// From gCO₂ per kWh.
    #[inline]
    pub const fn from_g_per_kwh(g: f64) -> Self {
        Self(g)
    }
    /// In gCO₂ per kWh.
    #[inline]
    pub const fn as_g_per_kwh(self) -> f64 {
        self.0
    }
}

impl TimeSpan {
    /// From hours.
    #[inline]
    pub const fn from_hours(h: f64) -> Self {
        Self(h)
    }
    /// From seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Self(s / 3600.0)
    }
    /// From minutes.
    #[inline]
    pub const fn from_minutes(m: f64) -> Self {
        Self(m / 60.0)
    }
    /// From days (24 h).
    #[inline]
    pub const fn from_days(d: f64) -> Self {
        Self(d * 24.0)
    }
    /// From accounting years (365 days = 8760 h; the paper studies the
    /// non-leap year 2021).
    #[inline]
    pub const fn from_years(y: f64) -> Self {
        Self(y * 8760.0)
    }
    /// In hours.
    #[inline]
    pub const fn as_hours(self) -> f64 {
        self.0
    }
    /// In seconds.
    #[inline]
    pub fn as_seconds(self) -> f64 {
        self.0 * 3600.0
    }
    /// In days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 / 24.0
    }
    /// In accounting years.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.0 / 8760.0
    }
}

impl SiliconArea {
    /// From square millimetres.
    #[inline]
    pub const fn from_mm2(mm2: f64) -> Self {
        Self(mm2)
    }
    /// From square centimetres.
    #[inline]
    pub const fn from_cm2(cm2: f64) -> Self {
        Self(cm2 * 100.0)
    }
    /// In square millimetres.
    #[inline]
    pub const fn as_mm2(self) -> f64 {
        self.0
    }
    /// In square centimetres.
    #[inline]
    pub fn as_cm2(self) -> f64 {
        self.0 / 100.0
    }
}

impl CarbonAreaDensity {
    /// From gCO₂ per cm².
    #[inline]
    pub const fn from_g_per_cm2(g: f64) -> Self {
        Self(g)
    }
    /// From kgCO₂ per cm².
    #[inline]
    pub const fn from_kg_per_cm2(kg: f64) -> Self {
        Self(kg * 1e3)
    }
    /// In gCO₂ per cm².
    #[inline]
    pub const fn as_g_per_cm2(self) -> f64 {
        self.0
    }
}

impl DataCapacity {
    /// From gigabytes (decimal).
    #[inline]
    pub const fn from_gb(gb: f64) -> Self {
        Self(gb)
    }
    /// From terabytes (decimal).
    #[inline]
    pub const fn from_tb(tb: f64) -> Self {
        Self(tb * 1e3)
    }
    /// From petabytes (decimal).
    #[inline]
    pub const fn from_pb(pb: f64) -> Self {
        Self(pb * 1e6)
    }
    /// In gigabytes.
    #[inline]
    pub const fn as_gb(self) -> f64 {
        self.0
    }
    /// In terabytes.
    #[inline]
    pub fn as_tb(self) -> f64 {
        self.0 / 1e3
    }
    /// In petabytes.
    #[inline]
    pub fn as_pb(self) -> f64 {
        self.0 / 1e6
    }
}

impl CarbonPerCapacity {
    /// From gCO₂ per GB.
    #[inline]
    pub const fn from_g_per_gb(g: f64) -> Self {
        Self(g)
    }
    /// In gCO₂ per GB.
    #[inline]
    pub const fn as_g_per_gb(self) -> f64 {
        self.0
    }
}

impl Bandwidth {
    /// From GB/s.
    #[inline]
    pub const fn from_gbps(gbps: f64) -> Self {
        Self(gbps)
    }
    /// From MB/s.
    #[inline]
    pub const fn from_mbps(mbps: f64) -> Self {
        Self(mbps / 1e3)
    }
    /// In GB/s.
    #[inline]
    pub const fn as_gbps(self) -> f64 {
        self.0
    }
    /// In MB/s.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 * 1e3
    }
}

impl ComputeRate {
    /// From GFLOPS.
    #[inline]
    pub const fn from_gflops(g: f64) -> Self {
        Self(g)
    }
    /// From TFLOPS.
    #[inline]
    pub const fn from_tflops(t: f64) -> Self {
        Self(t * 1e3)
    }
    /// In GFLOPS.
    #[inline]
    pub const fn as_gflops(self) -> f64 {
        self.0
    }
    /// In TFLOPS.
    #[inline]
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e3
    }
}

// ---------------------------------------------------------------------------
// Cross-dimension operations
// ---------------------------------------------------------------------------

// Eq. 6: I_sys [g/kWh] × E_op [kWh] = C_op [g]. Direct in storage units.
cross_mul!(CarbonIntensity * Energy = CarbonMass);

// Eq. 4: EPC [g/GB] × Capacity [GB] = M_m/s [g]. Direct in storage units.
cross_mul!(CarbonPerCapacity * DataCapacity = CarbonMass);

// Power × time = energy: W × h = Wh = 1e-3 kWh (manual conversion).
impl core::ops::Mul<TimeSpan> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy::from_wh(self.0 * rhs.0)
    }
}

impl core::ops::Mul<Power> for TimeSpan {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl core::ops::Div<TimeSpan> for Energy {
    type Output = Power;
    #[inline]
    fn div(self, rhs: TimeSpan) -> Power {
        Power::from_w(self.as_wh() / rhs.0)
    }
}

impl core::ops::Div<Power> for Energy {
    type Output = TimeSpan;
    #[inline]
    fn div(self, rhs: Power) -> TimeSpan {
        TimeSpan::from_hours(self.as_wh() / rhs.0)
    }
}

// Eq. 3: density [g/cm²] × area [mm²] = mass; 1 mm² = 0.01 cm².
impl core::ops::Mul<SiliconArea> for CarbonAreaDensity {
    type Output = CarbonMass;
    #[inline]
    fn mul(self, rhs: SiliconArea) -> CarbonMass {
        CarbonMass::from_g(self.0 * rhs.as_cm2())
    }
}

impl core::ops::Mul<CarbonAreaDensity> for SiliconArea {
    type Output = CarbonMass;
    #[inline]
    fn mul(self, rhs: CarbonAreaDensity) -> CarbonMass {
        rhs * self
    }
}

// Bandwidth × time = data moved: GB/s × h = GB × 3600.
impl core::ops::Mul<TimeSpan> for Bandwidth {
    type Output = DataCapacity;
    #[inline]
    fn mul(self, rhs: TimeSpan) -> DataCapacity {
        DataCapacity::from_gb(self.0 * rhs.as_seconds())
    }
}

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

impl fmt::Display for CarbonMass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.2} tCO2", self.as_t())
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.2} kgCO2", self.as_kg())
        } else {
            write!(f, "{:.1} gCO2", self.0)
        }
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e3 {
            write!(f, "{:.2} MWh", self.as_mwh())
        } else {
            write!(f, "{:.2} kWh", self.0)
        }
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.2} MW", self.as_mw())
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.2} kW", self.as_kw())
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} gCO2/kWh", self.0)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 8760.0 {
            write!(f, "{:.2} y", self.as_years())
        } else if self.0.abs() >= 48.0 {
            write!(f, "{:.1} d", self.as_days())
        } else {
            write!(f, "{:.2} h", self.0)
        }
    }
}

impl fmt::Display for SiliconArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} mm2", self.0)
    }
}

impl fmt::Display for DataCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.1} PB", self.as_pb())
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.1} TB", self.as_tb())
        } else {
            write!(f, "{:.0} GB", self.0)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.0)
    }
}

impl fmt::Display for ComputeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e3 {
            write!(f, "{:.2} TFLOPS", self.as_tflops())
        } else {
            write!(f, "{:.1} GFLOPS", self.0)
        }
    }
}

impl fmt::Display for CarbonAreaDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} gCO2/cm2", self.0)
    }
}

impl fmt::Display for CarbonPerCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} gCO2/GB", self.0)
    }
}
