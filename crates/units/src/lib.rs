//! # hpcarbon-units
//!
//! Dimension-checked physical quantities for HPC carbon accounting.
//!
//! Carbon accounting mixes many units that are dangerously easy to confuse:
//! grams vs. kilograms vs. tonnes of CO₂e, kWh vs. MWh vs. joules,
//! gCO₂/kWh carbon intensity, gCO₂/cm² fab-emission densities, gCO₂/GB
//! manufacturing densities, GB/s bandwidths and TFLOPS compute rates.
//! This crate wraps each dimension in a newtype over `f64` and only permits
//! physically meaningful arithmetic, so unit bugs become type errors.
//!
//! The canonical internal storage units are chosen to match the units used
//! by the SC'23 paper "Toward Sustainable HPC" (Li et al.):
//!
//! | Quantity          | Storage unit | Paper usage                      |
//! |-------------------|--------------|----------------------------------|
//! | [`CarbonMass`]    | gCO₂e        | embodied / operational carbon    |
//! | [`Energy`]        | kWh          | operational energy (Eq. 6)       |
//! | [`Power`]         | W            | device TDP, node draw            |
//! | [`CarbonIntensity`]| gCO₂/kWh    | regional grid intensity (Eq. 6)  |
//! | [`TimeSpan`]      | hours        | amortization horizons            |
//! | [`SiliconArea`]   | mm²          | die area (Eq. 3)                 |
//! | [`CarbonAreaDensity`]| gCO₂/cm² | FPA/GPA/MPA fab densities (Eq. 3)|
//! | [`DataCapacity`]  | GB           | DRAM/SSD/HDD capacity (Eq. 4)    |
//! | [`CarbonPerCapacity`]| gCO₂/GB  | EPC (Eq. 4)                      |
//! | [`Bandwidth`]     | GB/s         | Fig. 2 normalization             |
//! | [`ComputeRate`]   | GFLOPS       | Fig. 1 normalization             |
//!
//! # Example
//!
//! ```
//! use hpcarbon_units::*;
//!
//! // Eq. 6 of the paper: C_op = I_sys * E_op
//! let intensity = CarbonIntensity::from_g_per_kwh(200.0);
//! let energy = Energy::from_kwh(1_000.0);
//! let op_carbon: CarbonMass = intensity * energy;
//! assert_eq!(op_carbon.as_kg(), 200.0);
//!
//! // Power integrated over time is energy.
//! let node = Power::from_kw(1.5);
//! let year = TimeSpan::from_years(1.0);
//! let annual: Energy = node * year;
//! assert!((annual.as_mwh() - 13.14).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frac;
#[macro_use]
mod macros;
mod quantities;

pub use frac::Fraction;
pub use quantities::*;

/// Hours in the accounting year used throughout the workspace.
///
/// The paper analyzes hourly traces for the year 2021 (a non-leap year),
/// i.e. 365 days × 24 h = 8760 hours.
pub const HOURS_PER_YEAR: f64 = 8760.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_operational_carbon() {
        // The README example of the paper's Eq. 6.
        let i = CarbonIntensity::from_g_per_kwh(450.0);
        let e = Energy::from_kwh(2.0);
        assert_eq!((i * e).as_g(), 900.0);
        // Commutative form.
        assert_eq!((e * i).as_g(), 900.0);
    }

    #[test]
    fn power_time_energy_roundtrip() {
        let p = Power::from_w(250.0);
        let t = TimeSpan::from_hours(4.0);
        let e = p * t;
        assert!((e.as_kwh() - 1.0).abs() < 1e-12);
        // Energy / time = power, energy / power = time.
        assert!(((e / t).as_w() - 250.0).abs() < 1e-9);
        assert!(((e / p).as_hours() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn carbon_mass_unit_conversions() {
        let m = CarbonMass::from_t(1.0);
        assert_eq!(m.as_kg(), 1000.0);
        assert_eq!(m.as_g(), 1_000_000.0);
        assert_eq!(CarbonMass::from_kg(2.5).as_g(), 2500.0);
    }

    #[test]
    fn energy_unit_conversions() {
        assert_eq!(Energy::from_mwh(1.0).as_kwh(), 1000.0);
        assert_eq!(Energy::from_wh(500.0).as_kwh(), 0.5);
        // 1 kWh = 3.6e6 J
        assert!((Energy::from_joules(3.6e6).as_kwh() - 1.0).abs() < 1e-12);
        assert!((Energy::from_kwh(1.0).as_joules() - 3.6e6).abs() < 1e-6);
    }

    #[test]
    fn area_density_times_area_is_mass() {
        // Eq. 3 shape: (FPA + GPA + MPA) * A_die / yield
        let density = CarbonAreaDensity::from_g_per_cm2(2000.0);
        let area = SiliconArea::from_mm2(826.0); // A100 die
        let mass = density * area;
        assert!((mass.as_kg() - 16.52).abs() < 1e-9);
    }

    #[test]
    fn capacity_density_times_capacity_is_mass() {
        // Eq. 4 shape: EPC * Capacity
        let epc = CarbonPerCapacity::from_g_per_gb(65.0);
        let cap = DataCapacity::from_gb(64.0);
        assert_eq!((epc * cap).as_kg(), 4.16);
    }

    #[test]
    fn per_performance_normalization() {
        // Fig. 1(b) shape: kgCO2 per TFLOPS.
        let m = CarbonMass::from_kg(22.0);
        let perf = ComputeRate::from_tflops(9.7);
        let per_tf = m.as_kg() / perf.as_tflops();
        assert!((per_tf - 2.268).abs() < 1e-3);
    }

    #[test]
    fn timespan_conversions() {
        assert_eq!(TimeSpan::from_days(2.0).as_hours(), 48.0);
        assert_eq!(TimeSpan::from_years(1.0).as_hours(), HOURS_PER_YEAR);
        assert!((TimeSpan::from_seconds(7200.0).as_hours() - 2.0).abs() < 1e-12);
        assert!((TimeSpan::from_hours(8760.0).as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_sum() {
        let a = CarbonMass::from_g(1.0);
        let b = CarbonMass::from_g(2.0);
        assert!(a < b);
        let total: CarbonMass = [a, b, b].into_iter().sum();
        assert_eq!(total.as_g(), 5.0);
    }

    #[test]
    fn scalar_ops() {
        let e = Energy::from_kwh(10.0);
        assert_eq!((e * 2.0).as_kwh(), 20.0);
        assert_eq!((e / 4.0).as_kwh(), 2.5);
        assert_eq!(e / Energy::from_kwh(2.5), 4.0);
        let mut acc = Energy::ZERO;
        acc += e;
        acc -= Energy::from_kwh(3.0);
        assert_eq!(acc.as_kwh(), 7.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", CarbonMass::from_kg(12.5)), "12.50 kgCO2");
        assert_eq!(format!("{}", Energy::from_kwh(3.25)), "3.25 kWh");
        assert_eq!(format!("{}", Power::from_w(250.0)), "250.0 W");
        assert_eq!(
            format!("{}", CarbonIntensity::from_g_per_kwh(199.5)),
            "199.5 gCO2/kWh"
        );
    }

    #[test]
    fn bandwidth_and_compute_rate() {
        let bw = Bandwidth::from_gbps(1600.0);
        assert_eq!(bw.as_gbps(), 1600.0);
        let cr = ComputeRate::from_gflops(9700.0);
        assert_eq!(cr.as_tflops(), 9.7);
        assert_eq!(ComputeRate::from_tflops(47.9).as_gflops(), 47900.0);
    }

    #[test]
    fn intensity_from_energy_and_mass() {
        // Reverse derivation: observed gCO2 over observed kWh.
        let m = CarbonMass::from_g(500.0);
        let e = Energy::from_kwh(2.0);
        let i = m / e;
        assert_eq!(i.as_g_per_kwh(), 250.0);
    }
}
