//! A checked fraction in `[0, 1]` for yields, utilizations and shares.

use core::fmt;

/// A dimensionless fraction guaranteed to lie in `[0.0, 1.0]`.
///
/// Used for fab yield (the paper fixes it at 0.875), GPU usage rates
/// (RQ8's low/medium/high usage), packaging-to-manufacturing ratios and
/// composition shares. Constructing an out-of-range or non-finite value is
/// an error, which catches percentage-vs-fraction bugs (e.g. passing `40.0`
/// where `0.40` was meant).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Fraction(f64);

impl Fraction {
    /// Zero.
    pub const ZERO: Fraction = Fraction(0.0);
    /// One.
    pub const ONE: Fraction = Fraction(1.0);
    /// One half.
    pub const HALF: Fraction = Fraction(0.5);

    /// Creates a fraction, returning `None` when `v` is outside `[0, 1]`
    /// or not finite.
    #[inline]
    pub fn new(v: f64) -> Option<Fraction> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Some(Fraction(v))
        } else {
            None
        }
    }

    /// Creates a fraction, panicking on invalid input. Intended for
    /// compile-time-known constants.
    ///
    /// # Panics
    /// If `v` is outside `[0, 1]` or not finite.
    #[inline]
    pub fn new_unchecked(v: f64) -> Fraction {
        // lint: allow(panic-in-library) -- documented panicking constructor for compile-time-known constants; the fallible form is `Fraction::new`
        Self::new(v).unwrap_or_else(|| panic!("fraction out of range: {v}"))
    }

    /// Creates a fraction from a percentage in `[0, 100]`.
    #[inline]
    pub fn from_percent(p: f64) -> Option<Fraction> {
        Self::new(p / 100.0)
    }

    /// Clamps an arbitrary finite value into `[0, 1]`; NaN becomes 0.
    /// Negative zero is normalized to positive zero so downstream
    /// formatting never prints `-0.0`.
    #[inline]
    pub fn saturating(v: f64) -> Fraction {
        if v.is_nan() {
            Fraction(0.0)
        } else {
            // `x + 0.0` maps -0.0 to +0.0 and leaves every other value.
            Fraction(v.clamp(0.0, 1.0) + 0.0)
        }
    }

    /// The raw value in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// As a percentage in `[0, 100]`.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complement `1 - self`.
    #[inline]
    pub fn complement(self) -> Fraction {
        Fraction(1.0 - self.0)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

impl core::ops::Mul<f64> for Fraction {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::ops::Mul<Fraction> for f64 {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Fraction) -> f64 {
        self * rhs.0
    }
}

impl core::ops::Mul<Fraction> for Fraction {
    type Output = Fraction;
    #[inline]
    fn mul(self, rhs: Fraction) -> Fraction {
        Fraction(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Fraction::new(0.0).is_some());
        assert!(Fraction::new(1.0).is_some());
        assert!(Fraction::new(0.875).is_some());
        assert!(Fraction::new(-0.01).is_none());
        assert!(Fraction::new(1.01).is_none());
        assert!(Fraction::new(f64::NAN).is_none());
        assert!(Fraction::new(f64::INFINITY).is_none());
    }

    #[test]
    fn percent_roundtrip() {
        let f = Fraction::from_percent(42.0).unwrap();
        assert!((f.value() - 0.42).abs() < 1e-12);
        assert!((f.percent() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Fraction::saturating(2.0).value(), 1.0);
        assert_eq!(Fraction::saturating(-1.0).value(), 0.0);
        assert_eq!(Fraction::saturating(f64::NAN).value(), 0.0);
    }

    #[test]
    fn complement_and_product() {
        let y = Fraction::new_unchecked(0.875);
        assert!((y.complement().value() - 0.125).abs() < 1e-12);
        let half_of = y * Fraction::HALF;
        assert!((half_of.value() - 0.4375).abs() < 1e-12);
        assert_eq!(y * 8.0, 7.0);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn unchecked_panics() {
        let _ = Fraction::new_unchecked(1.5);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Fraction::new_unchecked(0.405)), "40.5%");
    }
}
