//! Macro that generates a dimension-checked quantity newtype.
//!
//! Each quantity supports:
//! - `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign` with itself
//! - `Mul<f64>` / `Div<f64>` scaling (both orders for `Mul`)
//! - `Div<Self> -> f64` (dimensionless ratio)
//! - `Sum`, `PartialOrd`, `total ordering helpers` (`min`/`max`/`clamp_min_zero`)
//! - `ZERO` constant, `is_finite`, `abs`

/// Defines a quantity newtype stored as `f64` in `$unit` with doc `$doc`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub(crate) f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw value in the canonical storage unit.
            #[inline]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// True when the underlying value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise minimum (NaN-propagating like `f64::min` is not;
            /// this uses `f64::min` semantics).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Elementwise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamp negative values to zero. Useful when a model subtracts
            /// quantities that are physically non-negative.
            #[inline]
            pub fn clamp_min_zero(self) -> Self {
                Self(self.0.max(0.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// Implements `A * B = C` (and `B * A = C`) for quantities whose raw storage
/// units multiply directly (e.g. gCO₂/kWh × kWh = gCO₂).
macro_rules! cross_mul {
    ($a:ident * $b:ident = $c:ident) => {
        impl core::ops::Mul<$b> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $b) -> $c {
                $c(self.0 * rhs.0)
            }
        }

        impl core::ops::Mul<$a> for $b {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                $c(self.0 * rhs.0)
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $a) -> $b {
                $b(self.0 / rhs.0)
            }
        }

        impl core::ops::Div<$b> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $b) -> $a {
                $a(self.0 / rhs.0)
            }
        }
    };
}
