//! Property-based tests for the quantity algebra.

use hpcarbon_units::*;
use proptest::prelude::*;

fn finite_pos() -> impl Strategy<Value = f64> {
    // Positive magnitudes in a range wide enough to exercise conversions
    // without hitting float saturation.
    1e-6..1e12f64
}

proptest! {
    #[test]
    fn carbon_mass_conversion_roundtrips(g in finite_pos()) {
        let m = CarbonMass::from_g(g);
        prop_assert!((CarbonMass::from_kg(m.as_kg()).as_g() - g).abs() <= g * 1e-12);
        prop_assert!((CarbonMass::from_t(m.as_t()).as_g() - g).abs() <= g * 1e-12);
    }

    #[test]
    fn energy_conversion_roundtrips(kwh in finite_pos()) {
        let e = Energy::from_kwh(kwh);
        prop_assert!((Energy::from_joules(e.as_joules()).as_kwh() - kwh).abs() <= kwh * 1e-12);
        prop_assert!((Energy::from_mwh(e.as_mwh()).as_kwh() - kwh).abs() <= kwh * 1e-12);
        prop_assert!((Energy::from_wh(e.as_wh()).as_kwh() - kwh).abs() <= kwh * 1e-12);
    }

    #[test]
    fn addition_commutes(a in finite_pos(), b in finite_pos()) {
        let x = CarbonMass::from_g(a);
        let y = CarbonMass::from_g(b);
        prop_assert_eq!((x + y).as_g(), (y + x).as_g());
    }

    #[test]
    fn eq6_is_linear_in_energy(i in 1.0..1000.0f64, e in finite_pos(), k in 1e-3..1e3f64) {
        let intensity = CarbonIntensity::from_g_per_kwh(i);
        let energy = Energy::from_kwh(e);
        let scaled = intensity * (energy * k);
        let direct = (intensity * energy) * k;
        let rel = (scaled.as_g() - direct.as_g()).abs() / direct.as_g().max(1e-30);
        prop_assert!(rel < 1e-12);
    }

    #[test]
    fn power_time_division_inverts(w in 1.0..1e7f64, h in 1e-3..1e6f64) {
        let p = Power::from_w(w);
        let t = TimeSpan::from_hours(h);
        let e = p * t;
        prop_assert!(((e / t).as_w() - w).abs() <= w * 1e-9);
        prop_assert!(((e / p).as_hours() - h).abs() <= h * 1e-9);
    }

    #[test]
    fn ratio_of_equal_quantities_is_one(v in finite_pos()) {
        let a = Energy::from_kwh(v);
        prop_assert!((a / a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_density_linear_in_area(d in 1.0..1e5f64, mm2 in 1.0..1e5f64) {
        let dens = CarbonAreaDensity::from_g_per_cm2(d);
        let one = dens * SiliconArea::from_mm2(mm2);
        let double = dens * SiliconArea::from_mm2(2.0 * mm2);
        prop_assert!((double.as_g() - 2.0 * one.as_g()).abs() <= one.as_g() * 1e-9);
    }

    #[test]
    fn fraction_complement_involutes(v in 0.0..=1.0f64) {
        let f = Fraction::new(v).unwrap();
        prop_assert!((f.complement().complement().value() - v).abs() < 1e-15);
    }

    #[test]
    fn fraction_saturating_is_identity_inside_range(v in 0.0..=1.0f64) {
        prop_assert_eq!(Fraction::saturating(v).value(), v);
    }

    #[test]
    fn min_max_consistent(a in finite_pos(), b in finite_pos()) {
        let x = Power::from_w(a);
        let y = Power::from_w(b);
        prop_assert_eq!(x.min(y).as_w() , a.min(b));
        prop_assert_eq!(x.max(y).as_w() , a.max(b));
        prop_assert!(x.min(y) <= x.max(y));
    }
}
