//! Property tests for the workload performance/power models.

use hpcarbon_units::Fraction;
use hpcarbon_workloads::benchmarks::{Suite, ALL_BENCHMARKS};
use hpcarbon_workloads::gpus::GpuModel;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf::{
    comm_time, geomean, improvement_percent, node_throughput, sample_time, suite_scaling,
};
use hpcarbon_workloads::power::{node_average_power, node_idle_power};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = NodeGen> {
    prop_oneof![
        Just(NodeGen::P100Node),
        Just(NodeGen::V100Node),
        Just(NodeGen::A100Node),
    ]
}

fn any_suite() -> impl Strategy<Value = Suite> {
    prop_oneof![Just(Suite::Nlp), Just(Suite::Vision), Just(Suite::Candle)]
}

proptest! {
    /// Per-benchmark, adding GPUs keeps throughput within [0.5x, n x] of a
    /// single GPU. Strict monotonicity does NOT hold: tiny models (e.g.
    /// ShuffleNetV2) can lose throughput at 2 GPUs because the allreduce
    /// latency exceeds their step time — a real data-parallel pathology
    /// the model reproduces. Suite-level scaling, which Fig. 4 plots, is
    /// monotone.
    #[test]
    fn throughput_bounded_per_benchmark(node in any_node(), bi in 0usize..15) {
        let b = &ALL_BENCHMARKS[bi];
        let t1 = node_throughput(b, node, 1);
        for n in 2..=4u32 {
            let t = node_throughput(b, node, n);
            prop_assert!(t > t1 * 0.5, "{} at {n} GPUs collapsed: {t}", b.name);
            prop_assert!(t < t1 * f64::from(n) + 1e-9, "{} superlinear", b.name);
        }
    }

    /// Suite-average scaling (the Fig. 4 quantity) is monotone in GPUs.
    #[test]
    fn suite_scaling_monotone(node in any_node(), suite in any_suite()) {
        let s2 = suite_scaling(suite, node, 2);
        let s4 = suite_scaling(suite, node, 4);
        prop_assert!(s2 > 1.0, "{suite:?}@{node:?}: s2={s2}");
        prop_assert!(s4 > s2, "{suite:?}@{node:?}: s4={s4} <= s2={s2}");
    }

    /// Communication time is monotone in GPU count and zero at one GPU.
    #[test]
    fn comm_monotone(node in any_node(), bi in 0usize..15) {
        let b = &ALL_BENCHMARKS[bi];
        prop_assert_eq!(comm_time(b, node, 1), 0.0);
        let mut last = 0.0;
        for n in 2..=8u32 {
            let c = comm_time(b, node, n);
            prop_assert!(c > last);
            last = c;
        }
    }

    /// Suite scaling lies strictly between 1 and n for n > 1.
    #[test]
    fn scaling_bracket(node in any_node(), suite in any_suite(), n in 2u32..=4) {
        let s = suite_scaling(suite, node, n);
        prop_assert!(s > 1.0 && s < f64::from(n), "{suite:?}@{node:?} x{n}: {s}");
    }

    /// Sample times scale inversely with MFU: a hypothetical doubling of
    /// achievable fraction cannot be beaten by any same-precision change.
    #[test]
    fn sample_time_positive_and_finite(bi in 0usize..15) {
        let b = &ALL_BENCHMARKS[bi];
        for gpu in GpuModel::ALL {
            let t = sample_time(b, gpu);
            prop_assert!(t.is_finite() && t > 0.0);
            // Physical floor: cannot beat the pure-memory roofline term.
            let mem_floor = b.bytes_per_sample_gb / gpu.spec().mem_bw.as_gbps();
            prop_assert!(t >= mem_floor);
        }
    }

    /// Improvement percent is the exact inverse of speedup.
    #[test]
    fn improvement_speedup_roundtrip(s in 1.001..100.0f64) {
        let imp = improvement_percent(s);
        prop_assert!((1.0 / (1.0 - imp / 100.0) - s).abs() < 1e-9);
        prop_assert!(imp > 0.0 && imp < 100.0);
    }

    /// Geomean is bounded by min and max and scale-equivariant.
    #[test]
    fn geomean_properties(xs in proptest::collection::vec(0.01..100.0f64, 1..10), k in 0.1..10.0f64) {
        let g = geomean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(g >= min - 1e-12 && g <= max + 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((geomean(&scaled) - g * k).abs() < g * k * 1e-9);
    }

    /// Node average power interpolates monotonically in usage and stays
    /// between idle and active.
    #[test]
    fn power_interpolation(node in any_node(), suite in any_suite(), u in 0.0..=1.0f64) {
        let p = node_average_power(node, suite, Fraction::new_unchecked(u));
        let idle = node_idle_power(node);
        let active = node_average_power(node, suite, Fraction::ONE);
        prop_assert!(p >= idle - hpcarbon_units::Power::from_w(1e-9));
        prop_assert!(p <= active + hpcarbon_units::Power::from_w(1e-9));
    }

    /// Embodied with GPUs is strictly increasing and affine in count.
    #[test]
    fn embodied_affine_in_gpu_count(node in any_node(), n in 1u32..=8) {
        let e0 = node.embodied_with_gpus(0).total().as_kg();
        let e1 = node.embodied_with_gpus(1).total().as_kg();
        let en = node.embodied_with_gpus(n).total().as_kg();
        let per_gpu = e1 - e0;
        prop_assert!(per_gpu > 0.0);
        prop_assert!((en - (e0 + per_gpu * f64::from(n))).abs() < 1e-9);
    }
}
