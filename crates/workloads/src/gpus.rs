//! GPU generations and their datasheet figures.

use hpcarbon_core::db::PartId;
use hpcarbon_units::{Bandwidth, ComputeRate, Power};

/// The GPU generations appearing in the paper (Tables 1 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    /// NVIDIA Tesla P100 PCIe 16 GB (Pascal).
    P100,
    /// NVIDIA V100 SXM2 32 GB (Volta).
    V100,
    /// NVIDIA A100 PCIe 40 GB (Ampere).
    A100,
    /// AMD Instinct MI250X (CDNA2).
    Mi250x,
}

/// Datasheet figures used by the roofline model.
#[derive(Debug, Clone, Copy)]
pub struct GpuSpec {
    /// The embodied-model part this GPU corresponds to.
    pub part: PartId,
    /// Marketing name.
    pub name: &'static str,
    /// Peak FP32 rate.
    pub fp32_peak: ComputeRate,
    /// Peak mixed-precision tensor/matrix rate, when the architecture has
    /// tensor cores (None for Pascal — DL runs on the FP32 path).
    pub tensor_peak: Option<ComputeRate>,
    /// HBM bandwidth.
    pub mem_bw: Bandwidth,
    /// Board power limit.
    pub tdp: Power,
    /// Idle draw.
    pub idle: Power,
}

impl GpuModel {
    /// All models, oldest first.
    pub const ALL: [GpuModel; 4] = [
        GpuModel::P100,
        GpuModel::V100,
        GpuModel::A100,
        GpuModel::Mi250x,
    ];

    /// The spec table.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::P100 => GpuSpec {
                part: PartId::GpuP100Pcie16,
                name: "NVIDIA Tesla P100 PCIe",
                fp32_peak: ComputeRate::from_tflops(9.3),
                tensor_peak: None,
                mem_bw: Bandwidth::from_gbps(732.0),
                tdp: Power::from_w(250.0),
                idle: Power::from_w(30.0),
            },
            GpuModel::V100 => GpuSpec {
                part: PartId::GpuV100Sxm2_32,
                name: "NVIDIA V100 SXM2",
                fp32_peak: ComputeRate::from_tflops(15.7),
                // 125 TF boost-clock tensor peak, ~112 TF at sustained clocks.
                tensor_peak: Some(ComputeRate::from_tflops(112.0)),
                mem_bw: Bandwidth::from_gbps(900.0),
                tdp: Power::from_w(300.0),
                idle: Power::from_w(40.0),
            },
            GpuModel::A100 => GpuSpec {
                part: PartId::GpuA100Pcie40,
                name: "NVIDIA A100 PCIe",
                fp32_peak: ComputeRate::from_tflops(19.5),
                // 312 TF boost tensor peak; PCIe power limit sustains ~280.
                tensor_peak: Some(ComputeRate::from_tflops(280.0)),
                mem_bw: Bandwidth::from_gbps(1555.0),
                tdp: Power::from_w(250.0),
                idle: Power::from_w(55.0),
            },
            GpuModel::Mi250x => GpuSpec {
                part: PartId::GpuMi250x,
                name: "AMD Instinct MI250X",
                fp32_peak: ComputeRate::from_tflops(47.9),
                tensor_peak: Some(ComputeRate::from_tflops(383.0)),
                mem_bw: Bandwidth::from_gbps(3277.0),
                tdp: Power::from_w(560.0),
                idle: Power::from_w(90.0),
            },
        }
    }

    /// The effective dense-math peak for DL training: the tensor path when
    /// available, the FP32 path otherwise.
    pub fn dl_peak(self) -> ComputeRate {
        let s = self.spec();
        s.tensor_peak.unwrap_or(s.fp32_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_get_faster() {
        let order = [GpuModel::P100, GpuModel::V100, GpuModel::A100];
        for w in order.windows(2) {
            assert!(w[0].dl_peak() < w[1].dl_peak());
            assert!(w[0].spec().mem_bw < w[1].spec().mem_bw);
        }
    }

    #[test]
    fn p100_has_no_tensor_cores() {
        assert!(GpuModel::P100.spec().tensor_peak.is_none());
        assert_eq!(GpuModel::P100.dl_peak().as_tflops(), 9.3);
        assert_eq!(GpuModel::V100.dl_peak().as_tflops(), 112.0);
    }

    #[test]
    fn specs_link_to_embodied_parts() {
        for g in GpuModel::ALL {
            let part = g.spec().part;
            assert!(part.spec().embodied().total().as_kg() > 5.0);
            assert!(g.spec().idle < g.spec().tdp);
        }
    }

    #[test]
    fn embodied_matches_core_db() {
        use hpcarbon_core::db::PartId;
        assert_eq!(GpuModel::A100.spec().part, PartId::GpuA100Pcie40);
        assert_eq!(GpuModel::Mi250x.spec().part, PartId::GpuMi250x);
    }
}
