//! The paper's Table 4 benchmark suites and per-model cost parameters.
//!
//! Per-sample FLOP counts follow the standard estimates (≈ 6·params·tokens
//! for transformer training, published per-image GFLOPs ×3 for CNN
//! training); parameter counts are the published model sizes. Byte
//! volumes (activation/weight traffic per sample) and the per-suite
//! achievable-fraction (MFU) table are calibration constants chosen so the
//! suite-average speedups land on the paper's Table 6; see EXPERIMENTS.md.

use crate::gpus::GpuModel;

/// The three benchmark sets of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// HuggingFace question-answering fine-tuning (BERT family).
    Nlp,
    /// torchvision image classification.
    Vision,
    /// ANL CANDLE Pilot1 drug-response models.
    Candle,
}

impl Suite {
    /// All suites in Table 4 order.
    pub const ALL: [Suite; 3] = [Suite::Nlp, Suite::Vision, Suite::Candle];

    /// Display label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Nlp => "NLP",
            Suite::Vision => "Vision",
            Suite::Candle => "CANDLE",
        }
    }

    /// Per-GPU mini-batch size, held constant as GPUs are added (the
    /// paper: "kept the batch size per GPU in these benchmarks consistent
    /// as we increase the number of GPUs").
    pub fn batch_size(self) -> u32 {
        match self {
            // Sequence length 384 QA fine-tuning is memory-limited.
            Suite::Nlp => 8,
            Suite::Vision => 32,
            // Tabular drug-response models train with large batches.
            Suite::Candle => 224,
        }
    }

    /// Achievable fraction of the DL-path peak (MFU) on each architecture.
    ///
    /// Calibrated to Table 6. The *pattern* is the physically expected
    /// one: mature FP32 kernels on Pascal run near half of peak, while
    /// tensor-core paths run at a small fraction of their enormous peaks
    /// (and a smaller fraction on A100 than V100, as its peak grew faster
    /// than real kernels did).
    pub fn mfu(self, gpu: GpuModel) -> f64 {
        match (self, gpu) {
            (Suite::Nlp, GpuModel::P100) => 0.55,
            (Suite::Nlp, GpuModel::V100) => 0.082,
            (Suite::Nlp, GpuModel::A100) => 0.0446,
            (Suite::Nlp, GpuModel::Mi250x) => 0.040,
            (Suite::Vision, GpuModel::P100) => 0.45,
            (Suite::Vision, GpuModel::V100) => 0.070,
            (Suite::Vision, GpuModel::A100) => 0.040,
            (Suite::Vision, GpuModel::Mi250x) => 0.036,
            (Suite::Candle, GpuModel::P100) => 0.50,
            (Suite::Candle, GpuModel::V100) => 0.0865,
            (Suite::Candle, GpuModel::A100) => 0.0595,
            (Suite::Candle, GpuModel::Mi250x) => 0.052,
        }
    }

    /// The five benchmarks of this suite (Table 4 rows).
    pub fn benchmarks(self) -> Vec<Benchmark> {
        ALL_BENCHMARKS
            .iter()
            .filter(|b| b.suite == self)
            .cloned()
            .collect()
    }
}

/// One Table 4 model with its cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Model name as in Table 4.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Trainable parameters, millions.
    pub params_m: f64,
    /// Training FLOPs per sample (forward + backward), GFLOP.
    pub train_gflop_per_sample: f64,
    /// HBM traffic per sample, GB (activations + weights + optimizer).
    pub bytes_per_sample_gb: f64,
}

impl Benchmark {
    /// Gradient volume exchanged per data-parallel step (FP32 grads), GB.
    pub fn grad_gb(&self) -> f64 {
        self.params_m * 1e6 * 4.0 / 1e9
    }
}

/// The full Table 4 catalog: 5 NLP + 5 Vision + 5 CANDLE models.
pub const ALL_BENCHMARKS: [Benchmark; 15] = [
    // --- NLP: QA fine-tuning at sequence length 384 -----------------------
    Benchmark {
        name: "BERT",
        suite: Suite::Nlp,
        params_m: 110.0,
        train_gflop_per_sample: 253.0,
        bytes_per_sample_gb: 0.90,
    },
    Benchmark {
        name: "DistilBERT",
        suite: Suite::Nlp,
        params_m: 66.0,
        train_gflop_per_sample: 152.0,
        bytes_per_sample_gb: 0.55,
    },
    Benchmark {
        name: "MPNet",
        suite: Suite::Nlp,
        params_m: 133.0,
        train_gflop_per_sample: 300.0,
        bytes_per_sample_gb: 1.00,
    },
    Benchmark {
        name: "RoBERTa",
        suite: Suite::Nlp,
        params_m: 125.0,
        train_gflop_per_sample: 287.0,
        bytes_per_sample_gb: 1.00,
    },
    Benchmark {
        name: "BART",
        suite: Suite::Nlp,
        params_m: 139.0,
        train_gflop_per_sample: 320.0,
        bytes_per_sample_gb: 1.10,
    },
    // --- Vision: ImageNet-style classification at 224x224 ----------------
    Benchmark {
        name: "ResNet50",
        suite: Suite::Vision,
        params_m: 25.6,
        train_gflop_per_sample: 12.3,
        bytes_per_sample_gb: 0.35,
    },
    Benchmark {
        name: "ResNext50",
        suite: Suite::Vision,
        params_m: 25.0,
        train_gflop_per_sample: 12.8,
        bytes_per_sample_gb: 0.38,
    },
    Benchmark {
        name: "ShuffleNetV2",
        suite: Suite::Vision,
        params_m: 2.3,
        train_gflop_per_sample: 0.44,
        bytes_per_sample_gb: 0.04,
    },
    Benchmark {
        name: "VGG19",
        suite: Suite::Vision,
        params_m: 143.7,
        train_gflop_per_sample: 58.8,
        bytes_per_sample_gb: 0.80,
    },
    Benchmark {
        name: "ViT",
        suite: Suite::Vision,
        params_m: 86.6,
        train_gflop_per_sample: 52.7,
        bytes_per_sample_gb: 0.70,
    },
    // --- CANDLE Pilot1: drug-response MLPs/1-D CNNs -----------------------
    Benchmark {
        name: "Combo",
        suite: Suite::Candle,
        params_m: 4.0,
        train_gflop_per_sample: 0.30,
        bytes_per_sample_gb: 0.013,
    },
    Benchmark {
        name: "NT3",
        suite: Suite::Candle,
        params_m: 1.5,
        train_gflop_per_sample: 0.55,
        bytes_per_sample_gb: 0.010,
    },
    Benchmark {
        name: "P1B1",
        suite: Suite::Candle,
        params_m: 2.5,
        train_gflop_per_sample: 0.12,
        bytes_per_sample_gb: 0.012,
    },
    Benchmark {
        name: "ST1",
        suite: Suite::Candle,
        params_m: 3.0,
        train_gflop_per_sample: 0.25,
        bytes_per_sample_gb: 0.011,
    },
    Benchmark {
        name: "TC1",
        suite: Suite::Candle,
        params_m: 1.2,
        train_gflop_per_sample: 0.40,
        bytes_per_sample_gb: 0.010,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_five_models_per_suite() {
        for suite in Suite::ALL {
            assert_eq!(suite.benchmarks().len(), 5, "{suite:?}");
        }
        assert_eq!(ALL_BENCHMARKS.len(), 15);
    }

    #[test]
    fn table4_names_match_paper() {
        let names: Vec<&str> = Suite::Nlp.benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, ["BERT", "DistilBERT", "MPNet", "RoBERTa", "BART"]);
        let names: Vec<&str> = Suite::Vision.benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            ["ResNet50", "ResNext50", "ShuffleNetV2", "VGG19", "ViT"]
        );
        let names: Vec<&str> = Suite::Candle.benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, ["Combo", "NT3", "P1B1", "ST1", "TC1"]);
    }

    #[test]
    fn parameters_are_positive_and_plausible() {
        for b in &ALL_BENCHMARKS {
            assert!(b.params_m > 0.0, "{}", b.name);
            assert!(b.train_gflop_per_sample > 0.0);
            assert!(b.bytes_per_sample_gb > 0.0);
            // Gradient volume = 4 bytes per parameter.
            assert!((b.grad_gb() - b.params_m * 0.004).abs() < 1e-12);
        }
    }

    #[test]
    fn mfu_pattern_is_physical() {
        for suite in Suite::ALL {
            // FP32 path on P100 achieves a far higher fraction of its
            // (small) peak than tensor paths do of theirs.
            assert!(suite.mfu(GpuModel::P100) > 0.3);
            assert!(suite.mfu(GpuModel::V100) < 0.2);
            // A100 MFU below V100 MFU (peak grew faster than kernels).
            assert!(suite.mfu(GpuModel::A100) < suite.mfu(GpuModel::V100));
        }
    }

    #[test]
    fn batch_sizes_constant_per_suite() {
        assert_eq!(Suite::Nlp.batch_size(), 8);
        assert_eq!(Suite::Vision.batch_size(), 32);
        assert_eq!(Suite::Candle.batch_size(), 224);
    }
}
