//! Node power draw during training and at idle.
//!
//! During GPU training the accelerators run near their power limit while
//! host CPUs sit at input-pipeline utilization; DRAM draw is small and
//! flat. These are the `E_op` inputs of the paper's Eq. 6 for the RQ7/RQ8
//! upgrade study.

use crate::benchmarks::Suite;
use crate::nodes::NodeGen;
use hpcarbon_power::sensor::DevicePowerModel;
use hpcarbon_units::{Energy, Fraction, Power, TimeSpan};

/// GPU utilization while training (fraction of the power-limit draw).
/// Dense training pins accelerators near their limit across all suites.
pub const GPU_TRAIN_UTILIZATION: f64 = 0.90;

/// Host CPU utilization while feeding GPUs (tokenization/augmentation).
pub const CPU_FEED_UTILIZATION: f64 = 0.25;

/// Per-DIMM active power (W); idle is half.
const DRAM_ACTIVE_W: f64 = 4.0;

/// Node power while running a training workload of `suite`.
pub fn node_active_power(node: NodeGen, _suite: Suite) -> Power {
    let c = node.config();
    let gpu = c.gpu.spec();
    let gpu_model = DevicePowerModel::new(gpu.idle, gpu.tdp);
    let gpus = gpu_model.power_at(GPU_TRAIN_UTILIZATION) * f64::from(c.gpu_count);

    let cpu_spec = c.cpus.0.spec();
    let cpu_model = DevicePowerModel::new(
        // lint: allow(panic-in-library) -- table invariant, asserted by the db unit tests: every CPU part row declares idle power
        cpu_spec.idle_power.expect("CPUs declare idle power"),
        // lint: allow(panic-in-library) -- table invariant, asserted by the db unit tests: every CPU part row declares a TDP
        cpu_spec.tdp.expect("CPUs declare TDP"),
    );
    let cpus = cpu_model.power_at(CPU_FEED_UTILIZATION) * f64::from(c.cpus.1);

    let dram = Power::from_w(DRAM_ACTIVE_W) * f64::from(c.dram.1);
    gpus + cpus + dram
}

/// Node power when idle (all devices at idle draw).
pub fn node_idle_power(node: NodeGen) -> Power {
    let c = node.config();
    let gpus = c.gpu.spec().idle * f64::from(c.gpu_count);
    // lint: allow(panic-in-library) -- same CPU table invariant as node_active_power
    let cpus = c.cpus.0.spec().idle_power.expect("CPUs declare idle power") * f64::from(c.cpus.1);
    let dram = Power::from_w(DRAM_ACTIVE_W / 2.0) * f64::from(c.dram.1);
    gpus + cpus + dram
}

/// Average node power under a duty cycle that is busy a fraction `usage`
/// of the time (the RQ8 "GPU usage rate … the percentage of time the GPU
/// is being used").
pub fn node_average_power(node: NodeGen, suite: Suite, usage: Fraction) -> Power {
    node_active_power(node, suite) * usage.value()
        + node_idle_power(node) * usage.complement().value()
}

/// Annual IT energy of a node under a usage duty cycle.
pub fn annual_node_energy(node: NodeGen, suite: Suite, usage: Fraction) -> Energy {
    node_average_power(node, suite, usage) * TimeSpan::from_years(1.0)
}

/// IT energy to process one *unit of work* (one suite-batch worth of
/// samples through the node), old-node-normalized comparisons cancel the
/// unit. Uses single-accelerator throughput ratios consistently with
/// Table 6 (see EXPERIMENTS.md).
pub fn energy_per_throughput_unit(node: NodeGen, suite: Suite) -> f64 {
    // Watts divided by suite-aggregate node throughput (samples/s):
    // J per sample.
    let thpt: f64 = crate::perf::geomean(
        &suite
            .benchmarks()
            .iter()
            .map(|b| crate::perf::node_throughput(b, node, node.config().gpu_count))
            .collect::<Vec<_>>(),
    );
    node_active_power(node, suite).as_w() / thpt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_exceeds_idle() {
        for node in NodeGen::ALL {
            for suite in Suite::ALL {
                assert!(node_active_power(node, suite) > node_idle_power(node));
            }
        }
    }

    #[test]
    fn magnitudes_are_plausible() {
        // 4-GPU nodes draw roughly 1-2 kW active, 150-700 W idle.
        for node in NodeGen::ALL {
            let active = node_active_power(node, Suite::Nlp).as_w();
            let idle = node_idle_power(node).as_w();
            assert!((800.0..2200.0).contains(&active), "{node:?}: {active}");
            assert!((100.0..700.0).contains(&idle), "{node:?}: {idle}");
        }
    }

    #[test]
    fn usage_interpolates_power() {
        let node = NodeGen::V100Node;
        let full = node_average_power(node, Suite::Nlp, Fraction::ONE);
        let zero = node_average_power(node, Suite::Nlp, Fraction::ZERO);
        let half = node_average_power(node, Suite::Nlp, Fraction::HALF);
        assert_eq!(full, node_active_power(node, Suite::Nlp));
        assert_eq!(zero, node_idle_power(node));
        assert!((half.as_w() - (full.as_w() + zero.as_w()) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn annual_energy_at_40_percent_usage() {
        // The paper's medium usage: a V100 node at 40% -> several MWh/yr.
        let e = annual_node_energy(NodeGen::V100Node, Suite::Nlp, Fraction::new_unchecked(0.4));
        assert!(e.as_mwh() > 3.0 && e.as_mwh() < 12.0, "{}", e.as_mwh());
    }

    #[test]
    fn newer_nodes_use_less_energy_per_work() {
        // The premise of RQ7: "newer hardware is typically more energy
        // efficient and hence, results in lower energy consumption".
        for suite in Suite::ALL {
            let p = energy_per_throughput_unit(NodeGen::P100Node, suite);
            let v = energy_per_throughput_unit(NodeGen::V100Node, suite);
            let a = energy_per_throughput_unit(NodeGen::A100Node, suite);
            assert!(p > v, "{suite:?}: p={p} v={v}");
            assert!(v > a, "{suite:?}: v={v} a={a}");
        }
    }
}
