//! # hpcarbon-workloads
//!
//! Deep-learning benchmark workload models — the substitute for the
//! paper's measured runs of the Table 4 suites (HuggingFace NLP,
//! torchvision, ANL CANDLE) on the Table 5 node generations.
//!
//! The model is a calibrated roofline:
//!
//! - per-sample training time = compute term (FLOPs over the achievable
//!   fraction of the precision-path peak) + memory term (bytes over HBM
//!   bandwidth) — [`perf::sample_time`];
//! - multi-GPU scaling adds a data-parallel ring-allreduce term with
//!   per-hop latency and PCIe-switch contention at 4 GPUs
//!   ([`perf::node_throughput`]), reproducing Fig. 4's plateau
//!   ("the performance increase cannot keep up … due to heavier
//!   communication overhead");
//! - node power combines GPU draw at training utilization, host CPUs at
//!   feeding utilization and DRAM ([`power`]).
//!
//! Calibration targets are the paper's own measurements: Table 6's
//! per-suite upgrade improvements (e.g. NLP P100→V100 = 44.4%) and
//! Fig. 4's performance-to-embodied-carbon ratios (≈1.0 at 2 GPUs,
//! 0.88/0.79 at 4 GPUs). `EXPERIMENTS.md` records paper-vs-model values.
//!
//! # Example
//!
//! ```
//! use hpcarbon_workloads::{benchmarks::Suite, nodes::NodeGen, perf};
//!
//! // Table 6, NLP row: P100 -> V100 improvement ≈ 44%.
//! let s = perf::suite_speedup(Suite::Nlp, NodeGen::P100Node, NodeGen::V100Node);
//! let improvement = 100.0 * (1.0 - 1.0 / s);
//! assert!((improvement - 44.4).abs() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod gpus;
pub mod nodes;
pub mod perf;
pub mod power;

pub use benchmarks::{Benchmark, Suite};
pub use gpus::GpuModel;
pub use nodes::NodeGen;
