//! Node generations — the paper's Table 5 test systems.

use crate::gpus::GpuModel;
use hpcarbon_core::db::PartId;
use hpcarbon_core::embodied::EmbodiedBreakdown;

/// The three node generations benchmarked by the paper (Table 5), spanning
/// "NVIDIA's three major datacenter GPU architectures … Pascal, Volta, and
/// Ampere".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeGen {
    /// 4× Tesla P100 PCIe + 2× Xeon E5-2680.
    P100Node,
    /// 4× V100 SXM2 + 2× Xeon Gold 6240R.
    V100Node,
    /// 4× A100 PCIe 40 GB + 4× EPYC 7542.
    A100Node,
}

/// A concrete node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Display name (Table 5's "Name" column).
    pub name: &'static str,
    /// GPU model installed.
    pub gpu: GpuModel,
    /// Number of GPUs.
    pub gpu_count: u32,
    /// CPU part and socket count.
    pub cpus: (PartId, u32),
    /// DRAM part and module count.
    pub dram: (PartId, u32),
    /// Effective gradient-aggregation bandwidth between GPUs (GB/s).
    ///
    /// This is the *achieved* allreduce bandwidth, which on these systems
    /// is limited by host-staged reduction over PCIe rather than raw link
    /// speed — the effect behind Fig. 4's "heavier communication
    /// overhead".
    pub link_gbps: f64,
    /// Per-hop allreduce latency (ms) — launch/synchronization cost that
    /// grows with ring length.
    pub hop_latency_ms: f64,
}

impl NodeGen {
    /// All generations, oldest first (the upgrade ladder of RQ7).
    pub const ALL: [NodeGen; 3] = [NodeGen::P100Node, NodeGen::V100Node, NodeGen::A100Node];

    /// The Table 5 configuration for this generation.
    pub fn config(self) -> NodeConfig {
        match self {
            NodeGen::P100Node => NodeConfig {
                name: "P100",
                gpu: GpuModel::P100,
                gpu_count: 4,
                cpus: (PartId::CpuXeonE5_2680v4, 2),
                dram: (PartId::Dram32gb, 4),
                link_gbps: 3.0,
                hop_latency_ms: 2.0,
            },
            NodeGen::V100Node => NodeConfig {
                name: "V100",
                gpu: GpuModel::V100,
                gpu_count: 4,
                cpus: (PartId::CpuXeonGold6240r, 2),
                dram: (PartId::Dram32gb, 4),
                link_gbps: 4.0,
                hop_latency_ms: 2.0,
            },
            NodeGen::A100Node => NodeConfig {
                name: "A100",
                gpu: GpuModel::A100,
                gpu_count: 4,
                cpus: (PartId::CpuEpyc7542, 4),
                dram: (PartId::Dram64gb, 8),
                link_gbps: 6.0,
                hop_latency_ms: 1.5,
            },
        }
    }

    /// Embodied carbon of the full node (CPUs + GPUs + DRAM), per the
    /// paper's Eq. 2 models. Fig. 4 varies the GPU count; see
    /// [`NodeGen::embodied_with_gpus`].
    pub fn embodied(self) -> EmbodiedBreakdown {
        let c = self.config();
        self.embodied_with_gpus(c.gpu_count)
    }

    /// Node embodied carbon with an explicit GPU count (Fig. 4's 1/2/4
    /// sweep keeps the host fixed and varies GPUs).
    pub fn embodied_with_gpus(self, gpu_count: u32) -> EmbodiedBreakdown {
        let c = self.config();
        let gpus = c
            .gpu
            .spec()
            .part
            .spec()
            .embodied()
            .scaled(f64::from(gpu_count));
        let cpus = c.cpus.0.spec().embodied().scaled(f64::from(c.cpus.1));
        let dram = c.dram.0.spec().embodied().scaled(f64::from(c.dram.1));
        EmbodiedBreakdown::sum([gpus, cpus, dram])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_configs_match_paper() {
        let p = NodeGen::P100Node.config();
        assert_eq!(p.gpu, GpuModel::P100);
        assert_eq!(p.gpu_count, 4);
        assert_eq!(p.cpus, (PartId::CpuXeonE5_2680v4, 2));
        let v = NodeGen::V100Node.config();
        assert_eq!(v.cpus, (PartId::CpuXeonGold6240r, 2));
        let a = NodeGen::A100Node.config();
        // Table 5 lists "4 × AMD EPYC 7542" for the A100 node.
        assert_eq!(a.cpus, (PartId::CpuEpyc7542, 4));
        assert_eq!(a.dram, (PartId::Dram64gb, 8));
    }

    #[test]
    fn newer_nodes_embody_more_carbon() {
        let p = NodeGen::P100Node.embodied().total();
        let v = NodeGen::V100Node.embodied().total();
        let a = NodeGen::A100Node.embodied().total();
        assert!(p < v && v < a, "p={p} v={v} a={a}");
        // Magnitudes: tens to ~200 kg per node.
        assert!(p.as_kg() > 40.0 && a.as_kg() < 250.0);
    }

    #[test]
    fn embodied_scales_linearly_with_gpus() {
        let n = NodeGen::V100Node;
        let e1 = n.embodied_with_gpus(1).total().as_kg();
        let e2 = n.embodied_with_gpus(2).total().as_kg();
        let e4 = n.embodied_with_gpus(4).total().as_kg();
        let gpu = GpuModel::V100.spec().part.spec().embodied().total().as_kg();
        assert!((e2 - e1 - gpu).abs() < 1e-9);
        assert!((e4 - e1 - 3.0 * gpu).abs() < 1e-9);
    }

    #[test]
    fn fig4_embodied_ratios_in_paper_band() {
        // Fig. 4: going 1 -> 2 GPUs raises node embodied carbon by roughly
        // 30-40%; 1 -> 4 roughly doubles it.
        let n = NodeGen::V100Node;
        let e1 = n.embodied_with_gpus(1).total().as_kg();
        let r2 = n.embodied_with_gpus(2).total().as_kg() / e1;
        let r4 = n.embodied_with_gpus(4).total().as_kg() / e1;
        assert!((1.25..=1.45).contains(&r2), "r2={r2}");
        assert!((1.7..=2.1).contains(&r4), "r4={r4}");
    }

    #[test]
    fn link_bandwidth_improves_with_generation() {
        assert!(NodeGen::P100Node.config().link_gbps < NodeGen::V100Node.config().link_gbps);
        assert!(NodeGen::V100Node.config().link_gbps < NodeGen::A100Node.config().link_gbps);
    }
}
