//! The roofline + allreduce performance model.
//!
//! Per-sample time on one GPU (roofline):
//! `t = F / (MFU · peak) + B / bw`
//!
//! Data-parallel step time on `n` GPUs with fixed per-GPU batch `b`:
//! `t_step(n) = b · t + t_comm(n)` with the ring-allreduce cost
//! `t_comm(n) = hop_latency · (n-1) + 2(n-1)/n · G / (L / contention(n))`
//! where `contention(n) = max(1, n/2)` models the shared PCIe switch once
//! more than two GPUs aggregate gradients ("heavier communication
//! overhead between the GPUs" — the paper's Fig. 4 explanation).

use crate::benchmarks::{Benchmark, Suite};
use crate::gpus::GpuModel;
use crate::nodes::NodeGen;

/// Per-sample training time of one benchmark on one GPU, in seconds.
pub fn sample_time(bench: &Benchmark, gpu: GpuModel) -> f64 {
    let mfu = bench.suite.mfu(gpu);
    let peak_gflops = gpu.dl_peak().as_gflops();
    let compute = bench.train_gflop_per_sample / (mfu * peak_gflops);
    let memory = bench.bytes_per_sample_gb / gpu.spec().mem_bw.as_gbps();
    compute + memory
}

/// Single-GPU training throughput, samples/second.
pub fn gpu_throughput(bench: &Benchmark, gpu: GpuModel) -> f64 {
    1.0 / sample_time(bench, gpu)
}

/// Ring-allreduce time for one data-parallel step on a node, seconds.
pub fn comm_time(bench: &Benchmark, node: NodeGen, n_gpus: u32) -> f64 {
    if n_gpus <= 1 {
        return 0.0;
    }
    let c = node.config();
    let n = f64::from(n_gpus);
    let contention = (n / 2.0).max(1.0);
    let latency = c.hop_latency_ms * 1e-3 * (n - 1.0);
    let volume = 2.0 * (n - 1.0) / n * bench.grad_gb() / (c.link_gbps / contention);
    latency + volume
}

/// Node throughput for one benchmark with `n_gpus` active, samples/second.
/// Per-GPU batch size is the suite's fixed batch (Fig. 4's methodology).
pub fn node_throughput(bench: &Benchmark, node: NodeGen, n_gpus: u32) -> f64 {
    assert!(n_gpus >= 1, "need at least one GPU");
    let b = f64::from(bench.suite.batch_size());
    let t_step = b * sample_time(bench, node.config().gpu) + comm_time(bench, node, n_gpus);
    f64::from(n_gpus) * b / t_step
}

/// Geometric mean — the right average for ratios across heterogeneous
/// benchmarks.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|x| *x > 0.0), "geomean needs positive inputs");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Suite-average scaling of node throughput relative to one GPU
/// (Fig. 4's "Performance" line), as the geometric mean over the suite's
/// five models.
pub fn suite_scaling(suite: Suite, node: NodeGen, n_gpus: u32) -> f64 {
    let ratios: Vec<f64> = suite
        .benchmarks()
        .iter()
        .map(|b| node_throughput(b, node, n_gpus) / node_throughput(b, node, 1))
        .collect();
    geomean(&ratios)
}

/// Suite-average single-accelerator speedup from `old` to `new` — the
/// basis of the paper's Table 6 "performance improvement" numbers.
pub fn suite_speedup(suite: Suite, old: NodeGen, new: NodeGen) -> f64 {
    let ratios: Vec<f64> = suite
        .benchmarks()
        .iter()
        .map(|b| gpu_throughput(b, new.config().gpu) / gpu_throughput(b, old.config().gpu))
        .collect();
    geomean(&ratios)
}

/// Table 6: performance improvement in percent, defined as the time
/// reduction `100 · (1 - t_new / t_old) = 100 · (1 - 1/speedup)`.
pub fn improvement_percent(speedup: f64) -> f64 {
    100.0 * (1.0 - 1.0 / speedup)
}

/// One row of Table 6.
#[derive(Debug, Clone, Copy)]
pub struct UpgradeRow {
    /// Source node generation.
    pub from: NodeGen,
    /// Target node generation.
    pub to: NodeGen,
    /// NLP improvement (%).
    pub nlp: f64,
    /// Vision improvement (%).
    pub vision: f64,
    /// CANDLE improvement (%).
    pub candle: f64,
}

impl UpgradeRow {
    /// Table 6's "Average Improv." column.
    pub fn average(&self) -> f64 {
        (self.nlp + self.vision + self.candle) / 3.0
    }
}

/// Regenerates Table 6 (all three upgrade options).
pub fn table6() -> Vec<UpgradeRow> {
    let options = [
        (NodeGen::P100Node, NodeGen::V100Node),
        (NodeGen::P100Node, NodeGen::A100Node),
        (NodeGen::V100Node, NodeGen::A100Node),
    ];
    options
        .iter()
        .map(|(from, to)| UpgradeRow {
            from: *from,
            to: *to,
            nlp: improvement_percent(suite_speedup(Suite::Nlp, *from, *to)),
            vision: improvement_percent(suite_speedup(Suite::Vision, *from, *to)),
            candle: improvement_percent(suite_speedup(Suite::Candle, *from, *to)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_times_are_positive_and_ordered() {
        for b in &crate::benchmarks::ALL_BENCHMARKS {
            let p = sample_time(b, GpuModel::P100);
            let v = sample_time(b, GpuModel::V100);
            let a = sample_time(b, GpuModel::A100);
            assert!(p > 0.0 && v > 0.0 && a > 0.0);
            assert!(p > v && v > a, "{}: {p} {v} {a}", b.name);
        }
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let b = &crate::benchmarks::ALL_BENCHMARKS[0];
        assert_eq!(comm_time(b, NodeGen::V100Node, 1), 0.0);
        assert!(comm_time(b, NodeGen::V100Node, 2) > 0.0);
        assert!(comm_time(b, NodeGen::V100Node, 4) > comm_time(b, NodeGen::V100Node, 2));
    }

    #[test]
    fn contention_kicks_in_beyond_two_gpus() {
        // Per-GPU comm volume scales 2(n-1)/n, but at n=4 the shared
        // switch halves effective bandwidth: comm(4) > 2x comm(2) for
        // bandwidth-dominated benchmarks.
        let bert = &crate::benchmarks::ALL_BENCHMARKS[0];
        let c2 = comm_time(bert, NodeGen::V100Node, 2);
        let c4 = comm_time(bert, NodeGen::V100Node, 4);
        assert!(c4 > 2.0 * c2, "c2={c2} c4={c4}");
    }

    #[test]
    fn scaling_is_sublinear_but_monotone() {
        for suite in Suite::ALL {
            let s1 = suite_scaling(suite, NodeGen::V100Node, 1);
            let s2 = suite_scaling(suite, NodeGen::V100Node, 2);
            let s4 = suite_scaling(suite, NodeGen::V100Node, 4);
            assert!((s1 - 1.0).abs() < 1e-12);
            assert!(s2 > 1.0 && s2 < 2.0, "{suite:?}: s2={s2}");
            assert!(s4 > s2 && s4 < 4.0, "{suite:?}: s4={s4}");
        }
    }

    #[test]
    fn fig4_two_gpu_gain_is_30_to_40_percent() {
        // Paper: "when we increase the number of GPUs to 2, both the
        // embodied carbon and the node performance are increased by
        // approximately 30% to 40%".
        for suite in Suite::ALL {
            let s2 = suite_scaling(suite, NodeGen::V100Node, 2);
            assert!((1.25..=1.45).contains(&s2), "{suite:?}: s2={s2}");
        }
    }

    #[test]
    fn fig4_perf_to_embodied_ratios() {
        // Paper: ratio ≈ 1 at 2 GPUs; ≈ 0.88 at 4 GPUs for NLP/CANDLE and
        // ≈ 0.79 for Vision.
        let node = NodeGen::V100Node;
        let e1 = node.embodied_with_gpus(1).total().as_kg();
        for suite in Suite::ALL {
            let ratio2 =
                suite_scaling(suite, node, 2) / (node.embodied_with_gpus(2).total().as_kg() / e1);
            assert!((0.93..=1.10).contains(&ratio2), "{suite:?}: {ratio2}");
            let ratio4 =
                suite_scaling(suite, node, 4) / (node.embodied_with_gpus(4).total().as_kg() / e1);
            let target = match suite {
                Suite::Vision => 0.79,
                _ => 0.88,
            };
            assert!(
                (ratio4 - target).abs() < 0.06,
                "{suite:?}: ratio4={ratio4} target={target}"
            );
        }
    }

    #[test]
    fn table6_improvements_match_paper() {
        // Paper Table 6 (percent):
        //   P100->V100: NLP 44.4, Vision 41.2, CANDLE 45.5
        //   P100->A100: NLP 59.0, Vision 60.2, CANDLE 68.3
        //   V100->A100: NLP 25.6, Vision 35.8, CANDLE 44.4
        let rows = table6();
        let expect = [(44.4, 41.2, 45.5), (59.0, 60.2, 68.3), (25.6, 35.8, 44.4)];
        for (row, (nlp, vision, candle)) in rows.iter().zip(expect) {
            assert!((row.nlp - nlp).abs() < 4.0, "{row:?} vs NLP {nlp}");
            assert!(
                (row.vision - vision).abs() < 4.0,
                "{row:?} vs Vision {vision}"
            );
            assert!(
                (row.candle - candle).abs() < 4.0,
                "{row:?} vs CANDLE {candle}"
            );
        }
        // Largest gains on the longest jump (P100 -> A100).
        assert!(rows[1].average() > rows[0].average());
        assert!(rows[1].average() > rows[2].average());
        // "the CANDLE benchmark demonstrated greater performance
        // improvements than the other two benchmarks across all three
        // upgrade options."
        for row in &rows {
            assert!(row.candle >= row.nlp, "{row:?}");
            assert!(row.candle >= row.vision - 1.0, "{row:?}");
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive inputs")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
