//! Property tests for datetime arithmetic and statistics.

use hpcarbon_timeseries::datetime::*;
use hpcarbon_timeseries::stats::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn days_since_epoch_roundtrips(days in -1_000_000i64..1_000_000i64) {
        let d = CivilDate::from_days_since_epoch(days);
        prop_assert_eq!(d.days_since_epoch(), days);
    }

    #[test]
    fn plus_days_is_additive(days in -100_000i64..100_000i64, a in -500i64..500i64, b in -500i64..500i64) {
        let d = CivilDate::from_days_since_epoch(days);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
    }

    #[test]
    fn hours_since_epoch_roundtrips(hours in -10_000_000i64..10_000_000i64) {
        let s = HourStamp::from_hours_since_epoch(hours);
        prop_assert_eq!(s.hours_since_epoch(), hours);
        prop_assert!(s.hour() < 24);
    }

    #[test]
    fn day_of_year_in_range(days in -100_000i64..100_000i64) {
        let d = CivilDate::from_days_since_epoch(days);
        let doy = d.day_of_year();
        prop_assert!(doy >= 1);
        prop_assert!(doy <= days_in_year(d.year()));
    }

    #[test]
    fn weekday_cycles_every_seven_days(days in -100_000i64..100_000i64) {
        let d = CivilDate::from_days_since_epoch(days);
        prop_assert_eq!(d.weekday(), d.plus_days(7).weekday());
        prop_assert_ne!(d.weekday(), d.plus_days(1).weekday());
    }

    #[test]
    fn zone_roundtrip_identity(hours in -1_000_000i64..1_000_000i64, off in -12i8..=14i8) {
        let tz = TimeZone::fixed(off, "TST");
        let s = HourStamp::from_hours_since_epoch(hours);
        prop_assert_eq!(tz.to_utc(tz.from_utc(s)), s);
    }

    #[test]
    fn quantile_is_monotone(mut xs in proptest::collection::vec(-1e6..1e6f64, 1..200), q1 in 0.0..=1.0f64, q2 in 0.0..=1.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&xs, lo) <= quantile_sorted(&xs, hi) + 1e-9);
    }

    #[test]
    fn quantile_within_range(xs in proptest::collection::vec(-1e6..1e6f64, 1..200), q in 0.0..=1.0f64) {
        let v = quantile(&xs, q);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn mean_shift_invariance(xs in proptest::collection::vec(-1e3..1e3f64, 2..100), shift in -1e3..1e3f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-6);
        // Variance is shift-invariant.
        prop_assert!((variance(&shifted) - variance(&xs)).abs() < 1e-6);
    }

    #[test]
    fn boxplot_ordering_invariants(xs in proptest::collection::vec(-1e6..1e6f64, 1..300)) {
        let b = BoxplotStats::compute(&xs).unwrap();
        prop_assert!(b.min <= b.whisker_lo + 1e-9);
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
        prop_assert!(b.whisker_hi <= b.max + 1e-9);
        prop_assert!(b.mean >= b.min - 1e-9 && b.mean <= b.max + 1e-9);
    }

    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-10.0..10.0f64, 0..200)) {
        let h = histogram(&xs, -5.0, 5.0, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn pearson_bounded(
        xs in proptest::collection::vec(-1e3..1e3f64, 3..50),
        ys in proptest::collection::vec(-1e3..1e3f64, 3..50),
    ) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        if !r.is_nan() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
