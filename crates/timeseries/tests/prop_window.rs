//! Property tests for the sliding-window index: every indexed answer must
//! agree with the naive `O(n)` scan — bit-exactly on dyadic-valued series
//! (the determinism contract DESIGN.md §7 states), within f64 rounding on
//! arbitrary floats — including wrap-around at the last hour of the year
//! and lowest-start tie-breaking on all-equal plateaus.

use hpcarbon_timeseries::window::{naive, WindowIndex};
use proptest::prelude::*;

/// Series of dyadic rationals (multiples of 1/8 in `[0, 512)`): prefix
/// sums over ≤ 8784 such values are exact in f64, so indexed and naive
/// answers must match bit for bit.
fn dyadic_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..4096u32, 24..600)
        .prop_map(|xs| xs.into_iter().map(|x| f64::from(x) * 0.125).collect())
}

proptest! {
    #[test]
    fn indexed_window_mean_is_exact_on_dyadic_series(
        vs in dyadic_series(),
        start_frac in 0.0..1.0f64,
        w_frac in 0.0..1.0f64,
    ) {
        let n = vs.len() as u32;
        let start = ((f64::from(n) * start_frac) as u32).min(n - 1);
        let w = (((f64::from(n) * w_frac) as u32) + 1).min(n);
        let idx = WindowIndex::new(&vs);
        prop_assert_eq!(idx.window_mean(start, w), naive::window_mean(&vs, start, w));
        let mut direct = 0.0;
        for k in 0..w {
            direct += vs[((start + k) % n) as usize];
        }
        prop_assert_eq!(idx.window_sum(start, w), direct);
    }

    #[test]
    fn indexed_greenest_shift_is_exact_on_dyadic_series(
        vs in dyadic_series(),
        start_frac in 0.0..1.0f64,
        slack in 0u32..200u32,
        w in 1u32..24u32,
    ) {
        let n = vs.len() as u32;
        let start = ((f64::from(n) * start_frac) as u32).min(n - 1);
        let w = w.min(n);
        let idx = WindowIndex::new(&vs);
        prop_assert_eq!(
            idx.greenest_shift(start, slack, w),
            naive::greenest_shift(&vs, start, slack, w)
        );
    }

    #[test]
    fn fixed_window_table_matches_the_linear_scan(
        vs in dyadic_series(),
        w in 1u32..24u32,
        lo_frac in 0.0..1.0f64,
        hi_frac in 0.0..1.0f64,
    ) {
        let n = vs.len() as u32;
        let w = w.min(n);
        let a = ((f64::from(n) * lo_frac) as u32).min(n - 1);
        let b = ((f64::from(n) * hi_frac) as u32).min(n - 1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let idx = WindowIndex::new(&vs);
        let fixed = idx.fixed(w);
        // The scan that defines the answer: lowest sum, lowest start wins.
        let mut best = lo;
        for s in lo..=hi {
            if idx.window_sum(s, w) < idx.window_sum(best, w) {
                best = s;
            }
        }
        prop_assert_eq!(fixed.argmin_in(lo, hi), best);
    }

    #[test]
    fn plateau_ties_resolve_to_the_lowest_start(
        level in 0u32..1000u32,
        n in 24usize..400usize,
        slack in 0u32..300u32,
        w in 1u32..24u32,
    ) {
        // All-equal series: every window has the same mean, so the argmin
        // must be the scan origin (shift 0 / range low end) everywhere.
        let vs = vec![f64::from(level) * 0.25; n];
        let idx = WindowIndex::new(&vs);
        let w = w.min(n as u32);
        prop_assert_eq!(idx.greenest_shift(3 % n as u32, slack, w), 0);
        prop_assert_eq!(naive::greenest_shift(&vs, 3 % n as u32, slack, w), 0);
        let fixed = idx.fixed(w);
        prop_assert_eq!(fixed.argmin_in(0, n as u32 - 1), 0);
    }

    #[test]
    fn wraparound_at_the_last_hour_matches_naive(
        vs in dyadic_series(),
        w in 2u32..48u32,
    ) {
        // Windows anchored at the final index always wrap (w ≥ 2).
        let n = vs.len() as u32;
        let w = w.min(n);
        let last = n - 1;
        let idx = WindowIndex::new(&vs);
        prop_assert_eq!(idx.window_mean(last, w), naive::window_mean(&vs, last, w));
        prop_assert_eq!(
            idx.greenest_shift(last, 30, w),
            naive::greenest_shift(&vs, last, 30, w)
        );
    }

    #[test]
    fn arbitrary_floats_agree_within_rounding(
        vs in proptest::collection::vec(0.0..850.0f64, 24..600),
        start_frac in 0.0..1.0f64,
        w in 1u32..48u32,
    ) {
        let n = vs.len() as u32;
        let start = ((f64::from(n) * start_frac) as u32).min(n - 1);
        let w = w.min(n);
        let idx = WindowIndex::new(&vs);
        let a = idx.window_mean(start, w);
        let b = naive::window_mean(&vs, start, w);
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{} vs {}", a, b);
    }

    #[test]
    fn clamped_argmin_never_leaves_the_year(
        vs in dyadic_series(),
        start_frac in 0.0..1.0f64,
        horizon in 0u32..500u32,
        w in 1u32..48u32,
    ) {
        let n = vs.len() as u32;
        let start = ((f64::from(n) * start_frac) as u32).min(n - 1);
        let w = w.min(n);
        let idx = WindowIndex::new(&vs);
        let best = idx.argmin_window_clamped(start, horizon, w);
        prop_assert!(best >= start || best == start);
        if best + w <= n {
            // A fitting answer must be at least as green as starting now,
            // whenever "now" itself fits.
            if start + w <= n {
                prop_assert!(
                    idx.window_mean(best, w) <= idx.window_mean(start, w)
                );
            }
        }
    }
}
