//! Gregorian civil dates, hour timestamps and fixed-offset time zones.
//!
//! Implements the standard days-from-civil algorithm (Howard Hinnant's
//! `chrono`-compatible formulation) for date arithmetic, plus the small set
//! of operations the carbon analyses need: day-of-year, weekday, hour-of-year
//! indexing into 8760-slot traces, and fixed-offset zone conversion.
//!
//! **Scope note:** zones are *fixed offsets* (no DST tables). The paper's
//! cross-region comparison converts GMT/PST/CST to JST; we document the same
//! simplification — standard offsets year-round — which shifts DST-affected
//! regions by one hour for part of the year without changing any of the
//! paper's qualitative conclusions (Fig. 7's hour-level winner counts are
//! driven by 8–12 h diurnal structure, not 1 h shifts).

use core::fmt;

/// Errors constructing civil dates/times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateError {
    /// Month outside 1..=12.
    BadMonth,
    /// Day outside the valid range for the month.
    BadDay,
    /// Hour outside 0..=23.
    BadHour,
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::BadMonth => write!(f, "month must be in 1..=12"),
            DateError::BadDay => write!(f, "day out of range for month"),
            DateError::BadHour => write!(f, "hour must be in 0..=23"),
        }
    }
}

impl std::error::Error for DateError {}

/// True when `year` is a Gregorian leap year.
pub const fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub const fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Number of days in a year (365 or 366).
pub const fn days_in_year(year: i32) -> u32 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

/// Number of hours in a year (8760 or 8784).
pub const fn hours_in_year(year: i32) -> u32 {
    days_in_year(year) * 24
}

/// Day of week, ISO numbering semantics but as an enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// True for Saturday/Sunday. Grid demand is measurably lower on
    /// weekends, which the grid simulator models.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// From days since 1970-01-01 (a Thursday).
    fn from_days_since_epoch(days: i64) -> Weekday {
        // 1970-01-01 = Thursday = index 3 with Monday = 0.
        let idx = (days + 3).rem_euclid(7);
        match idx {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }
}

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

impl CivilDate {
    /// Creates a date, validating month and day.
    pub fn new(year: i32, month: u8, day: u8) -> Result<CivilDate, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::BadMonth);
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::BadDay);
        }
        Ok(CivilDate { year, month, day })
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year
    }
    /// Month component (1..=12).
    pub fn month(self) -> u8 {
        self.month
    }
    /// Day component (1-based).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (may be negative). Hinnant's days_from_civil.
    pub fn days_since_epoch(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`CivilDate::days_since_epoch`] (civil_from_days).
    pub fn from_days_since_epoch(days: i64) -> CivilDate {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// 1-based ordinal day within the year (1 = Jan 1).
    pub fn day_of_year(self) -> u32 {
        let jan1 = CivilDate {
            year: self.year,
            month: 1,
            day: 1,
        };
        (self.days_since_epoch() - jan1.days_since_epoch() + 1) as u32
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i64) -> CivilDate {
        CivilDate::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// Day of week.
    pub fn weekday(self) -> Weekday {
        Weekday::from_days_since_epoch(self.days_since_epoch())
    }

    /// Meteorological season in the northern hemisphere, used by the grid
    /// simulator's seasonal demand/solar shaping.
    pub fn season(self) -> Season {
        match self.month {
            12 | 1 | 2 => Season::Winter,
            3..=5 => Season::Spring,
            6..=8 => Season::Summer,
            _ => Season::Autumn,
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Northern-hemisphere meteorological season.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Season {
    Winter,
    Spring,
    Summer,
    Autumn,
}

impl Season {
    /// All four seasons, in calendar order starting from winter.
    pub const ALL: [Season; 4] = [
        Season::Winter,
        Season::Spring,
        Season::Summer,
        Season::Autumn,
    ];
}

/// An hour-resolution timestamp in UTC: a civil date plus an hour 0..=23.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HourStamp {
    date: CivilDate,
    hour: u8,
}

impl HourStamp {
    /// Creates a timestamp, validating the hour.
    pub fn new(date: CivilDate, hour: u8) -> Result<HourStamp, DateError> {
        if hour > 23 {
            return Err(DateError::BadHour);
        }
        Ok(HourStamp { date, hour })
    }

    /// The civil date.
    pub fn date(self) -> CivilDate {
        self.date
    }

    /// The hour of day (0..=23).
    pub fn hour(self) -> u8 {
        self.hour
    }

    /// Hours since 1970-01-01T00:00 UTC.
    pub fn hours_since_epoch(self) -> i64 {
        self.date.days_since_epoch() * 24 + i64::from(self.hour)
    }

    /// Inverse of [`HourStamp::hours_since_epoch`].
    pub fn from_hours_since_epoch(hours: i64) -> HourStamp {
        let days = hours.div_euclid(24);
        let hour = hours.rem_euclid(24) as u8;
        HourStamp {
            date: CivilDate::from_days_since_epoch(days),
            hour,
        }
    }

    /// 0-based index of this hour within its own year (0..8760/8784).
    pub fn hour_of_year(self) -> u32 {
        (self.date.day_of_year() - 1) * 24 + u32::from(self.hour)
    }

    /// Builds the stamp for hour-of-year `index` within `year`.
    ///
    /// # Panics
    /// If `index >= hours_in_year(year)`.
    pub fn from_hour_of_year(year: i32, index: u32) -> HourStamp {
        assert!(
            index < hours_in_year(year),
            "hour index {index} out of range for year {year}"
        );
        // lint: allow(panic-in-library) -- January 1 is a valid civil date in every year, so the constructor cannot fail
        let jan1 = CivilDate::new(year, 1, 1).expect("Jan 1 is always valid");
        HourStamp {
            date: jan1.plus_days(i64::from(index / 24)),
            hour: (index % 24) as u8,
        }
    }

    /// The timestamp `n` hours later (or earlier for negative `n`).
    pub fn plus_hours(self, n: i64) -> HourStamp {
        HourStamp::from_hours_since_epoch(self.hours_since_epoch() + n)
    }
}

impl fmt::Display for HourStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}T{:02}:00", self.date, self.hour)
    }
}

/// A fixed-offset time zone.
///
/// The paper's operators span GMT (ESO), PST (CISO), CST (ERCOT/MISO),
/// EST (PJM) and JST (Kansai/Tokyo); Fig. 7 aligns all regions on JST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeZone {
    offset_hours: i8,
    name: &'static str,
}

impl TimeZone {
    /// Coordinated Universal Time.
    pub const UTC: TimeZone = TimeZone {
        offset_hours: 0,
        name: "UTC",
    };
    /// Greenwich Mean Time (UK standard time).
    pub const GMT: TimeZone = TimeZone {
        offset_hours: 0,
        name: "GMT",
    };
    /// Japan Standard Time (UTC+9), the reference frame of Fig. 7.
    pub const JST: TimeZone = TimeZone {
        offset_hours: 9,
        name: "JST",
    };
    /// US Pacific Standard Time (UTC-8) — CISO.
    pub const PST: TimeZone = TimeZone {
        offset_hours: -8,
        name: "PST",
    };
    /// US Central Standard Time (UTC-6) — ERCOT, MISO.
    pub const CST: TimeZone = TimeZone {
        offset_hours: -6,
        name: "CST",
    };
    /// US Eastern Standard Time (UTC-5) — PJM.
    pub const EST: TimeZone = TimeZone {
        offset_hours: -5,
        name: "EST",
    };

    /// Creates a custom fixed offset.
    ///
    /// # Panics
    /// If `offset_hours` is outside `-12..=14`.
    pub const fn fixed(offset_hours: i8, name: &'static str) -> TimeZone {
        assert!(offset_hours >= -12 && offset_hours <= 14);
        TimeZone { offset_hours, name }
    }

    /// The UTC offset in hours.
    pub const fn offset_hours(self) -> i8 {
        self.offset_hours
    }

    /// Short zone name.
    pub const fn name(self) -> &'static str {
        self.name
    }

    /// Converts a UTC timestamp into this zone's local wall-clock stamp.
    pub fn from_utc(self, utc: HourStamp) -> HourStamp {
        utc.plus_hours(i64::from(self.offset_hours))
    }

    /// Converts a local wall-clock stamp in this zone to UTC.
    pub fn to_utc(self, local: HourStamp) -> HourStamp {
        local.plus_hours(-i64::from(self.offset_hours))
    }

    /// Converts a local stamp in this zone directly into another zone.
    pub fn convert(self, local: HourStamp, target: TimeZone) -> HourStamp {
        target.from_utc(self.to_utc(local))
    }
}

impl fmt::Display for TimeZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset_hours == 0 {
            write!(f, "{} (UTC+0)", self.name)
        } else {
            write!(f, "{} (UTC{:+})", self.name, self.offset_hours)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2020));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2021));
        assert!(is_leap_year(2024));
    }

    #[test]
    fn year_lengths() {
        assert_eq!(days_in_year(2021), 365);
        assert_eq!(hours_in_year(2021), 8760);
        assert_eq!(days_in_year(2020), 366);
        assert_eq!(hours_in_year(2020), 8784);
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 4), 30);
        assert_eq!(days_in_month(2021, 12), 31);
    }

    #[test]
    fn date_validation() {
        assert!(CivilDate::new(2021, 2, 29).is_err());
        assert!(CivilDate::new(2020, 2, 29).is_ok());
        assert!(CivilDate::new(2021, 13, 1).is_err());
        assert!(CivilDate::new(2021, 0, 1).is_err());
        assert!(CivilDate::new(2021, 6, 0).is_err());
        assert!(CivilDate::new(2021, 6, 31).is_err());
    }

    #[test]
    fn epoch_roundtrip_across_years() {
        // Every day of 2020-2022 round-trips through days_since_epoch.
        let mut d = CivilDate::new(2020, 1, 1).unwrap();
        for _ in 0..(366 + 365 + 365) {
            let days = d.days_since_epoch();
            assert_eq!(CivilDate::from_days_since_epoch(days), d);
            d = d.plus_days(1);
        }
        assert_eq!(d, CivilDate::new(2023, 1, 1).unwrap());
    }

    #[test]
    fn known_epoch_values() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().days_since_epoch(), 0);
        assert_eq!(CivilDate::new(1970, 1, 2).unwrap().days_since_epoch(), 1);
        assert_eq!(CivilDate::new(1969, 12, 31).unwrap().days_since_epoch(), -1);
        // 2021-01-01 is 18628 days after the epoch.
        assert_eq!(
            CivilDate::new(2021, 1, 1).unwrap().days_since_epoch(),
            18628
        );
    }

    #[test]
    fn weekdays() {
        // Known anchors: 1970-01-01 Thursday, 2021-01-01 Friday,
        // 2021-12-25 Saturday.
        assert_eq!(
            CivilDate::new(1970, 1, 1).unwrap().weekday(),
            Weekday::Thursday
        );
        assert_eq!(
            CivilDate::new(2021, 1, 1).unwrap().weekday(),
            Weekday::Friday
        );
        assert_eq!(
            CivilDate::new(2021, 12, 25).unwrap().weekday(),
            Weekday::Saturday
        );
        assert!(CivilDate::new(2021, 12, 25).unwrap().weekday().is_weekend());
        assert!(!CivilDate::new(2021, 12, 27).unwrap().weekday().is_weekend());
    }

    #[test]
    fn day_of_year_values() {
        assert_eq!(CivilDate::new(2021, 1, 1).unwrap().day_of_year(), 1);
        assert_eq!(CivilDate::new(2021, 12, 31).unwrap().day_of_year(), 365);
        assert_eq!(CivilDate::new(2020, 12, 31).unwrap().day_of_year(), 366);
        assert_eq!(CivilDate::new(2021, 3, 1).unwrap().day_of_year(), 60);
        assert_eq!(CivilDate::new(2020, 3, 1).unwrap().day_of_year(), 61);
    }

    #[test]
    fn hour_of_year_indexing() {
        let jan1 = CivilDate::new(2021, 1, 1).unwrap();
        let h0 = HourStamp::new(jan1, 0).unwrap();
        assert_eq!(h0.hour_of_year(), 0);
        let dec31 = CivilDate::new(2021, 12, 31).unwrap();
        let last = HourStamp::new(dec31, 23).unwrap();
        assert_eq!(last.hour_of_year(), 8759);
        // Round trip for a sample of indices.
        for idx in [0u32, 1, 23, 24, 4000, 8759] {
            let s = HourStamp::from_hour_of_year(2021, idx);
            assert_eq!(s.hour_of_year(), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hour_of_year_bounds() {
        let _ = HourStamp::from_hour_of_year(2021, 8760);
    }

    #[test]
    fn hour_arithmetic_crosses_midnight_and_year() {
        let d = CivilDate::new(2021, 12, 31).unwrap();
        let h = HourStamp::new(d, 23).unwrap();
        let next = h.plus_hours(1);
        assert_eq!(next.date(), CivilDate::new(2022, 1, 1).unwrap());
        assert_eq!(next.hour(), 0);
        let prev = h.plus_hours(-24);
        assert_eq!(prev.date(), CivilDate::new(2021, 12, 30).unwrap());
        assert_eq!(prev.hour(), 23);
    }

    #[test]
    fn timezone_conversions() {
        // Midnight UTC on Jan 1 is 09:00 JST the same day.
        let utc0 = HourStamp::new(CivilDate::new(2021, 1, 1).unwrap(), 0).unwrap();
        let jst = TimeZone::JST.from_utc(utc0);
        assert_eq!(jst.hour(), 9);
        assert_eq!(jst.date(), CivilDate::new(2021, 1, 1).unwrap());

        // Midnight UTC is 16:00 PST the *previous* day.
        let pst = TimeZone::PST.from_utc(utc0);
        assert_eq!(pst.hour(), 16);
        assert_eq!(pst.date(), CivilDate::new(2020, 12, 31).unwrap());

        // Round trip through any zone is the identity.
        for tz in [
            TimeZone::UTC,
            TimeZone::JST,
            TimeZone::PST,
            TimeZone::CST,
            TimeZone::EST,
            TimeZone::GMT,
        ] {
            assert_eq!(tz.to_utc(tz.from_utc(utc0)), utc0);
        }
    }

    #[test]
    fn cross_zone_conversion() {
        // The paper converts PST to JST: PST is UTC-8, JST UTC+9 → +17 h.
        let noon_pst = HourStamp::new(CivilDate::new(2021, 6, 15).unwrap(), 12).unwrap();
        let jst = TimeZone::PST.convert(noon_pst, TimeZone::JST);
        assert_eq!(jst.hour(), 5);
        assert_eq!(jst.date(), CivilDate::new(2021, 6, 16).unwrap());
    }

    #[test]
    fn seasons() {
        assert_eq!(
            CivilDate::new(2021, 1, 15).unwrap().season(),
            Season::Winter
        );
        assert_eq!(
            CivilDate::new(2021, 4, 15).unwrap().season(),
            Season::Spring
        );
        assert_eq!(
            CivilDate::new(2021, 7, 15).unwrap().season(),
            Season::Summer
        );
        assert_eq!(
            CivilDate::new(2021, 10, 15).unwrap().season(),
            Season::Autumn
        );
        assert_eq!(
            CivilDate::new(2021, 12, 15).unwrap().season(),
            Season::Winter
        );
    }

    #[test]
    fn display_formats() {
        let d = CivilDate::new(2021, 3, 7).unwrap();
        assert_eq!(format!("{d}"), "2021-03-07");
        let h = HourStamp::new(d, 5).unwrap();
        assert_eq!(format!("{h}"), "2021-03-07T05:00");
        assert_eq!(format!("{}", TimeZone::JST), "JST (UTC+9)");
        assert_eq!(format!("{}", TimeZone::UTC), "UTC (UTC+0)");
    }
}
