//! Summary statistics for carbon-intensity analyses.
//!
//! Everything Fig. 6 needs: quantiles with linear interpolation (the common
//! "type 7" estimator), five-number box-plot summaries, and the coefficient
//! of variation (CoV, std/mean in %) that the paper uses to quantify
//! temporal variability.

/// Arithmetic mean. Returns NaN for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by n). Returns NaN for empty input.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by n-1). Returns NaN for input shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation in percent: `100 * std / mean`.
///
/// This is the paper's Fig. 6(b) metric ("the standard deviation as a
/// percentage of the average carbon intensity"). Returns NaN when the mean
/// is zero or input is empty.
pub fn cov_percent(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 || m.is_nan() {
        return f64::NAN;
    }
    100.0 * std_dev(xs) / m
}

/// Quantile `q` in [0, 1] with linear interpolation between order
/// statistics (R type 7 / NumPy default). Returns NaN for empty input.
///
/// # Panics
/// If `q` is outside `[0, 1]` or NaN.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    // lint: allow(panic-in-library) -- deliberate panic-on-NaN contract: samples are finite by construction, and a total_cmp sort would silently place a stray NaN instead of flagging the upstream bug
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile on already-sorted data (ascending). See [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The five-number summary plus whiskers used to draw Fig. 6(a)'s box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// Minimum observation.
    pub min: f64,
    /// Lower whisker: smallest observation ≥ Q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker: largest observation ≤ Q3 + 1.5·IQR.
    pub whisker_hi: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean (shown as a marker in many box plots).
    pub mean: f64,
}

impl BoxplotStats {
    /// Computes the summary. Returns `None` for empty input.
    pub fn compute(xs: &[f64]) -> Option<BoxplotStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        // lint: allow(panic-in-library) -- same deliberate panic-on-NaN contract as quantile(): a NaN sample is an upstream bug, not data to summarize
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Innermost data within the fences; clamped to the box edges so a
        // gap in the data cannot produce a whisker inside the box (the
        // same degenerate-whisker rule plotting libraries apply).
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|x| *x >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|x| *x <= hi_fence)
            // lint: allow(panic-in-library) -- the empty-input case returned None at the top of compute(), so `sorted` has a last element
            .unwrap_or(*sorted.last().expect("non-empty"))
            .max(q3);
        Some(BoxplotStats {
            min: sorted[0],
            whisker_lo,
            q1,
            median: med,
            q3,
            whisker_hi,
            // lint: allow(panic-in-library) -- same non-empty guarantee as the whisker computation above
            max: *sorted.last().expect("non-empty"),
            mean: mean(xs),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets.
/// Out-of-range values are clamped into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "bins must be positive");
    assert!(hi > lo, "hi must exceed lo");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for x in xs {
        let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Pearson correlation coefficient of two equal-length slices.
/// Returns NaN for degenerate inputs (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "inputs must have equal length");
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(cov_percent(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
        assert!(BoxplotStats::compute(&[]).is_none());
    }

    #[test]
    fn cov_is_scale_invariant() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * 7.5).collect();
        assert!((cov_percent(&xs) - cov_percent(&ys)).abs() < 1e-9);
    }

    #[test]
    fn cov_known_value() {
        // std of [1..4] = sqrt(1.25), mean 2.5 -> CoV = 44.72%
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((cov_percent(&xs) - 44.721).abs() < 0.01);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.0), 42.0);
        assert_eq!(quantile(&[42.0], 0.5), 42.0);
        assert_eq!(quantile(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn boxplot_summary() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxplotStats::compute(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 100.0);
        assert_eq!(b.median, 50.5);
        assert!((b.q1 - 25.75).abs() < 1e-9);
        assert!((b.q3 - 75.25).abs() < 1e-9);
        assert!((b.mean - 50.5).abs() < 1e-9);
        // Uniform data has no outliers: whiskers touch min/max.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 100.0);
    }

    #[test]
    fn boxplot_with_outlier() {
        let mut xs: Vec<f64> = (1..=99).map(|i| i as f64).collect();
        xs.push(10_000.0);
        let b = BoxplotStats::compute(&xs).unwrap();
        assert_eq!(b.max, 10_000.0);
        // The outlier is beyond the upper fence; whisker stays at 99.
        assert_eq!(b.whisker_hi, 99.0);
        assert!(b.iqr() > 0.0);
    }

    #[test]
    fn histogram_counts() {
        let xs = [0.1, 0.2, 0.5, 0.9, 1.5, -3.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // Bin 0 = [0, 0.5): {0.1, 0.2, -3.0 clamped}; bin 1 = [0.5, 1.0):
        // {0.5, 0.9, 1.5 clamped}.
        assert_eq!(h, vec![3, 3]);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
    }
}
