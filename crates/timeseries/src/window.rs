//! Indexed sliding-window queries over hourly series.
//!
//! Carbon-aware shifting asks two questions thousands of times per sweep:
//! *"what is the average intensity over `[t, t+w)`?"* and *"which start
//! hour within my slack minimizes that average?"*. Answering them by
//! rescanning the raw 8760-hour series costs `O(w)` per window and
//! `O(slack × w)` per argmin; a [`WindowIndex`] answers the first in
//! `O(1)` from prefix sums and the second in `O(slack)` (one prefix
//! lookup per candidate start), and a [`FixedWindowIndex`] — a sparse
//! table over the window sums of one fixed width — answers range argmins
//! in `O(1)` after an `O(n log n)` build.
//!
//! ## Semantics
//!
//! - Windows may **wrap** past the end of the year: a window starting at
//!   hour 8758 with width 4 covers hours 8758, 8759, 0, 1. Clamped
//!   (non-wrapping) variants are provided for callers that must stay
//!   inside the year, e.g. [`WindowIndex::argmin_window_clamped`].
//! - Argmin ties break toward the **lowest start hour** (for the wrapped
//!   scan: the earliest candidate in scan order), so every query is
//!   deterministic on all-equal plateaus.
//! - Window sums are computed as prefix-sum differences. For series whose
//!   values are dyadic rationals of bounded magnitude (every trace built
//!   from integers or multiples of 2⁻ᵏ) this is *bit-exact* against a
//!   naive left-to-right scan; for arbitrary floats it agrees to within
//!   normal f64 rounding (≲1e-12 relative). The naive reference
//!   implementations live in [`naive`] and anchor the property tests.

use crate::series::HourlySeries;

/// Naive `O(w)` / `O(slack × w)` reference implementations.
///
/// These define the ground-truth semantics the index must reproduce; the
/// property tests in `tests/prop_window.rs` and the `bench_window_index`
/// benchmark both compare against them.
pub mod naive {
    /// Mean of the wrapped window `[start, start+w)` by direct summation.
    ///
    /// # Panics
    /// If `values` is empty, `w` is zero, `w > values.len()` or
    /// `start >= values.len()`.
    pub fn window_mean(values: &[f64], start: u32, w: u32) -> f64 {
        let n = values.len() as u32;
        assert!(
            n > 0 && w >= 1 && w <= n && start < n,
            "window out of range"
        );
        let mut acc = 0.0;
        for k in 0..w {
            acc += values[((start + k) % n) as usize];
        }
        acc / f64::from(w)
    }

    /// The shift `d ∈ [0, slack]` minimizing the wrapped window mean at
    /// `start + d`, by direct summation. Ties break toward the smallest
    /// shift.
    pub fn greenest_shift(values: &[f64], start: u32, slack: u32, w: u32) -> u32 {
        let n = values.len() as u32;
        let mut best_shift = 0;
        let mut best = window_mean(values, start % n, w);
        for d in 1..=slack {
            let m = window_mean(values, (start + d) % n, w);
            if m < best {
                best = m;
                best_shift = d;
            }
        }
        best_shift
    }
}

/// Prefix-sum index over one hourly series: `O(1)` window sums/means and
/// `O(slack)` greenest-start scans, with or without year-end wrap-around.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowIndex {
    /// `prefix[i]` = sum of the first `i` values; `prefix.len() == n + 1`.
    prefix: Vec<f64>,
}

impl WindowIndex {
    /// Builds the index over raw values in `O(n)`.
    ///
    /// # Panics
    /// If `values` is empty.
    pub fn new(values: &[f64]) -> WindowIndex {
        assert!(!values.is_empty(), "cannot index an empty series");
        let mut prefix = Vec::with_capacity(values.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for v in values {
            acc += v;
            prefix.push(acc);
        }
        WindowIndex { prefix }
    }

    /// Builds the index over a series' values.
    pub fn of_series(series: &HourlySeries) -> WindowIndex {
        WindowIndex::new(series.values())
    }

    /// Number of indexed hours.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Always false: construction rejects empty input.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn n(&self) -> u32 {
        (self.prefix.len() - 1) as u32
    }

    /// Sum over the non-wrapping range `[a, b)`; `O(1)`.
    #[inline]
    fn range_sum(&self, a: u32, b: u32) -> f64 {
        self.prefix[b as usize] - self.prefix[a as usize]
    }

    /// Sum over the wrapped window `[start, start+w)`; `O(1)`.
    ///
    /// # Panics
    /// If `w` is zero, `w > len` or `start >= len`.
    #[inline]
    pub fn window_sum(&self, start: u32, w: u32) -> f64 {
        let n = self.n();
        assert!(w >= 1 && w <= n, "window width must be in 1..=len");
        assert!(start < n, "start out of range");
        if start + w <= n {
            self.range_sum(start, start + w)
        } else {
            self.range_sum(start, n) + self.range_sum(0, start + w - n)
        }
    }

    /// Mean over the wrapped window `[start, start+w)`; `O(1)`.
    #[inline]
    pub fn window_mean(&self, start: u32, w: u32) -> f64 {
        self.window_sum(start, w) / f64::from(w)
    }

    /// The shift `d ∈ [0, slack]` whose wrapped window `[start+d,
    /// start+d+w)` has the lowest mean; `O(slack)` with one `O(1)` sum per
    /// candidate. `start` may exceed the series length (it is reduced
    /// modulo the year, matching simulation clocks that run past hour
    /// 8759). Ties break toward the smallest shift — i.e. the lowest
    /// start hour — so plateaus resolve deterministically.
    pub fn greenest_shift(&self, start: u32, slack: u32, w: u32) -> u32 {
        let n = self.n();
        let mut best_shift = 0;
        let mut best = self.window_sum(start % n, w);
        for d in 1..=slack {
            let s = self.window_sum((start + d) % n, w);
            if s < best {
                best = s;
                best_shift = d;
            }
        }
        best_shift
    }

    /// The start in `[start, min(start+horizon, len−w)]` whose
    /// **non-wrapping** window has the lowest mean — the clamped query
    /// behind `IntensityTrace::greenest_window`. Ties break toward the
    /// lowest start. Returns `start` when no window fits.
    ///
    /// # Panics
    /// If `w` is zero or `start >= len`.
    pub fn argmin_window_clamped(&self, start: u32, horizon: u32, w: u32) -> u32 {
        let n = self.n();
        assert!(w >= 1, "window must span at least one hour");
        assert!(start < n, "start out of range");
        let last_start = (start.saturating_add(horizon)).min(n.saturating_sub(w));
        let mut best_start = start;
        let mut best = f64::INFINITY;
        for s in start..=last_start {
            if s + w > n {
                break;
            }
            let sum = self.range_sum(s, s + w);
            if sum < best {
                best = sum;
                best_start = s;
            }
        }
        best_start
    }

    /// Precomputes a sparse table over this index's width-`w` window sums,
    /// turning *any-range* argmin queries into `O(1)` lookups.
    pub fn fixed(&self, w: u32) -> FixedWindowIndex {
        FixedWindowIndex::build(self, w)
    }
}

/// A sparse table of range-argmins over the wrapped window sums of one
/// fixed width: `O(n log n)` to build, `O(1)` per query.
///
/// Use it when one window width is queried many times with varying start
/// ranges (e.g. a fleet of same-length jobs sharing a slack policy); for
/// one-off queries [`WindowIndex::greenest_shift`] is cheaper.
#[derive(Debug, Clone)]
pub struct FixedWindowIndex {
    /// Window width this table answers for.
    w: u32,
    /// `sums[s]` = wrapped window sum starting at `s`.
    sums: Vec<f64>,
    /// `table[k][i]` = argmin of `sums[i .. i + 2^k]` (lowest index wins).
    table: Vec<Vec<u32>>,
}

impl FixedWindowIndex {
    fn build(index: &WindowIndex, w: u32) -> FixedWindowIndex {
        let n = index.len();
        let sums: Vec<f64> = (0..n as u32).map(|s| index.window_sum(s, w)).collect();
        let levels = usize::BITS - n.leading_zeros(); // ⌈log2(n)⌉ + 1-ish
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels as usize);
        table.push((0..n as u32).collect());
        let mut k = 1;
        while (1usize << k) <= n {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let row: Vec<u32> = (0..=n - (1 << k))
                .map(|i| {
                    let a = prev[i];
                    let b = prev[i + half];
                    // Lowest start wins ties: strict > before switching.
                    if sums[b as usize] < sums[a as usize] {
                        b
                    } else {
                        a
                    }
                })
                .collect();
            table.push(row);
            k += 1;
        }
        FixedWindowIndex { w, sums, table }
    }

    /// The window width this table was built for.
    pub fn width(&self) -> u32 {
        self.w
    }

    /// The argmin start over the **inclusive** start range `[lo, hi]`,
    /// `O(1)`. Ties break toward the lowest start.
    ///
    /// # Panics
    /// If `lo > hi` or `hi >= len`.
    pub fn argmin_in(&self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty start range");
        assert!((hi as usize) < self.sums.len(), "range out of bounds");
        let span = (hi - lo + 1) as usize;
        let k = (usize::BITS - 1 - span.leading_zeros()) as usize; // ⌊log2⌋
        let a = self.table[k][lo as usize];
        let b = self.table[k][(hi as usize + 1) - (1 << k)];
        // `a` covers the lower starts: keep it unless `b` is strictly
        // smaller, preserving the lowest-start tie-break.
        if self.sums[b as usize] < self.sums[a as usize] {
            b
        } else {
            a
        }
    }

    /// The window mean at `start` (from the precomputed sums), `O(1)`.
    pub fn mean_at(&self, start: u32) -> f64 {
        self.sums[start as usize] / f64::from(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 24) as f64).collect()
    }

    #[test]
    fn window_mean_matches_naive_on_integers() {
        let vs = ramp(8760);
        let idx = WindowIndex::new(&vs);
        for (start, w) in [(0, 1), (10, 24), (8755, 12), (8759, 1), (100, 8760)] {
            assert_eq!(
                idx.window_mean(start, w),
                naive::window_mean(&vs, start, w),
                "start {start} w {w}"
            );
        }
    }

    #[test]
    fn wrapped_window_crosses_year_end() {
        let vs = ramp(48);
        let idx = WindowIndex::new(&vs);
        // Start 46, width 4: values 22, 23, 0, 1 -> mean 11.5.
        assert_eq!(idx.window_mean(46, 4), 11.5);
    }

    #[test]
    fn greenest_shift_matches_naive() {
        let vs = ramp(8760);
        let idx = WindowIndex::new(&vs);
        for (start, slack, w) in [(12, 24, 3), (8750, 40, 6), (0, 0, 5), (23, 168, 24)] {
            assert_eq!(
                idx.greenest_shift(start, slack, w),
                naive::greenest_shift(&vs, start, slack, w),
                "start {start} slack {slack} w {w}"
            );
        }
    }

    #[test]
    fn greenest_shift_tie_breaks_lowest_start() {
        let vs = vec![5.0; 240];
        let idx = WindowIndex::new(&vs);
        assert_eq!(idx.greenest_shift(7, 100, 12), 0);
        assert_eq!(naive::greenest_shift(&vs, 7, 100, 12), 0);
    }

    #[test]
    fn greenest_shift_accepts_past_year_starts() {
        let vs = ramp(48);
        let idx = WindowIndex::new(&vs);
        // Start 50 ≡ hour 2 of the wrapped year.
        assert_eq!(idx.greenest_shift(50, 10, 2), idx.greenest_shift(2, 10, 2));
    }

    #[test]
    fn clamped_argmin_stays_inside_the_year() {
        let vs = ramp(8760);
        let idx = WindowIndex::new(&vs);
        let best = idx.argmin_window_clamped(8756, 100, 4);
        assert!(best + 4 <= 8760);
        // Night hours (index % 24 == 0) minimize the ramp.
        assert_eq!(idx.argmin_window_clamped(12, 24, 3) % 24, 0);
    }

    #[test]
    fn fixed_index_agrees_with_scan() {
        let vs = ramp(8760);
        let idx = WindowIndex::new(&vs);
        let fixed = idx.fixed(24);
        for (lo, hi) in [(0, 0), (0, 8759), (100, 268), (8700, 8759)] {
            let scan = (lo..=hi)
                .min_by(|a, b| {
                    idx.window_sum(*a, 24)
                        .partial_cmp(&idx.window_sum(*b, 24))
                        .expect("finite")
                })
                .expect("non-empty");
            assert_eq!(fixed.argmin_in(lo, hi), scan, "range [{lo}, {hi}]");
        }
        assert_eq!(fixed.width(), 24);
        assert_eq!(fixed.mean_at(0), idx.window_mean(0, 24));
    }

    #[test]
    fn fixed_index_tie_breaks_lowest_start() {
        let vs = vec![1.0; 512];
        let fixed = WindowIndex::new(&vs).fixed(7);
        assert_eq!(fixed.argmin_in(3, 410), 3);
    }

    #[test]
    #[should_panic(expected = "start out of range")]
    fn window_sum_rejects_bad_start() {
        let _ = WindowIndex::new(&[1.0, 2.0]).window_sum(2, 1);
    }

    #[test]
    #[should_panic(expected = "window width must be in 1..=len")]
    fn window_sum_rejects_oversized_window() {
        let _ = WindowIndex::new(&[1.0, 2.0]).window_sum(0, 3);
    }

    #[test]
    #[should_panic(expected = "cannot index an empty series")]
    fn rejects_empty_input() {
        let _ = WindowIndex::new(&[]);
    }

    #[test]
    fn of_series_matches_new() {
        let s = HourlySeries::from_fn(2021, |st| f64::from(st.hour()));
        assert_eq!(WindowIndex::of_series(&s), WindowIndex::new(s.values()));
        assert_eq!(WindowIndex::of_series(&s).len(), 8760);
        assert!(!WindowIndex::of_series(&s).is_empty());
    }
}
