//! Hourly time series over a civil year.
//!
//! The unit of analysis in the paper's operational sections is "hourly data
//! (year 2021)" — a vector of 8760 values indexed by hour-of-year. This
//! module provides that container with the handful of relational operations
//! the analyses need: elementwise maps and zips, hour-of-day slicing in any
//! time zone, rolling means and resampling.

use crate::datetime::{hours_in_year, CivilDate, HourStamp, TimeZone};

/// One value per hour of a civil year.
#[derive(Debug, Clone, PartialEq)]
pub struct HourlySeries {
    year: i32,
    values: Vec<f64>,
}

impl HourlySeries {
    /// Creates a series for `year` from exactly `hours_in_year(year)` values.
    ///
    /// # Panics
    /// If the length does not match the year.
    pub fn new(year: i32, values: Vec<f64>) -> HourlySeries {
        assert_eq!(
            values.len(),
            hours_in_year(year) as usize,
            "series length must match hours in year {year}"
        );
        HourlySeries { year, values }
    }

    /// A series holding the same value at every hour.
    pub fn constant(year: i32, value: f64) -> HourlySeries {
        HourlySeries {
            year,
            values: vec![value; hours_in_year(year) as usize],
        }
    }

    /// Builds a series by evaluating `f` at every hour stamp of the year.
    pub fn from_fn(year: i32, mut f: impl FnMut(HourStamp) -> f64) -> HourlySeries {
        let n = hours_in_year(year);
        let values = (0..n)
            .map(|i| f(HourStamp::from_hour_of_year(year, i)))
            .collect();
        HourlySeries { year, values }
    }

    /// The civil year this series covers.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Number of hourly samples (8760 or 8784).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty (cannot happen for a valid year; kept for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at hour-of-year `index`.
    pub fn at(&self, index: u32) -> f64 {
        self.values[index as usize]
    }

    /// Value at a UTC hour stamp.
    ///
    /// # Panics
    /// If the stamp is outside this series' year.
    pub fn at_stamp(&self, stamp: HourStamp) -> f64 {
        assert_eq!(
            stamp.date().year(),
            self.year,
            "stamp {stamp} outside series year {}",
            self.year
        );
        self.at(stamp.hour_of_year())
    }

    /// Iterates `(stamp, value)` pairs in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (HourStamp, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (HourStamp::from_hour_of_year(self.year, i as u32), *v))
    }

    /// Elementwise transformation.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> HourlySeries {
        HourlySeries {
            year: self.year,
            values: self.values.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Elementwise combination of two series over the same year.
    ///
    /// # Panics
    /// If the years differ.
    pub fn zip_with(&self, other: &HourlySeries, f: impl Fn(f64, f64) -> f64) -> HourlySeries {
        assert_eq!(
            self.year, other.year,
            "cannot zip series of different years"
        );
        HourlySeries {
            year: self.year,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        }
    }

    /// Sum over all hours.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean over all hours.
    pub fn mean(&self) -> f64 {
        self.total() / self.values.len() as f64
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All values observed at local wall-clock hour `local_hour` when this
    /// (UTC-indexed) series is viewed from time zone `tz`.
    ///
    /// This is the primitive behind Fig. 7: "compare their carbon
    /// intensities during the same hour of the day … convert them to JST".
    /// Hours that fall outside the series' year after conversion are
    /// dropped (a zone shift moves up to `|offset|` hours across the year
    /// boundary).
    pub fn values_at_local_hour(&self, tz: TimeZone, local_hour: u8) -> Vec<(CivilDate, f64)> {
        assert!(local_hour < 24, "hour must be 0..=23");
        self.iter()
            .filter_map(|(utc_stamp, v)| {
                let local = tz.from_utc(utc_stamp);
                (local.hour() == local_hour).then(|| (local.date(), v))
            })
            .collect()
    }

    /// Means grouped by local hour-of-day (24 buckets) in zone `tz`.
    pub fn hourly_profile(&self, tz: TimeZone) -> [f64; 24] {
        let mut sums = [0.0f64; 24];
        let mut counts = [0usize; 24];
        for (utc_stamp, v) in self.iter() {
            let h = tz.from_utc(utc_stamp).hour() as usize;
            sums[h] += v;
            counts[h] += 1;
        }
        let mut out = [0.0f64; 24];
        for h in 0..24 {
            out[h] = if counts[h] > 0 {
                sums[h] / counts[h] as f64
            } else {
                f64::NAN
            };
        }
        out
    }

    /// Daily means: one value per civil day of the year.
    pub fn daily_means(&self) -> Vec<f64> {
        self.values
            .chunks_exact(24)
            .map(|day| day.iter().sum::<f64>() / 24.0)
            .collect()
    }

    /// Centered-window rolling mean with window `w` (clamped at the edges).
    ///
    /// # Panics
    /// If `w` is zero.
    pub fn rolling_mean(&self, w: usize) -> HourlySeries {
        assert!(w > 0, "window must be positive");
        let half = w / 2;
        let n = self.values.len();
        let mut out = Vec::with_capacity(n);
        // Prefix sums for O(n) rolling windows over 8760 points.
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for v in &self.values {
            acc += v;
            prefix.push(acc);
        }
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
        }
        HourlySeries {
            year: self.year,
            values: out,
        }
    }

    /// Scales every value by `k`.
    pub fn scale(&self, k: f64) -> HourlySeries {
        self.map(|v| v * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_properties() {
        let s = HourlySeries::constant(2021, 5.0);
        assert_eq!(s.len(), 8760);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.total(), 5.0 * 8760.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn leap_year_length() {
        let s = HourlySeries::constant(2020, 1.0);
        assert_eq!(s.len(), 8784);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn rejects_wrong_length() {
        let _ = HourlySeries::new(2021, vec![0.0; 100]);
    }

    #[test]
    fn from_fn_indexing() {
        let s = HourlySeries::from_fn(2021, |st| st.hour_of_year() as f64);
        assert_eq!(s.at(0), 0.0);
        assert_eq!(s.at(8759), 8759.0);
        let stamp = HourStamp::from_hour_of_year(2021, 1234);
        assert_eq!(s.at_stamp(stamp), 1234.0);
    }

    #[test]
    fn map_and_zip() {
        let a = HourlySeries::constant(2021, 2.0);
        let b = HourlySeries::from_fn(2021, |st| st.hour() as f64);
        let sum = a.zip_with(&b, |x, y| x + y);
        assert_eq!(sum.at(0), 2.0); // hour 0
        assert_eq!(sum.at(13), 15.0); // hour 13
        let doubled = a.map(|x| x * 3.0);
        assert_eq!(doubled.at(100), 6.0);
    }

    #[test]
    fn hourly_profile_utc_identity() {
        // A series equal to its own UTC hour has profile [0,1,...,23].
        let s = HourlySeries::from_fn(2021, |st| st.hour() as f64);
        let prof = s.hourly_profile(TimeZone::UTC);
        for (h, v) in prof.iter().enumerate() {
            assert!((v - h as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn hourly_profile_shifts_with_zone() {
        // Same series viewed from JST: local hour h corresponds to UTC
        // hour (h - 9) mod 24.
        let s = HourlySeries::from_fn(2021, |st| st.hour() as f64);
        let prof = s.hourly_profile(TimeZone::JST);
        for (h, v) in prof.iter().enumerate() {
            let expected = ((h as i32 - 9).rem_euclid(24)) as f64;
            assert!(
                (v - expected).abs() < 1e-9,
                "hour {h}: got {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn values_at_local_hour_counts() {
        let s = HourlySeries::constant(2021, 1.0);
        // In UTC every hour-of-day appears exactly 365 times.
        assert_eq!(s.values_at_local_hour(TimeZone::UTC, 0).len(), 365);
        assert_eq!(s.values_at_local_hour(TimeZone::UTC, 23).len(), 365);
        // Viewed from JST (+9): every local hour still appears 365 times
        // (the series simply shifts; edge hours fall into adjacent years).
        let total: usize = (0..24)
            .map(|h| s.values_at_local_hour(TimeZone::JST, h).len())
            .sum();
        assert_eq!(total, 8760);
    }

    #[test]
    fn daily_means_shape() {
        let s = HourlySeries::from_fn(2021, |st| st.date().day_of_year() as f64);
        let days = s.daily_means();
        assert_eq!(days.len(), 365);
        assert!((days[0] - 1.0).abs() < 1e-12);
        assert!((days[364] - 365.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_mean_smooths() {
        let s = HourlySeries::from_fn(
            2021,
            |st| if st.hour_of_year() % 2 == 0 { 0.0 } else { 2.0 },
        );
        let sm = s.rolling_mean(25);
        // Interior points should be close to the global mean of 1.0.
        assert!((sm.at(5000) - 1.0).abs() < 0.05);
        // Mean is preserved approximately.
        assert!((sm.mean() - s.mean()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "different years")]
    fn zip_rejects_year_mismatch() {
        let a = HourlySeries::constant(2021, 1.0);
        let b = HourlySeries::constant(2020, 1.0);
        let _ = a.zip_with(&b, |x, _| x);
    }

    #[test]
    fn scale_scales() {
        let s = HourlySeries::constant(2021, 3.0).scale(2.0);
        assert_eq!(s.mean(), 6.0);
    }
}
