//! # hpcarbon-timeseries
//!
//! Civil datetime arithmetic and hourly time-series statistics, implemented
//! from scratch (the offline dependency set excludes `chrono`; the
//! reproduction bands also flagged the "dataframe ecosystem" as the awkward
//! part of a Rust port — this crate is the replacement).
//!
//! Three building blocks:
//!
//! - [`datetime`]: Gregorian civil dates, hour-resolution timestamps and
//!   fixed-offset time zones. The paper's Fig. 7 compares regions "during
//!   the same hour of the day … converted to JST (UTC+9)", which requires
//!   exactly this machinery.
//! - [`series`]: [`series::HourlySeries`] — one value per hour of a civil
//!   year (8760 points for 2021), the shape of every grid-intensity trace.
//! - [`stats`]: summary statistics used by the paper's analyses: quantiles,
//!   five-number (box-plot) summaries for Fig. 6(a), coefficient of
//!   variation for Fig. 6(b), and group-by-hour aggregation for Fig. 7.
//! - [`window`]: [`window::WindowIndex`] — prefix-sum + sparse-table
//!   indexing of sliding-window averages and argmins, the `O(1)`/`O(slack)`
//!   primitive behind carbon-aware temporal shifting.
//!
//! # Example
//!
//! ```
//! use hpcarbon_timeseries::datetime::{CivilDate, TimeZone};
//! use hpcarbon_timeseries::series::HourlySeries;
//!
//! // 2021 is not a leap year: 8760 hourly slots.
//! let series = HourlySeries::constant(2021, 100.0);
//! assert_eq!(series.len(), 8760);
//!
//! // Timezone conversion: midnight UTC is 09:00 JST the same day.
//! let jst = TimeZone::JST;
//! assert_eq!(jst.offset_hours(), 9);
//! assert_eq!(CivilDate::new(2021, 1, 1).unwrap().day_of_year(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datetime;
pub mod series;
pub mod stats;
pub mod window;
