//! Multi-step upgrade planning over a fixed horizon.
//!
//! The paper's Insight 8 warns "the upgrades cannot be too fast" — every
//! generation hop pays a fresh embodied tax. This module compares whole
//! *plans* over a planning horizon: keep the current node, upgrade once
//! (possibly skipping a generation), or upgrade twice, with each step
//! placed at its own time. Total carbon of a plan is the sum of each
//! deployed node's operational carbon over its service window plus the
//! embodied carbon of every node bought.

use hpcarbon_core::operational::Pue;
use hpcarbon_units::{CarbonIntensity, CarbonMass, Fraction, TimeSpan};
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf::suite_speedup;
use hpcarbon_workloads::power::node_active_power;

/// One step of a plan: switch to `node` at `at` (hours from horizon start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStep {
    /// Time of the swap.
    pub at: TimeSpan,
    /// Node generation deployed from that point.
    pub node: NodeGen,
}

/// A full plan: the starting node plus zero or more swaps.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradePlan {
    /// Node deployed at t = 0 (already owned — its embodied is sunk).
    pub initial: NodeGen,
    /// Swaps in time order.
    pub steps: Vec<PlanStep>,
}

impl UpgradePlan {
    /// The do-nothing plan.
    pub fn keep(initial: NodeGen) -> UpgradePlan {
        UpgradePlan {
            initial,
            steps: Vec::new(),
        }
    }

    /// A single swap at `at`.
    pub fn single(initial: NodeGen, to: NodeGen, at: TimeSpan) -> UpgradePlan {
        UpgradePlan {
            initial,
            steps: vec![PlanStep { at, node: to }],
        }
    }

    /// Two swaps.
    ///
    /// # Panics
    /// If the steps are out of time order ([`UpgradePlan::try_double`] is
    /// the non-panicking variant).
    pub fn double(
        initial: NodeGen,
        first: (NodeGen, TimeSpan),
        second: (NodeGen, TimeSpan),
    ) -> UpgradePlan {
        // lint: allow(panic-in-library) -- documented "# Panics" convenience wrapper; try_double is the fail-soft form
        Self::try_double(initial, first, second).expect("steps must be in time order")
    }

    /// [`UpgradePlan::double`] as a pure scenario function: `None` when the
    /// steps are out of time order, so generated upgrade paths fail soft in
    /// batched sweeps.
    pub fn try_double(
        initial: NodeGen,
        first: (NodeGen, TimeSpan),
        second: (NodeGen, TimeSpan),
    ) -> Option<UpgradePlan> {
        if first.1 >= second.1 {
            return None;
        }
        Some(UpgradePlan {
            initial,
            steps: vec![
                PlanStep {
                    at: first.1,
                    node: first.0,
                },
                PlanStep {
                    at: second.1,
                    node: second.0,
                },
            ],
        })
    }

    /// Total carbon of executing this plan over `horizon`, serving the
    /// workload demand fixed by (`suite`, `usage` on the *initial* node).
    ///
    /// Embodied carbon is charged for every step's new node; operational
    /// carbon accrues per service window at each node's energy-per-work
    /// rate (busy time shrinks by the speedup relative to the initial
    /// node, exactly as in [`crate::savings::UpgradeScenario`]).
    pub fn total_carbon(
        &self,
        suite: Suite,
        usage: Fraction,
        pue: Pue,
        intensity: CarbonIntensity,
        horizon: TimeSpan,
    ) -> CarbonMass {
        let mut total = CarbonMass::ZERO;
        let mut current = self.initial;
        let mut t = TimeSpan::ZERO;
        let mut steps = self.steps.iter().peekable();
        loop {
            let window_end = steps.peek().map(|s| s.at.min(horizon)).unwrap_or(horizon);
            if window_end > t {
                let window = window_end - t;
                let busy = usage.value() / suite_speedup(suite, self.initial, current);
                let power = node_active_power(current, suite) * busy;
                total += intensity * pue.apply(power * window);
            }
            match steps.next() {
                Some(step) if step.at < horizon => {
                    total += step.node.embodied().total();
                    current = step.node;
                    t = step.at;
                }
                _ => break,
            }
        }
        total
    }
}

/// Compares the canonical plans for a P100 owner over `horizon` at a given
/// intensity: keep, upgrade to V100 now, upgrade to A100 now, or step
/// through V100 now and A100 at mid-horizon. Returns plans with totals,
/// best first.
pub fn compare_p100_plans(
    suite: Suite,
    usage: Fraction,
    intensity: CarbonIntensity,
    horizon: TimeSpan,
) -> Vec<(UpgradePlan, CarbonMass)> {
    let pue = Pue::DEFAULT;
    let now = TimeSpan::from_hours(0.0);
    let mid = horizon * 0.5;
    let plans = vec![
        UpgradePlan::keep(NodeGen::P100Node),
        UpgradePlan::single(NodeGen::P100Node, NodeGen::V100Node, now),
        UpgradePlan::single(NodeGen::P100Node, NodeGen::A100Node, now),
        UpgradePlan::double(
            NodeGen::P100Node,
            (NodeGen::V100Node, now),
            (NodeGen::A100Node, mid),
        ),
    ];
    let mut scored: Vec<(UpgradePlan, CarbonMass)> = plans
        .into_iter()
        .map(|p| {
            let c = p.total_carbon(suite, usage, pue, intensity, horizon);
            (p, c)
        })
        .collect();
    // Carbon totals are finite sums of finite per-step masses, so
    // `total_cmp` on the raw kg orders identically without the panic arm.
    scored.sort_by(|a, b| a.1.as_kg().total_cmp(&b.1.as_kg()));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::savings::UpgradeScenario;

    fn usage() -> Fraction {
        Fraction::new_unchecked(0.4)
    }

    #[test]
    fn keep_plan_is_pure_operational() {
        let p = UpgradePlan::keep(NodeGen::V100Node);
        let c = p.total_carbon(
            Suite::Nlp,
            usage(),
            Pue::DEFAULT,
            CarbonIntensity::from_g_per_kwh(200.0),
            TimeSpan::from_years(1.0),
        );
        // Matches the UpgradeScenario baseline's keep-side accounting.
        let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
        let keep = s.carbon_keep(
            TimeSpan::from_years(1.0),
            CarbonIntensity::from_g_per_kwh(200.0),
        );
        assert!((c.as_g() - keep.as_g()).abs() < 1e-6);
    }

    #[test]
    fn immediate_single_swap_matches_scenario_accounting() {
        let p = UpgradePlan::single(
            NodeGen::V100Node,
            NodeGen::A100Node,
            TimeSpan::from_hours(0.0),
        );
        let i = CarbonIntensity::from_g_per_kwh(200.0);
        let t = TimeSpan::from_years(3.0);
        let c = p.total_carbon(Suite::Nlp, usage(), Pue::DEFAULT, i, t);
        let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
        let expect = s.carbon_upgrade(t, i);
        assert!((c.as_g() - expect.as_g()).abs() < expect.as_g() * 1e-9);
    }

    #[test]
    fn steps_after_horizon_cost_nothing() {
        let p = UpgradePlan::single(
            NodeGen::P100Node,
            NodeGen::A100Node,
            TimeSpan::from_years(10.0),
        );
        let keep = UpgradePlan::keep(NodeGen::P100Node);
        let i = CarbonIntensity::from_g_per_kwh(300.0);
        let t = TimeSpan::from_years(2.0);
        let a = p.total_carbon(Suite::Vision, usage(), Pue::DEFAULT, i, t);
        let b = keep.total_carbon(Suite::Vision, usage(), Pue::DEFAULT, i, t);
        assert!((a.as_g() - b.as_g()).abs() < 1e-6);
    }

    #[test]
    fn dirty_grid_prefers_the_direct_jump() {
        // At 400 g/kWh over five years, any upgrade beats keeping the
        // P100, and jumping straight to A100 beats stepping through V100
        // (two embodied taxes, and the V100 window burns more energy).
        let ranked = compare_p100_plans(
            Suite::Candle,
            usage(),
            CarbonIntensity::from_g_per_kwh(400.0),
            TimeSpan::from_years(5.0),
        );
        let best = &ranked[0].0;
        assert_eq!(best.steps.len(), 1);
        assert_eq!(best.steps[0].node, NodeGen::A100Node);
        let keep_rank = ranked
            .iter()
            .position(|(p, _)| p.steps.is_empty())
            .expect("keep plan present");
        assert_eq!(keep_rank, ranked.len() - 1, "keep must rank last");
    }

    #[test]
    fn hydro_grid_prefers_keeping() {
        // At 20 g/kWh over three years, no upgrade amortizes: keep wins.
        let ranked = compare_p100_plans(
            Suite::Nlp,
            usage(),
            CarbonIntensity::from_g_per_kwh(20.0),
            TimeSpan::from_years(3.0),
        );
        assert!(ranked[0].0.steps.is_empty(), "{:?}", ranked[0].0);
    }

    #[test]
    fn two_step_plan_always_costs_more_than_direct_here() {
        // With A100 available at t=0, the intermediate V100 hop is a pure
        // extra embodied tax ("upgrades cannot be too fast").
        for g in [100.0, 200.0, 400.0] {
            let ranked = compare_p100_plans(
                Suite::Nlp,
                usage(),
                CarbonIntensity::from_g_per_kwh(g),
                TimeSpan::from_years(5.0),
            );
            let direct = ranked
                .iter()
                .find(|(p, _)| p.steps.len() == 1 && p.steps[0].node == NodeGen::A100Node)
                .expect("direct plan present")
                .1;
            let stepped = ranked
                .iter()
                .find(|(p, _)| p.steps.len() == 2)
                .expect("two-step plan present")
                .1;
            assert!(stepped > direct, "at {g} g/kWh");
        }
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn double_rejects_out_of_order() {
        let _ = UpgradePlan::double(
            NodeGen::P100Node,
            (NodeGen::V100Node, TimeSpan::from_years(2.0)),
            (NodeGen::A100Node, TimeSpan::from_years(1.0)),
        );
    }

    #[test]
    fn try_double_fails_soft() {
        assert!(UpgradePlan::try_double(
            NodeGen::P100Node,
            (NodeGen::V100Node, TimeSpan::from_years(2.0)),
            (NodeGen::A100Node, TimeSpan::from_years(1.0)),
        )
        .is_none());
        assert!(UpgradePlan::try_double(
            NodeGen::P100Node,
            (NodeGen::V100Node, TimeSpan::from_years(1.0)),
            (NodeGen::A100Node, TimeSpan::from_years(2.0)),
        )
        .is_some());
    }
}
