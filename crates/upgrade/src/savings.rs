//! Savings curves, break-even solving and the Fig. 8/9 grids.

use hpcarbon_core::operational::Pue;
use hpcarbon_units::{CarbonIntensity, CarbonMass, Energy, Fraction, TimeSpan};
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf::suite_speedup;
use hpcarbon_workloads::power::node_active_power;

/// The three usage patterns of the paper's Fig. 9: medium is 40% ("to
/// align with a production trace"), high and low are 1.5× more and less.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsageLevel {
    /// 60% busy.
    High,
    /// 40% busy.
    Medium,
    /// 26.7% busy.
    Low,
}

impl UsageLevel {
    /// All levels in the paper's legend order.
    pub const ALL: [UsageLevel; 3] = [UsageLevel::High, UsageLevel::Medium, UsageLevel::Low];

    /// The busy fraction.
    pub fn fraction(self) -> Fraction {
        match self {
            UsageLevel::High => Fraction::new_unchecked(0.60),
            UsageLevel::Medium => Fraction::new_unchecked(0.40),
            UsageLevel::Low => Fraction::new_unchecked(0.40 / 1.5),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            UsageLevel::High => "High Usage",
            UsageLevel::Medium => "Medium Usage",
            UsageLevel::Low => "Low Usage",
        }
    }
}

/// One upgrade question: replace `old` with `new` for workload `suite`,
/// given a usage pattern and facility PUE.
#[derive(Debug, Clone, Copy)]
pub struct UpgradeScenario {
    /// Currently deployed node generation.
    pub old: NodeGen,
    /// Candidate replacement generation.
    pub new: NodeGen,
    /// Workload mix driving performance/power.
    pub suite: Suite,
    /// Fraction of time the old node is busy serving work.
    pub usage: Fraction,
    /// Facility PUE.
    pub pue: Pue,
}

impl UpgradeScenario {
    /// The paper's default configuration: 40% usage ("medium"), constant
    /// PUE.
    pub fn paper_default(old: NodeGen, new: NodeGen, suite: Suite) -> UpgradeScenario {
        UpgradeScenario {
            old,
            new,
            suite,
            usage: UsageLevel::Medium.fraction(),
            pue: Pue::DEFAULT,
        }
    }

    /// The three upgrade options of Fig. 8 / Table 6.
    pub fn paper_options(suite: Suite) -> [UpgradeScenario; 3] {
        [
            UpgradeScenario::paper_default(NodeGen::P100Node, NodeGen::V100Node, suite),
            UpgradeScenario::paper_default(NodeGen::P100Node, NodeGen::A100Node, suite),
            UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, suite),
        ]
    }

    /// Suite-average speedup of the upgrade.
    pub fn speedup(&self) -> f64 {
        suite_speedup(self.suite, self.old, self.new)
    }

    /// Embodied carbon paid by the upgrade (the new node's full build).
    pub fn upgrade_embodied(&self) -> CarbonMass {
        self.new.embodied().total()
    }

    /// Annual facility energy of the *old* node serving the workload.
    pub fn old_annual_energy(&self) -> Energy {
        let busy = self.usage.value();
        let p = node_active_power(self.old, self.suite) * busy;
        self.pue.apply(p * TimeSpan::from_years(1.0))
    }

    /// Annual facility energy of the *new* node serving the same workload
    /// (busy fraction shrinks by the speedup).
    pub fn new_annual_energy(&self) -> Energy {
        let busy = self.usage.value() / self.speedup();
        let p = node_active_power(self.new, self.suite) * busy;
        self.pue.apply(p * TimeSpan::from_years(1.0))
    }

    /// Annual operational-energy saving of the upgrade (may be negative if
    /// the new node is less efficient per unit of work).
    pub fn annual_energy_saving(&self) -> Energy {
        self.old_annual_energy() - self.new_annual_energy()
    }

    /// Cumulative carbon of *keeping* the old node for `t` (operational
    /// only — its embodied carbon is sunk).
    pub fn carbon_keep(&self, t: TimeSpan, intensity: CarbonIntensity) -> CarbonMass {
        intensity * (self.old_annual_energy() * t.as_years())
    }

    /// Cumulative carbon of *upgrading*: new embodied + new operational.
    pub fn carbon_upgrade(&self, t: TimeSpan, intensity: CarbonIntensity) -> CarbonMass {
        self.upgrade_embodied() + intensity * (self.new_annual_energy() * t.as_years())
    }

    /// Fig. 8/9's y-axis: percentage carbon saving of upgrading relative
    /// to keeping, after `t` of operation. Negative while the embodied
    /// "tax" is unpaid.
    pub fn savings_percent(&self, t: TimeSpan, intensity: CarbonIntensity) -> f64 {
        let keep = self.carbon_keep(t, intensity);
        if keep.as_g() <= 0.0 {
            return f64::NEG_INFINITY;
        }
        100.0 * (keep - self.carbon_upgrade(t, intensity)).as_g() / keep.as_g()
    }

    /// The asymptotic saving as `t → ∞`: the pure energy-efficiency gain.
    pub fn asymptotic_savings_percent(&self) -> f64 {
        100.0 * (1.0 - self.new_annual_energy() / self.old_annual_energy())
    }

    /// Time until the upgrade's cumulative carbon matches keeping the old
    /// node ("the time it takes to amortize the embodied carbon").
    /// `None` when the upgrade never pays off at this intensity.
    pub fn break_even(&self, intensity: CarbonIntensity) -> Option<TimeSpan> {
        let saving_per_year = intensity * self.annual_energy_saving();
        if saving_per_year.as_g() <= 0.0 {
            return None;
        }
        let years = self.upgrade_embodied() / saving_per_year;
        Some(TimeSpan::from_years(years))
    }

    /// Samples the savings curve over `[t0, horizon]` at `points` equally
    /// spaced instants (Fig. 8/9's plotted lines; `t0 > 0` avoids the
    /// −∞ at t = 0).
    pub fn savings_curve(
        &self,
        horizon: TimeSpan,
        points: usize,
        intensity: CarbonIntensity,
    ) -> SavingsCurve {
        assert!(points >= 2, "need at least two samples");
        let mut samples = Vec::with_capacity(points);
        for k in 0..points {
            let t = horizon * ((k + 1) as f64 / points as f64);
            samples.push((t, self.savings_percent(t, intensity)));
        }
        SavingsCurve {
            scenario: *self,
            intensity,
            samples,
        }
    }
}

/// A sampled savings curve.
#[derive(Debug, Clone)]
pub struct SavingsCurve {
    /// The scenario generating this curve.
    pub scenario: UpgradeScenario,
    /// The constant intensity it was evaluated at.
    pub intensity: CarbonIntensity,
    /// `(time, savings %)` samples in time order.
    pub samples: Vec<(TimeSpan, f64)>,
}

impl SavingsCurve {
    /// The last sampled saving (the curve's right edge).
    pub fn final_savings(&self) -> f64 {
        // lint: allow(panic-in-library) -- curves are only built by savings_curve(), which always pushes at least the horizon-end sample
        self.samples.last().expect("non-empty").1
    }

    /// First sampled time with non-negative savings, if any.
    pub fn first_green(&self) -> Option<TimeSpan> {
        self.samples
            .iter()
            .find(|(_, s)| *s >= 0.0)
            .map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::IntensityLevel;

    fn scenario(old: NodeGen, new: NodeGen, suite: Suite) -> UpgradeScenario {
        UpgradeScenario::paper_default(old, new, suite)
    }

    #[test]
    fn usage_levels_match_paper() {
        assert_eq!(UsageLevel::Medium.fraction().value(), 0.40);
        assert_eq!(UsageLevel::High.fraction().value(), 0.60);
        assert!((UsageLevel::Low.fraction().value() - 0.2667).abs() < 1e-3);
    }

    #[test]
    fn curves_start_negative() {
        // "all curves start from a negative point because an upgrade
        // immediately incurs embodied carbon cost".
        for suite in Suite::ALL {
            for s in UpgradeScenario::paper_options(suite) {
                for level in IntensityLevel::ALL {
                    let early = s.savings_percent(TimeSpan::from_days(3.0), level.intensity());
                    assert!(early < 0.0, "{s:?} {level:?}: {early}");
                }
            }
        }
    }

    #[test]
    fn curves_increase_toward_asymptote() {
        let s = scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
        let i = IntensityLevel::Medium.intensity();
        let mut last = f64::NEG_INFINITY;
        for years in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let v = s.savings_percent(TimeSpan::from_years(years), i);
            assert!(v > last, "savings must increase with time");
            last = v;
        }
        assert!(last < s.asymptotic_savings_percent());
        let far = s.savings_percent(TimeSpan::from_years(1000.0), i);
        assert!((far - s.asymptotic_savings_percent()).abs() < 0.5);
    }

    #[test]
    fn break_even_matches_zero_crossing() {
        let s = scenario(NodeGen::P100Node, NodeGen::A100Node, Suite::Vision);
        let i = IntensityLevel::Medium.intensity();
        let t = s.break_even(i).expect("pays off at 200 g/kWh");
        let at = s.savings_percent(t, i);
        assert!(at.abs() < 1e-6, "savings at break-even: {at}");
    }

    #[test]
    fn fig8_break_even_ordering_across_intensity() {
        // "at high carbon intensity, it takes less than half a year …; at
        // medium … less than a year …; at low … about five years or more."
        for suite in Suite::ALL {
            for s in UpgradeScenario::paper_options(suite) {
                let hi = s
                    .break_even(IntensityLevel::High.intensity())
                    .unwrap()
                    .as_years();
                let med = s
                    .break_even(IntensityLevel::Medium.intensity())
                    .unwrap()
                    .as_years();
                let low = s
                    .break_even(IntensityLevel::Low.intensity())
                    .unwrap()
                    .as_years();
                assert!(hi < 0.5, "{suite:?} {:?}->{:?}: hi={hi}", s.old, s.new);
                assert!(med < 1.0, "{suite:?}: med={med}");
                assert!(med > hi && low > med);
                assert!(low >= 3.0, "{suite:?}: low={low}");
                // Exactly 10x medium (intensity scales linearly).
                assert!((low / med - 10.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn v100_to_a100_low_intensity_takes_about_5_years_or_more() {
        // Paper: "at low carbon intensity … the amortization time is about
        // five years or more".
        for suite in Suite::ALL {
            let s = scenario(NodeGen::V100Node, NodeGen::A100Node, suite);
            let low = s
                .break_even(IntensityLevel::Low.intensity())
                .unwrap()
                .as_years();
            assert!(low > 4.5, "{suite:?}: {low}");
        }
        // The slowest-improving suite (NLP) takes clearly more than five.
        let nlp = scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp)
            .break_even(IntensityLevel::Low.intensity())
            .unwrap()
            .as_years();
        assert!(nlp > 5.0, "NLP low-CI break-even {nlp}");
    }

    #[test]
    fn nlp_curve_sits_below_other_suites() {
        // "NLP curve is typically below other Vision and CANDLE workloads
        // because NLP receives the least performance improvement" —
        // for the V100 -> A100 upgrade.
        let i = IntensityLevel::Medium.intensity();
        let t = TimeSpan::from_years(3.0);
        let nlp = scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp).savings_percent(t, i);
        let vision =
            scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Vision).savings_percent(t, i);
        let candle =
            scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Candle).savings_percent(t, i);
        assert!(nlp < vision, "nlp={nlp} vision={vision}");
        assert!(nlp < candle, "nlp={nlp} candle={candle}");
    }

    #[test]
    fn fig9_usage_ordering() {
        // Higher usage amortizes faster; at CI 200, V100->A100 low usage
        // pays off around one year ("the low usage pattern has just paid
        // off the initial embodied carbon" after one year).
        let i = IntensityLevel::Medium.intensity();
        let mk = |u: UsageLevel| UpgradeScenario {
            usage: u.fraction(),
            ..scenario(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp)
        };
        let hi = mk(UsageLevel::High).break_even(i).unwrap().as_years();
        let med = mk(UsageLevel::Medium).break_even(i).unwrap().as_years();
        let low = mk(UsageLevel::Low).break_even(i).unwrap().as_years();
        assert!(hi < med && med < low);
        assert!((0.7..=1.6).contains(&low), "low-usage break-even {low}");
        // Usage differences matter less than intensity differences
        // ("The difference is not as significant as the carbon intensity").
        assert!(low / hi < 3.0);
    }

    #[test]
    fn faster_upgrades_amortize_faster() {
        // P100 -> A100 saves more energy per year than P100 -> V100.
        let i = IntensityLevel::Medium.intensity();
        for suite in Suite::ALL {
            let pv = scenario(NodeGen::P100Node, NodeGen::V100Node, suite);
            let pa = scenario(NodeGen::P100Node, NodeGen::A100Node, suite);
            assert!(
                pa.annual_energy_saving() > pv.annual_energy_saving(),
                "{suite:?}"
            );
            // Both pay off within a year at medium intensity.
            assert!(pa.break_even(i).unwrap().as_years() < 1.0);
        }
    }

    #[test]
    fn savings_curve_sampling() {
        let s = scenario(NodeGen::P100Node, NodeGen::V100Node, Suite::Candle);
        let c = s.savings_curve(
            TimeSpan::from_years(5.0),
            20,
            IntensityLevel::High.intensity(),
        );
        assert_eq!(c.samples.len(), 20);
        assert!(c.samples[0].1 < c.final_savings());
        let green = c.first_green().expect("goes green at 400 g/kWh");
        assert!(green.as_years() <= 1.0);
        // Samples are in time order.
        for w in c.samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn zero_intensity_never_pays_off() {
        let s = scenario(NodeGen::P100Node, NodeGen::A100Node, Suite::Nlp);
        assert!(s.break_even(CarbonIntensity::from_g_per_kwh(0.0)).is_none());
    }
}
