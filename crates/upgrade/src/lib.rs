//! # hpcarbon-upgrade
//!
//! The paper's hardware-upgrade decision framework (§5, RQ7/RQ8):
//! "a framework to help system practitioners make decisions on system
//! upgrades based on hardware, workload, regional carbon intensity,
//! performance, projected system lifetime, and user usage pattern."
//!
//! Model (see [`savings`]):
//!
//! - Upgrading pays the new node's **embodied carbon** up front (the
//!   "tax"); the old node's embodied carbon is sunk either way.
//! - Both options then serve the *same annual workload*: the old node busy
//!   a fraction `usage` of the time, the new node busy `usage / speedup`
//!   (it finishes the same work faster).
//! - Operational energy is accounted while serving work (busy time ×
//!   active node power × PUE); an idle node is assumed suspended or
//!   serving other tenants. Carbon prices energy at the regional
//!   intensity (Eq. 6).
//!
//! Fig. 8 sweeps the regional intensity (400/200/20 gCO₂/kWh columns);
//! Fig. 9 sweeps the usage pattern (60%/40%/26.7%) at 200 gCO₂/kWh.
//! [`advisor`] turns the curves into the paper's Insight 8/9
//! recommendations ("in regions with high carbon intensity, upgrades can
//! happen when the new generation is released … in regions with an
//! abundant amount of green energy, upgrading would be carbon-friendly
//! only if the system is expected to serve for at least five years").
//!
//! # Example
//!
//! ```
//! use hpcarbon_upgrade::savings::UpgradeScenario;
//! use hpcarbon_workloads::{benchmarks::Suite, nodes::NodeGen};
//! use hpcarbon_units::CarbonIntensity;
//!
//! let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
//! let high = CarbonIntensity::from_g_per_kwh(400.0);
//! let low = CarbonIntensity::from_g_per_kwh(20.0);
//! let t_high = s.break_even(high).unwrap();
//! let t_low = s.break_even(low).unwrap();
//! assert!(t_high.as_years() < 0.5);   // "less than half a year"
//! assert!(t_low.as_years() > 5.0);    // "about five years or more"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod future;
pub mod plan;
pub mod savings;

pub use advisor::{Recommendation, UpgradeAdvisor};
pub use future::{break_even_on_trace, DecarbonizationScenario};
pub use plan::{compare_p100_plans, UpgradePlan};
pub use savings::{SavingsCurve, UpgradeScenario, UsageLevel};
