//! Turning savings curves into procurement recommendations — the paper's
//! Insight 8/9 decision rules.

use crate::savings::UpgradeScenario;
use hpcarbon_units::{CarbonIntensity, CarbonMass, TimeSpan};

/// The advisor's verdict for one upgrade scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recommendation {
    /// Break-even is comfortably inside the planned lifetime: upgrade.
    Upgrade {
        /// Time to amortize the embodied carbon.
        break_even: TimeSpan,
        /// Net carbon saved over the planned lifetime.
        lifetime_saving: CarbonMass,
    },
    /// Break-even happens, but only near/after the planned lifetime:
    /// extend the current hardware instead ("extending the hardware
    /// lifetime could be a worthy option").
    ExtendLifetime {
        /// Time to amortize the embodied carbon.
        break_even: TimeSpan,
        /// Minimum service life for the upgrade to pay off.
        required_lifetime: TimeSpan,
    },
    /// The upgrade never pays off at this intensity (e.g. the new node is
    /// not more energy-efficient for this workload, or intensity is ~0).
    KeepHardware,
}

impl core::fmt::Display for Recommendation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Recommendation::Upgrade {
                break_even,
                lifetime_saving,
            } => write!(
                f,
                "UPGRADE (pays off in {break_even}, saves {lifetime_saving} over the horizon)"
            ),
            Recommendation::ExtendLifetime {
                break_even,
                required_lifetime,
            } => write!(
                f,
                "EXTEND LIFETIME (break-even {break_even}; worthwhile only if the system serves ≥ {required_lifetime})"
            ),
            Recommendation::KeepHardware => write!(f, "KEEP HARDWARE (upgrade never pays off)"),
        }
    }
}

/// Evaluates upgrade scenarios against a planned system lifetime.
#[derive(Debug, Clone, Copy)]
pub struct UpgradeAdvisor {
    /// Planned remaining service life of the system.
    pub planned_lifetime: TimeSpan,
    /// Safety margin: break-even must land within this fraction of the
    /// lifetime to recommend upgrading (paying off in the final weeks is
    /// not a robust plan).
    pub margin: f64,
}

impl UpgradeAdvisor {
    /// An advisor with the paper's five-year evaluation horizon and a 80%
    /// margin.
    pub fn with_five_year_horizon() -> UpgradeAdvisor {
        UpgradeAdvisor {
            planned_lifetime: TimeSpan::from_years(5.0),
            margin: 0.8,
        }
    }

    /// The verdict for `scenario` at `intensity`.
    pub fn recommend(
        &self,
        scenario: &UpgradeScenario,
        intensity: CarbonIntensity,
    ) -> Recommendation {
        let Some(break_even) = scenario.break_even(intensity) else {
            return Recommendation::KeepHardware;
        };
        let window = self.planned_lifetime * self.margin;
        if break_even <= window {
            let keep = scenario.carbon_keep(self.planned_lifetime, intensity);
            let upgrade = scenario.carbon_upgrade(self.planned_lifetime, intensity);
            Recommendation::Upgrade {
                break_even,
                lifetime_saving: keep - upgrade,
            }
        } else {
            Recommendation::ExtendLifetime {
                break_even,
                required_lifetime: break_even * (1.0 / self.margin),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::IntensityLevel;
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn scenario() -> UpgradeScenario {
        UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp)
    }

    #[test]
    fn high_intensity_recommends_upgrade() {
        // Insight 8: "If the energy source is less green, a quicker
        // upgrade may be desirable."
        let advisor = UpgradeAdvisor::with_five_year_horizon();
        let r = advisor.recommend(&scenario(), IntensityLevel::High.intensity());
        match r {
            Recommendation::Upgrade {
                break_even,
                lifetime_saving,
            } => {
                assert!(break_even.as_years() < 0.5);
                assert!(lifetime_saving.as_kg() > 0.0);
            }
            other => panic!("expected Upgrade, got {other:?}"),
        }
    }

    #[test]
    fn low_intensity_recommends_extension() {
        // Insight 8: "esp. if the center already runs primarily on
        // renewable energy sources … extending the hardware lifetime could
        // be a worthy option."
        let advisor = UpgradeAdvisor::with_five_year_horizon();
        let r = advisor.recommend(&scenario(), IntensityLevel::Low.intensity());
        match r {
            Recommendation::ExtendLifetime {
                break_even,
                required_lifetime,
            } => {
                assert!(break_even.as_years() > 4.0);
                assert!(required_lifetime > break_even);
            }
            other => panic!("expected ExtendLifetime, got {other:?}"),
        }
    }

    #[test]
    fn zero_intensity_keeps_hardware() {
        let advisor = UpgradeAdvisor::with_five_year_horizon();
        let r = advisor.recommend(&scenario(), CarbonIntensity::from_g_per_kwh(0.0));
        assert_eq!(r, Recommendation::KeepHardware);
    }

    #[test]
    fn lifetime_saving_consistency() {
        // If recommended, saving over the lifetime must equal
        // keep(t) - upgrade(t) at the horizon.
        let advisor = UpgradeAdvisor::with_five_year_horizon();
        let s = scenario();
        let i = IntensityLevel::Medium.intensity();
        if let Recommendation::Upgrade {
            lifetime_saving, ..
        } = advisor.recommend(&s, i)
        {
            let manual = s.carbon_keep(advisor.planned_lifetime, i)
                - s.carbon_upgrade(advisor.planned_lifetime, i);
            assert!((lifetime_saving.as_g() - manual.as_g()).abs() < 1e-6);
        } else {
            panic!("medium intensity should recommend upgrading");
        }
    }

    #[test]
    fn shorter_horizon_flips_the_verdict() {
        // The same intensity can flip from Upgrade to ExtendLifetime when
        // the planned lifetime shrinks — the paper's point that the
        // decision depends on "the expected operating lifetime".
        let s = scenario();
        let i = IntensityLevel::Medium.intensity();
        let long = UpgradeAdvisor {
            planned_lifetime: TimeSpan::from_years(5.0),
            margin: 0.8,
        };
        let short = UpgradeAdvisor {
            planned_lifetime: TimeSpan::from_years(0.5),
            margin: 0.8,
        };
        assert!(matches!(
            long.recommend(&s, i),
            Recommendation::Upgrade { .. }
        ));
        assert!(matches!(
            short.recommend(&s, i),
            Recommendation::ExtendLifetime { .. }
        ));
    }
}
