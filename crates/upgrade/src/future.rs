//! Beyond constant intensity: hourly-trace and grid-decarbonization
//! upgrade analysis.
//!
//! The paper's Fig. 8 holds intensity constant per column, and Insight 8
//! warns that upgrades stop paying off "if the center already runs
//! primarily on renewable energy sources, **as could be the case in the
//! future for many centers**". This module makes both refinements
//! first-class:
//!
//! - [`break_even_on_trace`]: amortization against a real hourly trace
//!   (the timing of an upgrade relative to the grid's seasons matters);
//! - [`DecarbonizationScenario`]: a grid whose annual-mean intensity
//!   declines geometrically toward a renewable floor, under which
//!   break-even times stretch — quantifying exactly when "extending the
//!   hardware lifetime" becomes the carbon-optimal choice.

use crate::savings::UpgradeScenario;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_units::{CarbonIntensity, TimeSpan};

/// Break-even of `scenario` against an hourly intensity trace, starting at
/// `start_hour` (hour-of-year). The trace repeats annually. Returns `None`
/// when the upgrade saves no energy, or when amortization would take more
/// than `max_years`.
pub fn break_even_on_trace(
    scenario: &UpgradeScenario,
    trace: &IntensityTrace,
    start_hour: u32,
    max_years: f64,
) -> Option<TimeSpan> {
    let annual_saving_kwh = scenario.annual_energy_saving().as_kwh();
    if annual_saving_kwh <= 0.0 {
        return None;
    }
    let hourly_saving_kwh = annual_saving_kwh / 8760.0;
    let target_g = scenario.upgrade_embodied().as_g();
    let len = trace.series().len() as u32;
    let max_hours = (max_years * 8760.0) as u64;
    let mut saved_g = 0.0;
    for h in 0..max_hours {
        let idx = ((u64::from(start_hour) + h) % u64::from(len)) as u32;
        saved_g += hourly_saving_kwh * trace.at_index(idx).as_g_per_kwh();
        if saved_g >= target_g {
            // Linear interpolation within the final hour.
            let overshoot = (saved_g - target_g)
                / (hourly_saving_kwh * trace.at_index(idx).as_g_per_kwh()).max(1e-12);
            return Some(TimeSpan::from_hours((h + 1) as f64 - overshoot));
        }
    }
    None
}

/// A grid whose annual-mean intensity declines geometrically toward a
/// renewable floor: `I(t) = floor + (I0 - floor) * (1 - decline)^t`.
#[derive(Debug, Clone, Copy)]
pub struct DecarbonizationScenario {
    /// Fractional decline of the above-floor intensity per year
    /// (e.g. 0.08 = 8%/year, roughly the GB grid's 2010s trajectory).
    pub annual_decline: f64,
    /// The renewable-dominated floor the grid approaches (the paper uses
    /// 20 gCO₂/kWh, "the carbon intensity of hydropower").
    pub floor: CarbonIntensity,
}

impl DecarbonizationScenario {
    /// Creates a scenario.
    ///
    /// # Panics
    /// If `annual_decline` is outside `[0, 1)` or the floor is negative.
    pub fn new(annual_decline: f64, floor: CarbonIntensity) -> DecarbonizationScenario {
        assert!(
            (0.0..1.0).contains(&annual_decline),
            "decline must be in [0,1)"
        );
        assert!(floor.as_g_per_kwh() >= 0.0);
        DecarbonizationScenario {
            annual_decline,
            floor,
        }
    }

    /// Grid intensity `years` after the reference point, starting from
    /// `initial`.
    pub fn intensity_at(&self, initial: CarbonIntensity, years: f64) -> CarbonIntensity {
        let floor = self.floor.as_g_per_kwh();
        let above = (initial.as_g_per_kwh() - floor).max(0.0);
        CarbonIntensity::from_g_per_kwh(floor + above * (1.0 - self.annual_decline).powf(years))
    }

    /// Cumulative intensity-years `∫₀ᵗ I(τ) dτ` (gCO₂/kWh · years) — the
    /// factor that converts a constant annual energy saving into carbon.
    pub fn cumulative_intensity(&self, initial: CarbonIntensity, years: f64) -> f64 {
        let floor = self.floor.as_g_per_kwh();
        let above = (initial.as_g_per_kwh() - floor).max(0.0);
        if self.annual_decline == 0.0 {
            return initial.as_g_per_kwh() * years;
        }
        let r = 1.0 - self.annual_decline;
        floor * years + above * (1.0 - r.powf(years)) / (-r.ln())
    }

    /// Break-even of an upgrade on this decarbonizing grid, solved by
    /// bisection on the cumulative-intensity integral. `None` when the
    /// upgrade saves no energy or does not amortize within `max_years`.
    pub fn break_even(
        &self,
        scenario: &UpgradeScenario,
        initial: CarbonIntensity,
        max_years: f64,
    ) -> Option<TimeSpan> {
        let annual_saving_kwh = scenario.annual_energy_saving().as_kwh();
        if annual_saving_kwh <= 0.0 {
            return None;
        }
        let target = scenario.upgrade_embodied().as_g();
        let saved = |t: f64| annual_saving_kwh * self.cumulative_intensity(initial, t);
        if saved(max_years) < target {
            return None;
        }
        let (mut lo, mut hi) = (0.0, max_years);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if saved(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(TimeSpan::from_years(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_timeseries::series::HourlySeries;
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn scenario() -> UpgradeScenario {
        UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp)
    }

    fn constant_trace(g: f64) -> IntensityTrace {
        IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, g))
    }

    #[test]
    fn trace_break_even_matches_constant_case() {
        let s = scenario();
        let constant = s
            .break_even(CarbonIntensity::from_g_per_kwh(200.0))
            .unwrap();
        let traced = break_even_on_trace(&s, &constant_trace(200.0), 0, 20.0).unwrap();
        assert!(
            (traced.as_hours() - constant.as_hours()).abs() < 2.0,
            "traced {} vs constant {}",
            traced.as_hours(),
            constant.as_hours()
        );
    }

    #[test]
    fn upgrade_timing_matters_on_seasonal_grids() {
        // A grid that is dirty in winter (first/last quarter) and clean in
        // summer: upgrading at new year amortizes faster than upgrading
        // just before the clean season.
        let seasonal = IntensityTrace::new(
            OperatorId::Eso,
            HourlySeries::from_fn(2021, |st| {
                let doy = st.date().day_of_year();
                if (90..275).contains(&doy) {
                    60.0
                } else {
                    420.0
                }
            }),
        );
        // P100 -> A100 amortizes fast enough to finish inside the dirty
        // season when started at new year; a spring start must first sit
        // through ~6 clean months earning almost nothing.
        let s = UpgradeScenario::paper_default(NodeGen::P100Node, NodeGen::A100Node, Suite::Nlp);
        let winter_start = break_even_on_trace(&s, &seasonal, 0, 30.0).unwrap();
        let spring_start = break_even_on_trace(&s, &seasonal, 24 * 95, 30.0).unwrap();
        assert!(
            winter_start.as_hours() * 2.0 < spring_start.as_hours(),
            "winter {} vs spring {}",
            winter_start.as_hours(),
            spring_start.as_hours()
        );
    }

    #[test]
    fn trace_break_even_none_when_no_saving() {
        // Reverse upgrade (newer -> older) saves no energy.
        let s = UpgradeScenario::paper_default(NodeGen::A100Node, NodeGen::P100Node, Suite::Nlp);
        assert!(break_even_on_trace(&s, &constant_trace(400.0), 0, 10.0).is_none());
    }

    #[test]
    fn zero_decline_matches_constant_intensity() {
        let d = DecarbonizationScenario::new(0.0, CarbonIntensity::from_g_per_kwh(20.0));
        let s = scenario();
        let constant = s
            .break_even(CarbonIntensity::from_g_per_kwh(200.0))
            .unwrap();
        let declined = d
            .break_even(&s, CarbonIntensity::from_g_per_kwh(200.0), 50.0)
            .unwrap();
        assert!((declined.as_years() - constant.as_years()).abs() < 1e-3);
    }

    #[test]
    fn decarbonization_stretches_break_even() {
        let s = scenario();
        let initial = CarbonIntensity::from_g_per_kwh(200.0);
        let mut last = 0.0;
        for decline in [0.0, 0.05, 0.15, 0.30] {
            let d = DecarbonizationScenario::new(decline, CarbonIntensity::from_g_per_kwh(20.0));
            let be = d.break_even(&s, initial, 100.0).unwrap().as_years();
            assert!(be > last, "decline {decline}: {be} <= {last}");
            last = be;
        }
    }

    #[test]
    fn intensity_decays_toward_floor() {
        let d = DecarbonizationScenario::new(0.10, CarbonIntensity::from_g_per_kwh(20.0));
        let i0 = CarbonIntensity::from_g_per_kwh(400.0);
        assert_eq!(d.intensity_at(i0, 0.0).as_g_per_kwh(), 400.0);
        let at10 = d.intensity_at(i0, 10.0).as_g_per_kwh();
        assert!(at10 < 400.0 && at10 > 20.0);
        let at100 = d.intensity_at(i0, 100.0).as_g_per_kwh();
        assert!((at100 - 20.0).abs() < 1.0, "{at100}");
    }

    #[test]
    fn cumulative_intensity_is_consistent_with_numeric_integral() {
        let d = DecarbonizationScenario::new(0.12, CarbonIntensity::from_g_per_kwh(25.0));
        let i0 = CarbonIntensity::from_g_per_kwh(350.0);
        let analytic = d.cumulative_intensity(i0, 7.0);
        let steps = 70_000;
        let dt = 7.0 / steps as f64;
        let numeric: f64 = (0..steps)
            .map(|k| d.intensity_at(i0, (k as f64 + 0.5) * dt).as_g_per_kwh() * dt)
            .sum();
        assert!(
            (analytic - numeric).abs() / numeric < 1e-4,
            "analytic {analytic} numeric {numeric}"
        );
    }

    #[test]
    fn fast_decarbonization_can_defeat_the_upgrade_within_horizon() {
        // On a grid racing to the floor, the saving stream collapses and
        // the upgrade cannot amortize within a decade — Insight 8's
        // "extending the hardware lifetime could be a worthy option".
        let s = scenario();
        let d = DecarbonizationScenario::new(0.60, CarbonIntensity::from_g_per_kwh(5.0));
        let be = d.break_even(&s, CarbonIntensity::from_g_per_kwh(100.0), 10.0);
        assert!(be.is_none(), "{be:?}");
    }
}
