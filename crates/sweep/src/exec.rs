//! The streaming sweep executor: evaluate a grid over worker threads,
//! restore grid order, and feed pluggable sinks.
//!
//! ## Architecture
//!
//! [`Sweep`] is the entry point — a builder over a [`ScenarioGrid`]:
//!
//! ```
//! use hpcarbon_sweep::{CsvSink, ScenarioGrid, Sweep, SweepConfig};
//!
//! let grid = ScenarioGrid::quick();
//! let mut csv = CsvSink::new(Vec::new());
//! let report = Sweep::over(&grid)
//!     .config(SweepConfig::fast())
//!     .threads(2)
//!     .sink(&mut csv)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.len(), grid.len());
//! assert_eq!(report.errors, 0);
//! ```
//!
//! `run` builds one shared [`SweepContext`] (traces, catalogs and job
//! lists hoisted out of the per-scenario path), then evaluates the
//! shard's id range:
//!
//! - **workers** claim scenario ids from an atomic cursor, decode them
//!   with [`ScenarioGrid::scenario_at`] (no grid materialization), and
//!   push `(id, row)` results into a bounded channel;
//! - the **merge** (caller thread) holds out-of-order arrivals in a
//!   pending min-heap and forwards rows to the sinks in strictly
//!   ascending id order;
//! - a **reorder window** throttles workers: nobody may run more than
//!   `window` ids ahead of the last forwarded row, so the heap, the
//!   channel and the in-flight rows are all bounded by
//!   O(threads + window) — sweep memory is independent of grid size.
//!
//! Determinism: rows are pure functions of their scenario (randomness
//! forks from the seed dimension, never thread state) and sinks see
//! them in grid order, so emitted bytes are **identical for every
//! thread count and shard split** — the property CI `cmp`s.
//!
//! `threads(1)` bypasses the machinery entirely (a plain in-order loop)
//! and is the byte reference the streaming path is tested against.

use crate::context::SweepContext;
use crate::grid::ScenarioGrid;
use crate::shard::ShardSpec;
use crate::sink::{CollectSink, RowSink, SinkDigest};
use crate::summary::SummaryAccumulator;
use crate::table::{summary_markdown, MetricSummary, SweepRow};
use hpcarbon_api::providers::EmbodiedSource;
use hpcarbon_api::ForecastModel;
use hpcarbon_sim::par::worker_count;
use std::cmp::{Ordering as CmpOrdering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Per-scenario workload knobs shared by every grid point.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Simulated grid year.
    pub year: i32,
    /// Jobs in each scenario's scheduling trace.
    pub jobs_per_scenario: usize,
    /// GPUs in each scenario's cluster.
    pub cluster_gpus: u32,
    /// Forecast model driving shifting decisions. `None` plans on the
    /// actual trace (perfect knowledge), the historical behaviour — and
    /// keeps every emitted byte identical to pre-forecast sweeps.
    pub forecast: Option<ForecastModel>,
}

impl SweepConfig {
    /// The default workload: a 2021 grid year, 120-job traces, 96 GPUs.
    pub fn paper_default() -> SweepConfig {
        SweepConfig {
            year: 2021,
            jobs_per_scenario: 120,
            cluster_gpus: 96,
            forecast: None,
        }
    }

    /// A reduced workload for tests and demos (40-job traces).
    pub fn fast() -> SweepConfig {
        SweepConfig {
            year: 2021,
            jobs_per_scenario: 40,
            cluster_gpus: 96,
            forecast: None,
        }
    }
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig::paper_default()
    }
}

/// Why a sweep run failed. Infeasible scenarios are **not** errors —
/// they become error rows and the sweep completes; this type covers
/// failures of the run itself.
#[derive(Debug)]
pub enum SweepError {
    /// A sink failed; the sweep was aborted mid-stream and the sink
    /// outputs are incomplete.
    Sink(io::Error),
    /// The shard specification does not describe a partition slice.
    Shard {
        /// Offending zero-based index.
        index: usize,
        /// Declared shard count.
        count: usize,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Sink(e) => write!(f, "sweep sink failed: {e}"),
            SweepError::Shard { index, count } => {
                write!(
                    f,
                    "invalid shard {index}/{count}: index must be < count ≥ 1"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Sink(e) => Some(e),
            SweepError::Shard { .. } => None,
        }
    }
}

/// What a completed sweep run produced: stream statistics, the online
/// summary, the top-k ranking, and the digests of every byte-emitting
/// sink (attachment order) — everything the CLI prints and shard
/// manifests record, with no row table behind it.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Total rows of the full grid (all shards).
    pub grid_len: usize,
    /// The id range this run evaluated (the full grid when unsharded).
    pub rows: Range<usize>,
    /// Rows that evaluated successfully.
    pub ok: usize,
    /// Rows that failed soft (infeasible scenarios).
    pub errors: usize,
    /// Min/mean/max of the headline metrics over this run's ok rows.
    pub summary: Vec<MetricSummary>,
    /// The lowest-carbon rows of this run, ascending, at most `top`.
    pub top: Vec<SweepRow>,
    /// Digests of the attached byte-emitting sinks, attachment order.
    pub digests: Vec<SinkDigest>,
}

impl SweepReport {
    /// Rows evaluated by this run.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the run evaluated no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The summary as an aligned Markdown table (terminal-friendly).
    pub fn summary_table(&self) -> String {
        summary_markdown(&self.summary)
    }
}

/// A configured sweep run: `Sweep::over(&grid)` + chained knobs, then
/// [`Sweep::run`]. See the [module docs](self) for the execution model.
pub struct Sweep<'a> {
    grid: &'a ScenarioGrid,
    config: SweepConfig,
    threads: Option<usize>,
    shard: Option<(usize, usize)>,
    top: usize,
    sinks: Vec<&'a mut dyn RowSink>,
    embodied: Option<Arc<dyn EmbodiedSource>>,
    trace_files: Vec<(
        hpcarbon_grid::regions::OperatorId,
        Arc<hpcarbon_grid::trace::IntensityTrace>,
    )>,
}

impl<'a> Sweep<'a> {
    /// Starts a sweep over `grid` with the paper-default workload, the
    /// available parallelism, no shard, and a top-5 ranking.
    pub fn over(grid: &'a ScenarioGrid) -> Sweep<'a> {
        Sweep {
            grid,
            config: SweepConfig::paper_default(),
            threads: None,
            shard: None,
            top: 5,
            sinks: Vec::new(),
            embodied: None,
            trace_files: Vec::new(),
        }
    }

    /// Sets the per-scenario workload knobs.
    pub fn config(mut self, config: SweepConfig) -> Sweep<'a> {
        self.config = config;
        self
    }

    /// Forces the worker count (1 = the serial byte-reference path).
    pub fn threads(mut self, threads: usize) -> Sweep<'a> {
        self.threads = Some(threads.max(1));
        self
    }

    /// Restricts the run to shard `index` of a `count`-way partition
    /// (see [`ShardSpec::range`]). Validated at [`Sweep::run`].
    pub fn shard(mut self, index: usize, count: usize) -> Sweep<'a> {
        self.shard = Some((index, count));
        self
    }

    /// Sets how many lowest-carbon rows the report retains (default 5).
    pub fn top(mut self, k: usize) -> Sweep<'a> {
        self.top = k;
        self
    }

    /// Attaches a sink; rows stream to every attached sink in grid
    /// order. May be called repeatedly (e.g. CSV + JSON in one pass).
    pub fn sink(mut self, sink: &'a mut dyn RowSink) -> Sweep<'a> {
        self.sinks.push(sink);
        self
    }

    /// Resolves the grid's `system` dimension (and the all-flash
    /// what-if's replacement part) against an explicit embodied source
    /// — the `hpcarbon sweep --catalog DIR` path. Defaults to the
    /// built-in Table 1/2 tables.
    pub fn embodied(mut self, source: Arc<dyn EmbodiedSource>) -> Sweep<'a> {
        self.embodied = Some(source);
        self
    }

    /// Registers an ingested trace file as `region`'s
    /// [`hpcarbon_api::TraceSource::File`] trace — the
    /// `hpcarbon sweep --trace-file` path. Repeatable, one file per
    /// region; `file` rows for regions without a registration fail soft
    /// with the API's "no trace file registered" error.
    pub fn trace_file(
        mut self,
        region: hpcarbon_grid::regions::OperatorId,
        trace: Arc<hpcarbon_grid::trace::IntensityTrace>,
    ) -> Sweep<'a> {
        self.trace_files.push((region, trace));
        self
    }

    /// Evaluates the configured slice of the grid, streaming every row
    /// through the attached sinks in grid order.
    ///
    /// # Errors
    /// [`SweepError::Shard`] for a malformed shard spec;
    /// [`SweepError::Sink`] when a sink fails (the stream aborts and
    /// that sink's output is incomplete).
    pub fn run(mut self) -> Result<SweepReport, SweepError> {
        let shard = match self.shard {
            Some((index, count)) => {
                if count == 0 || index >= count {
                    return Err(SweepError::Shard { index, count });
                }
                Some(ShardSpec { index, count })
            }
            None => None,
        };
        let grid_len = self.grid.len();
        let range = shard.map_or(0..grid_len, |s| s.range(grid_len));
        let workers = self
            .threads
            .unwrap_or_else(|| worker_count(range.len()))
            .clamp(1, range.len().max(1));
        let embodied = self
            .embodied
            .take()
            .unwrap_or_else(|| Arc::new(hpcarbon_api::CatalogEmbodied));
        let ctx = SweepContext::build_full(
            self.grid,
            self.config,
            Some(workers),
            embodied,
            std::mem::take(&mut self.trace_files),
        );
        let mut acc = SummaryAccumulator::new(self.top);

        for sink in self.sinks.iter_mut() {
            sink.begin().map_err(SweepError::Sink)?;
        }
        if workers == 1 {
            for id in range.clone() {
                let sc = self.grid.scenario_at(id);
                let row = SweepRow {
                    scenario: sc,
                    outcome: ctx.run(&sc),
                };
                deliver(&mut self.sinks, &mut acc, &row).map_err(SweepError::Sink)?;
            }
        } else {
            stream(
                self.grid,
                &ctx,
                range.clone(),
                workers,
                &mut self.sinks,
                &mut acc,
            )
            .map_err(SweepError::Sink)?;
        }
        for sink in self.sinks.iter_mut() {
            sink.finish().map_err(SweepError::Sink)?;
        }
        Ok(SweepReport {
            grid_len,
            rows: range,
            ok: acc.ok_count(),
            errors: acc.error_count(),
            summary: acc.summary(),
            top: acc.top(),
            digests: self.sinks.iter().filter_map(|s| s.digest()).collect(),
        })
    }
}

/// Forwards one in-order row to every sink, then the accumulator.
fn deliver(
    sinks: &mut [&mut dyn RowSink],
    acc: &mut SummaryAccumulator,
    row: &SweepRow,
) -> io::Result<()> {
    for sink in sinks.iter_mut() {
        sink.row(row)?;
    }
    acc.row(row)
}

/// A worker result awaiting its turn in the merge heap, ordered by id.
struct Pending(usize, SweepRow);

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.0 == other.0
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> CmpOrdering {
        self.0.cmp(&other.0)
    }
}

/// The order-restoring merge: rows arrive in any completion order, come
/// out in strictly ascending id order. Rows ahead of the next expected
/// id wait in a min-heap; [`ReorderBuffer::pop_ready`] releases the
/// contiguous run as soon as the gap closes. The proptest suite drives
/// this with arbitrary permutations.
pub(crate) struct ReorderBuffer {
    pending: BinaryHeap<Reverse<Pending>>,
    expected: usize,
}

impl ReorderBuffer {
    /// A buffer expecting `start` as its first id.
    pub(crate) fn new(start: usize) -> ReorderBuffer {
        ReorderBuffer {
            pending: BinaryHeap::new(),
            expected: start,
        }
    }

    /// The next id the merge will release.
    pub(crate) fn expected(&self) -> usize {
        self.expected
    }

    /// Rows currently held out of order.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn held(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one completed row (any order, each id exactly once).
    pub(crate) fn push(&mut self, id: usize, row: SweepRow) {
        debug_assert!(id >= self.expected, "id {id} released already");
        self.pending.push(Reverse(Pending(id, row)));
    }

    /// Releases the next in-order row, if it has arrived.
    pub(crate) fn pop_ready(&mut self) -> Option<SweepRow> {
        if self
            .pending
            .peek()
            .is_some_and(|Reverse(p)| p.0 == self.expected)
        {
            // `?` is unreachable here (the heap was just peeked Some)
            // but keeps this path panic-free.
            let Reverse(Pending(_, row)) = self.pending.pop()?;
            self.expected += 1;
            Some(row)
        } else {
            None
        }
    }
}

/// The multi-threaded streaming engine. See the module docs for the
/// design; the invariants that keep it live and bounded:
///
/// - the reorder gate admits any id within `window` of the oldest
///   unforwarded row, so the worker holding the row the merge is
///   waiting for is never gated (its `id - start` is exactly the
///   forwarded count);
/// - the merge thread always drains the channel, so senders blocked on
///   a full channel always progress;
/// - on abort (sink error) the flag is raised under the gate lock and
///   the receiver is dropped, releasing workers from both the gate and
///   the channel.
fn stream(
    grid: &ScenarioGrid,
    ctx: &SweepContext,
    range: Range<usize>,
    workers: usize,
    sinks: &mut [&mut dyn RowSink],
    acc: &mut SummaryAccumulator,
) -> io::Result<()> {
    let start = range.start;
    let window = (workers * 4).max(64);
    let cursor = AtomicUsize::new(start);
    // Count of rows forwarded to sinks; the condvar gate wakes workers
    // as it advances.
    let forwarded = Mutex::new(0usize);
    let gate = Condvar::new();
    let abort = AtomicBool::new(false);
    let (tx, rx) = sync_channel::<Pending>(window);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let forwarded = &forwarded;
            let gate = &gate;
            let abort = &abort;
            let range = range.clone();
            let ctx = &ctx;
            scope.spawn(move || loop {
                let id = cursor.fetch_add(1, Ordering::Relaxed);
                if id >= range.end {
                    break;
                }
                {
                    // The gate guards a plain u64 watermark that is
                    // written in one store, so recovering a poisoned
                    // lock can never observe torn state.
                    let mut fwd = forwarded.lock().unwrap_or_else(PoisonError::into_inner);
                    while !abort.load(Ordering::Relaxed) && id - start >= *fwd + window {
                        fwd = gate.wait(fwd).unwrap_or_else(PoisonError::into_inner);
                    }
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                }
                let sc = grid.scenario_at(id);
                let row = SweepRow {
                    scenario: sc,
                    outcome: ctx.run(&sc),
                };
                if tx.send(Pending(id, row)).is_err() {
                    break; // receiver gone: the run was aborted
                }
            });
        }
        drop(tx);

        let mut merge = ReorderBuffer::new(start);
        let mut failure: Option<io::Error> = None;
        'merge: while merge.expected() < range.end {
            let Pending(id, row) = match rx.recv() {
                Ok(item) => item,
                // All workers exited early; the scope join below will
                // propagate whatever panicked.
                Err(_) => break,
            };
            merge.push(id, row);
            let before = merge.expected();
            while let Some(row) = merge.pop_ready() {
                if let Err(e) = deliver(sinks, acc, &row) {
                    failure = Some(e);
                    break 'merge;
                }
            }
            if merge.expected() != before {
                let mut fwd = forwarded.lock().unwrap_or_else(PoisonError::into_inner);
                *fwd = merge.expected() - start;
                drop(fwd);
                gate.notify_all();
            }
        }
        // Tear down: raise the abort flag under the gate lock (so no
        // worker re-checks it between testing and waiting) and drop the
        // receiver to unblock senders. On the success path every worker
        // has already exited via cursor exhaustion.
        {
            let _fwd = forwarded.lock().unwrap_or_else(PoisonError::into_inner);
            abort.store(true, Ordering::Relaxed);
        }
        gate.notify_all();
        drop(rx);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// The legacy batched executor.
///
/// Superseded by the streaming [`Sweep`] builder, which bounds memory,
/// shards, and streams to sinks; this wrapper collects every row in
/// memory like the original API did. Migrate:
///
/// ```text
/// SweepExecutor::new(cfg).with_threads(n).run(&grid)
///   ⇒ Sweep::over(&grid).config(cfg).threads(n).sink(&mut sink).run()
/// ```
#[deprecated(note = "use the streaming `Sweep` builder: \
            `Sweep::over(&grid).config(cfg).threads(n).sink(&mut sink).run()`")]
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    /// Shared workload knobs.
    pub config: SweepConfig,
    /// Forced worker count; `None` uses the available parallelism.
    pub threads: Option<usize>,
}

#[allow(deprecated)]
impl SweepExecutor {
    /// Creates an executor with automatic thread count.
    pub fn new(config: SweepConfig) -> SweepExecutor {
        SweepExecutor {
            config,
            threads: None,
        }
    }

    /// Forces the worker count (1 = serial reference run).
    pub fn with_threads(mut self, threads: usize) -> SweepExecutor {
        self.threads = Some(threads.max(1));
        self
    }

    /// Expands and evaluates the grid, one row per scenario, in grid
    /// order. Infeasible scenarios become error rows; the batch always
    /// completes.
    pub fn run(&self, grid: &ScenarioGrid) -> crate::table::SweepResults {
        let mut collect = CollectSink::new();
        let mut sweep = Sweep::over(grid).config(self.config).sink(&mut collect);
        if let Some(threads) = self.threads {
            sweep = sweep.threads(threads);
        }
        // lint: allow(panic-in-library) -- CollectSink::deliver is infallible (it only pushes into a Vec), so the only Err source of run() cannot fire
        sweep.run().expect("in-memory collection cannot fail");
        collect.into_results()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CsvSink, JsonSink};

    fn run_bytes(threads: usize, shard: Option<(usize, usize)>) -> (Vec<u8>, Vec<u8>, SweepReport) {
        let grid = ScenarioGrid::quick();
        let mut csv = CsvSink::new(Vec::new());
        let mut json = JsonSink::new(Vec::new());
        let mut sweep = Sweep::over(&grid)
            .config(SweepConfig::fast())
            .threads(threads)
            .sink(&mut csv)
            .sink(&mut json);
        if let Some((i, n)) = shard {
            sweep = sweep.shard(i, n);
        }
        let report = sweep.run().unwrap();
        (csv.into_inner(), json.into_inner(), report)
    }

    #[test]
    fn streaming_is_byte_identical_to_serial() {
        let (csv1, json1, r1) = run_bytes(1, None);
        for threads in [2, 3, 8] {
            let (csv, json, r) = run_bytes(threads, None);
            assert_eq!(csv, csv1, "threads={threads}");
            assert_eq!(json, json1, "threads={threads}");
            assert_eq!(r.ok, r1.ok);
            assert_eq!(r.digests, r1.digests);
        }
    }

    #[test]
    fn report_carries_summary_top_and_digests() {
        let (csv, _, report) = run_bytes(4, None);
        assert_eq!(report.grid_len, 16);
        assert_eq!(report.rows, 0..16);
        assert_eq!(report.ok + report.errors, report.len());
        assert!(report.summary.iter().any(|m| m.metric == "sched_kg"));
        assert_eq!(report.top.len(), 5);
        for w in report.top.windows(2) {
            let a = w[0].outcome.as_ref().unwrap().sched_carbon_kg;
            let b = w[1].outcome.as_ref().unwrap().sched_carbon_kg;
            assert!(a <= b);
        }
        assert_eq!(report.digests.len(), 2);
        assert_eq!(report.digests[0].bytes, csv.len() as u64);
        assert!(report.summary_table().contains("sched_kg"));
    }

    #[test]
    fn sharded_fragments_reassemble_the_unsharded_documents() {
        let (full_csv, full_json, full) = run_bytes(2, None);
        let grid = ScenarioGrid::quick();
        let mut csv = crate::sink::csv_header().into_bytes();
        let mut json = b"[\n".to_vec();
        let (mut ok, mut errors) = (0, 0);
        let count = 3;
        for index in 0..count {
            let mut csv_frag = CsvSink::fragment(Vec::new());
            let range = ShardSpec { index, count }.range(grid.len());
            let mut json_frag = JsonSink::fragment(Vec::new(), range.start > 0);
            let report = Sweep::over(&grid)
                .config(SweepConfig::fast())
                .threads(2)
                .shard(index, count)
                .sink(&mut csv_frag)
                .sink(&mut json_frag)
                .run()
                .unwrap();
            assert_eq!(report.rows, range);
            ok += report.ok;
            errors += report.errors;
            csv.extend_from_slice(&csv_frag.into_inner());
            json.extend_from_slice(&json_frag.into_inner());
        }
        json.extend_from_slice(b"\n]\n");
        assert_eq!(csv, full_csv);
        assert_eq!(json, full_json);
        assert_eq!(ok, full.ok);
        assert_eq!(errors, full.errors);
    }

    #[test]
    fn invalid_shard_specs_are_rejected() {
        let grid = ScenarioGrid::quick();
        for (i, n) in [(2, 2), (5, 3), (0, 0)] {
            match Sweep::over(&grid).shard(i, n).run() {
                Err(SweepError::Shard { index, count }) => {
                    assert_eq!((index, count), (i, n));
                }
                other => panic!("expected shard error, got {:?}", other.map(|r| r.rows)),
            }
        }
    }

    #[test]
    fn empty_grid_streams_zero_rows() {
        let grid = ScenarioGrid::new();
        let mut csv = CsvSink::new(Vec::new());
        let report = Sweep::over(&grid)
            .config(SweepConfig::fast())
            .sink(&mut csv)
            .run()
            .unwrap();
        assert!(report.is_empty());
        assert_eq!(report.grid_len, 0);
        assert!(report.summary.is_empty() && report.top.is_empty());
        assert_eq!(csv.into_inner(), crate::sink::csv_header().into_bytes());
    }

    #[test]
    fn sink_failure_aborts_the_stream_without_hanging() {
        struct FailAfter(usize);
        impl RowSink for FailAfter {
            fn row(&mut self, _: &SweepRow) -> io::Result<()> {
                if self.0 == 0 {
                    return Err(io::Error::other("sink quota exhausted"));
                }
                self.0 -= 1;
                Ok(())
            }
        }
        let grid = ScenarioGrid::quick();
        let mut sink = FailAfter(3);
        let err = Sweep::over(&grid)
            .config(SweepConfig::fast())
            .threads(4)
            .sink(&mut sink)
            .run()
            .unwrap_err();
        match err {
            SweepError::Sink(e) => assert!(e.to_string().contains("quota")),
            other => panic!("expected sink error, got {other}"),
        }
    }

    #[test]
    fn forecast_sweeps_are_deterministic_and_fill_the_oracle_columns() {
        let grid = ScenarioGrid::shifting();
        let mut cfg = SweepConfig::fast();
        cfg.forecast = Some(ForecastModel::Noisy { error_pct: 20 });
        let run = |threads| {
            let mut csv = CsvSink::new(Vec::new()).forecast_columns();
            let mut collect = CollectSink::new();
            Sweep::over(&grid)
                .config(cfg)
                .threads(threads)
                .sink(&mut csv)
                .sink(&mut collect)
                .run()
                .unwrap();
            (csv.into_inner(), collect)
        };
        let (csv1, rows) = run(1);
        let (csv4, _) = run(4);
        // Noisy forecasts fork from the scenario seed, never thread
        // state: emitted bytes are thread-count independent.
        assert_eq!(csv1, csv4);
        let mut engaged = 0;
        for r in rows.rows() {
            let o = r.outcome.as_ref().unwrap();
            let (kg, oracle_kg) = (o.shift_saved_kg, o.oracle_saved_kg.unwrap());
            assert!(o.oracle_saved_pct.is_some());
            // An imperfect planner never beats perfect knowledge
            // (within float formatting noise).
            assert!(kg <= oracle_kg + 1e-9, "{kg} > {oracle_kg}");
            if kg < oracle_kg {
                engaged += 1;
            }
        }
        assert!(engaged > 0, "the noisy forecast never cost anything");
    }

    #[test]
    fn registered_trace_files_back_the_file_source_dimension() {
        use hpcarbon_grid::regions::OperatorId;
        let grid = ScenarioGrid::quick().sources([crate::TraceSource::File]);
        let trace = Arc::new(hpcarbon_grid::synth::synthesize_year(
            OperatorId::Eso,
            2021,
            99,
        ));
        let mut collect = CollectSink::new();
        Sweep::over(&grid)
            .config(SweepConfig::fast())
            .threads(2)
            .trace_file(OperatorId::Eso, Arc::clone(&trace))
            .sink(&mut collect)
            .run()
            .unwrap();
        for r in collect.rows() {
            match r.scenario.region {
                // Registered region: rows evaluate against the file.
                OperatorId::Eso => {
                    let o = r.outcome.as_ref().unwrap();
                    assert_eq!(o.median_g_per_kwh, trace.boxplot().median);
                }
                // Unregistered region: soft error rows, batch completes.
                _ => {
                    let e = r.outcome.as_ref().unwrap_err().to_string();
                    assert!(e.contains("no trace file registered"), "{e}");
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_executor_still_answers() {
        let grid = ScenarioGrid::quick();
        let results = SweepExecutor::new(SweepConfig::fast())
            .with_threads(2)
            .run(&grid);
        assert_eq!(results.len(), grid.len());
        assert_eq!(results.error_count(), 0);
        let (csv, json, _) = run_bytes(2, None);
        assert_eq!(results.to_csv().into_bytes(), csv);
        assert_eq!(results.to_json().into_bytes(), json);
    }

    mod reorder_props {
        use super::*;
        use proptest::prelude::*;

        /// A cheap marker row: the scenario id doubles as the payload.
        fn marker(id: usize) -> SweepRow {
            let mut sc = ScenarioGrid::quick().scenario_at(0);
            sc.id = id;
            SweepRow {
                scenario: sc,
                outcome: Err(crate::ScenarioError::InvalidPue(crate::PueSpec::Constant(
                    0.5,
                ))),
            }
        }

        /// A seeded Fisher–Yates permutation of `0..n` (the vendored
        /// proptest has no shuffle strategy).
        fn permutation(n: usize, seed: u64) -> Vec<usize> {
            let mut rng = hpcarbon_sim::rng::SimRng::seed_from(seed);
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.index(i + 1);
                perm.swap(i, j);
            }
            perm
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The merge restores serial order from ANY completion
            /// order: pushing a random permutation of `start..start+n`
            /// releases exactly `start..start+n`, ascending.
            #[test]
            fn any_completion_order_releases_serial_order(
                start in 0usize..1000,
                n in 0usize..64,
                seed in 0u64..u64::MAX,
            ) {
                let perm = permutation(n, seed);
                let mut merge = ReorderBuffer::new(start);
                let mut released = Vec::new();
                for &offset in &perm {
                    merge.push(start + offset, marker(start + offset));
                    while let Some(row) = merge.pop_ready() {
                        released.push(row.scenario.id);
                    }
                }
                let expected: Vec<usize> = (start..start + n).collect();
                prop_assert_eq!(&released, &expected);
                prop_assert_eq!(merge.held(), 0);
                prop_assert_eq!(merge.expected(), start + n);
            }

            /// The buffer holds exactly the arrived-but-unreleasable
            /// rows — the quantity the live engine's reorder window
            /// bounds.
            #[test]
            fn held_rows_track_the_reorder_gap(seed in 0u64..u64::MAX) {
                let perm = permutation(48, seed);
                let mut merge = ReorderBuffer::new(0);
                for (step, &id) in perm.iter().enumerate() {
                    merge.push(id, marker(id));
                    while merge.pop_ready().is_some() {}
                    // Everything pushed so far that is >= expected is held.
                    let held_expected = perm[..=step]
                        .iter()
                        .filter(|&&v| v >= merge.expected())
                        .count();
                    prop_assert_eq!(merge.held(), held_expected);
                }
                prop_assert_eq!(merge.expected(), 48);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn infeasible_scenarios_do_not_abort_the_batch() {
        // Perlmutter has no HDD tier: its all-flash rows must fail soft.
        let grid = ScenarioGrid::quick().storage(crate::StorageVariant::ALL);
        let results = SweepExecutor::new(SweepConfig::fast()).run(&grid);
        assert_eq!(results.len(), grid.len());
        assert!(results.error_count() > 0);
        assert!(results.ok_count() > 0);
        assert_eq!(results.ok_count() + results.error_count(), results.len());
    }
}
