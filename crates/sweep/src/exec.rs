//! The batched executor: fan a grid out over worker threads.

use crate::grid::ScenarioGrid;
use crate::scenario::run_scenario;
use crate::table::{SweepResults, SweepRow};
use hpcarbon_sim::par::{par_map_workers, worker_count};

/// Per-scenario workload knobs shared by every grid point.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Simulated grid year.
    pub year: i32,
    /// Jobs in each scenario's scheduling trace.
    pub jobs_per_scenario: usize,
    /// GPUs in each scenario's cluster.
    pub cluster_gpus: u32,
}

impl SweepConfig {
    /// The default workload: a 2021 grid year, 120-job traces, 96 GPUs.
    pub fn paper_default() -> SweepConfig {
        SweepConfig {
            year: 2021,
            jobs_per_scenario: 120,
            cluster_gpus: 96,
        }
    }

    /// A reduced workload for tests and demos (40-job traces).
    pub fn fast() -> SweepConfig {
        SweepConfig {
            year: 2021,
            jobs_per_scenario: 40,
            cluster_gpus: 96,
        }
    }
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig::paper_default()
    }
}

/// Runs scenario grids over [`par_map_workers`].
///
/// Each work item evaluates [`run_scenario`], which derives all of its
/// randomness from the scenario's own seed ([`crate::scenario::Scenario::rng`]
/// forks named substreams). Results come back in grid order, so the
/// produced [`SweepResults`] — and everything emitted from it — is
/// **byte-identical for every `threads` setting**.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    /// Shared workload knobs.
    pub config: SweepConfig,
    /// Forced worker count; `None` uses the available parallelism.
    pub threads: Option<usize>,
}

impl SweepExecutor {
    /// Creates an executor with automatic thread count.
    pub fn new(config: SweepConfig) -> SweepExecutor {
        SweepExecutor {
            config,
            threads: None,
        }
    }

    /// Forces the worker count (1 = serial reference run).
    pub fn with_threads(mut self, threads: usize) -> SweepExecutor {
        self.threads = Some(threads.max(1));
        self
    }

    /// Expands and evaluates the grid, one row per scenario, in grid
    /// order. Infeasible scenarios become error rows; the batch always
    /// completes.
    pub fn run(&self, grid: &ScenarioGrid) -> SweepResults {
        let scenarios = grid.scenarios();
        let workers = self
            .threads
            .unwrap_or_else(|| worker_count(scenarios.len()));
        let config = self.config;
        let rows: Vec<SweepRow> = par_map_workers(&scenarios, workers, |_, sc| SweepRow {
            scenario: *sc,
            outcome: run_scenario(sc, &config),
        });
        SweepResults::new(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_runs_are_byte_identical() {
        let grid = ScenarioGrid::quick();
        let cfg = SweepConfig::fast();
        let serial = SweepExecutor::new(cfg).with_threads(1).run(&grid);
        let parallel = SweepExecutor::new(cfg).with_threads(8).run(&grid);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn empty_grid_runs_to_an_empty_table() {
        let grid = ScenarioGrid::new();
        let results = SweepExecutor::new(SweepConfig::fast()).run(&grid);
        assert_eq!(results.len(), 0);
        assert_eq!(results.to_csv().lines().count(), 1); // header only
    }

    #[test]
    fn infeasible_scenarios_do_not_abort_the_batch() {
        // Perlmutter has no HDD tier: its all-flash rows must fail soft.
        let grid = ScenarioGrid::quick().storage(crate::StorageVariant::ALL);
        let results = SweepExecutor::new(SweepConfig::fast()).run(&grid);
        assert_eq!(results.len(), grid.len());
        assert!(results.error_count() > 0);
        assert!(results.ok_count() > 0);
        assert_eq!(results.ok_count() + results.error_count(), results.len());
    }
}
