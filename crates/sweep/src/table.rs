//! The result table: per-scenario rows, summary statistics, rankings,
//! and CSV/JSON emission.

use crate::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use hpcarbon_report::emit::{Csv, MarkdownTable};

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario.
    pub scenario: Scenario,
    /// Its outcome, or why it was infeasible.
    pub outcome: Result<ScenarioOutcome, ScenarioError>,
}

/// Min/mean/max of one metric over the successful rows.
#[derive(Debug, Clone)]
pub struct MetricSummary {
    /// Metric name (matches the CSV column).
    pub metric: &'static str,
    /// Rows contributing (rows where the metric is defined).
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// The full sweep result, rows in grid order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    rows: Vec<SweepRow>,
}

/// CSV column order; [`SweepResults::to_csv`] and the JSON emitter both
/// follow it.
const COLUMNS: [&str; 25] = [
    "id",
    "system",
    "storage",
    "region",
    "trace",
    "pue",
    "policy",
    "upgrade",
    "seed",
    "status",
    "error",
    "embodied_t",
    "storage_delta_pct",
    "median_g_per_kwh",
    "cov_pct",
    "sched_kg",
    "sched_kwh",
    "mean_wait_h",
    "max_wait_h",
    "saved_kg",
    "saved_pct",
    "node_annual_kg",
    "break_even_y",
    "asymptotic_pct",
    "verdict",
];

/// Stable decimal formatting: enough digits to distinguish real metric
/// differences, no dependence on shortest-roundtrip printing.
fn num(v: f64) -> String {
    format!("{v:.4}")
}

fn opt(v: Option<f64>) -> String {
    v.map(num).unwrap_or_default()
}

impl SweepResults {
    /// Wraps evaluated rows (grid order).
    pub fn new(rows: Vec<SweepRow>) -> SweepResults {
        SweepResults { rows }
    }

    /// All rows, grid order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the sweep had zero scenarios.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows that evaluated successfully.
    pub fn ok_count(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Rows that failed soft.
    pub fn error_count(&self) -> usize {
        self.rows.len() - self.ok_count()
    }

    /// The `k` successful rows with the lowest scheduled carbon,
    /// ascending; ties break by grid order.
    pub fn rank_by_sched_carbon(&self, k: usize) -> Vec<&SweepRow> {
        let mut ok: Vec<&SweepRow> = self.rows.iter().filter(|r| r.outcome.is_ok()).collect();
        ok.sort_by(|a, b| {
            let ka = a.outcome.as_ref().expect("filtered ok").sched_carbon_kg;
            let kb = b.outcome.as_ref().expect("filtered ok").sched_carbon_kg;
            ka.partial_cmp(&kb)
                .expect("finite carbon")
                .then(a.scenario.id.cmp(&b.scenario.id))
        });
        ok.truncate(k);
        ok
    }

    /// Min/mean/max summaries of the headline metrics over successful
    /// rows. Empty when no row succeeded.
    pub fn summary(&self) -> Vec<MetricSummary> {
        type MetricGetter = fn(&ScenarioOutcome) -> Option<f64>;
        let metrics: [(&'static str, MetricGetter); 7] = [
            ("embodied_t", |o| Some(o.embodied_t)),
            ("median_g_per_kwh", |o| Some(o.median_g_per_kwh)),
            ("sched_kg", |o| Some(o.sched_carbon_kg)),
            ("mean_wait_h", |o| Some(o.mean_wait_hours)),
            ("saved_kg", |o| Some(o.shift_saved_kg)),
            ("node_annual_kg", |o| Some(o.node_annual_kg)),
            ("break_even_y", |o| o.break_even_years),
        ];
        metrics
            .iter()
            .filter_map(|(name, get)| {
                let values: Vec<f64> = self
                    .rows
                    .iter()
                    .filter_map(|r| r.outcome.as_ref().ok().and_then(get))
                    .collect();
                if values.is_empty() {
                    return None;
                }
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                Some(MetricSummary {
                    metric: name,
                    count: values.len(),
                    min,
                    mean,
                    max,
                })
            })
            .collect()
    }

    /// The summary as an aligned Markdown table (terminal-friendly).
    pub fn summary_table(&self) -> String {
        let mut t = MarkdownTable::new(&["metric", "n", "min", "mean", "max"]);
        for s in self.summary() {
            t.row([
                s.metric.to_string(),
                s.count.to_string(),
                num(s.min),
                num(s.mean),
                num(s.max),
            ]);
        }
        t.finish()
    }

    /// The scenario dimensions of one row as display strings, CSV order.
    fn dimension_cells(s: &Scenario) -> [String; 9] {
        [
            s.id.to_string(),
            s.system.label().to_string(),
            s.storage.label().to_string(),
            s.region.info().short.to_string(),
            s.source.label().to_string(),
            s.pue.label(),
            s.policy.label().to_string(),
            s.upgrade.label(),
            s.seed.to_string(),
        ]
    }

    /// Emits the full table as RFC-4180 CSV, header first, rows in grid
    /// order. Error rows carry the error message and empty metric cells.
    pub fn to_csv(&self) -> String {
        let mut csv = Csv::new(&COLUMNS);
        for r in &self.rows {
            let dims = Self::dimension_cells(&r.scenario);
            let (status, error, metrics) = match &r.outcome {
                Ok(o) => (
                    "ok".to_string(),
                    String::new(),
                    [
                        num(o.embodied_t),
                        opt(o.storage_delta_pct),
                        num(o.median_g_per_kwh),
                        num(o.cov_percent),
                        num(o.sched_carbon_kg),
                        num(o.sched_energy_kwh),
                        num(o.mean_wait_hours),
                        num(o.max_wait_hours),
                        num(o.shift_saved_kg),
                        num(o.shift_saved_pct),
                        num(o.node_annual_kg),
                        opt(o.break_even_years),
                        num(o.asymptotic_savings_pct),
                        o.verdict.to_string(),
                    ],
                ),
                Err(e) => (
                    "error".to_string(),
                    e.to_string(),
                    std::array::from_fn(|_| String::new()),
                ),
            };
            csv.row(dims.into_iter().chain([status, error]).chain(metrics));
        }
        csv.finish()
    }

    /// Emits the table as a JSON array of objects with a **uniform
    /// schema**: every row carries every CSV column. `id` and `seed` are
    /// numbers; the other dimensions are strings; `error` and `verdict`
    /// are strings or `null`; metrics are numbers or `null` (always
    /// `null` on error rows, mirroring the CSV's empty cells).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rows.iter().enumerate() {
            let dims = Self::dimension_cells(&r.scenario);
            let mut obj = String::from("  {");
            let push = |obj: &mut String, key: &str, value: String| {
                if !obj.ends_with('{') {
                    obj.push_str(", ");
                }
                obj.push_str(&format!("\"{key}\": {value}"));
            };
            push(&mut obj, "id", r.scenario.id.to_string());
            for (key, cell) in COLUMNS[1..8].iter().zip(dims[1..8].iter()) {
                push(&mut obj, key, json_string(cell));
            }
            push(&mut obj, "seed", r.scenario.seed.to_string());
            let o = r.outcome.as_ref();
            push(
                &mut obj,
                "status",
                json_string(if o.is_ok() { "ok" } else { "error" }),
            );
            push(
                &mut obj,
                "error",
                match &r.outcome {
                    Ok(_) => "null".to_string(),
                    Err(e) => json_string(&e.to_string()),
                },
            );
            push(
                &mut obj,
                "embodied_t",
                json_num(o.ok().map(|o| o.embodied_t)),
            );
            push(
                &mut obj,
                "storage_delta_pct",
                json_num(o.ok().and_then(|o| o.storage_delta_pct)),
            );
            push(
                &mut obj,
                "median_g_per_kwh",
                json_num(o.ok().map(|o| o.median_g_per_kwh)),
            );
            push(&mut obj, "cov_pct", json_num(o.ok().map(|o| o.cov_percent)));
            push(
                &mut obj,
                "sched_kg",
                json_num(o.ok().map(|o| o.sched_carbon_kg)),
            );
            push(
                &mut obj,
                "sched_kwh",
                json_num(o.ok().map(|o| o.sched_energy_kwh)),
            );
            push(
                &mut obj,
                "mean_wait_h",
                json_num(o.ok().map(|o| o.mean_wait_hours)),
            );
            push(
                &mut obj,
                "max_wait_h",
                json_num(o.ok().map(|o| o.max_wait_hours)),
            );
            push(
                &mut obj,
                "saved_kg",
                json_num(o.ok().map(|o| o.shift_saved_kg)),
            );
            push(
                &mut obj,
                "saved_pct",
                json_num(o.ok().map(|o| o.shift_saved_pct)),
            );
            push(
                &mut obj,
                "node_annual_kg",
                json_num(o.ok().map(|o| o.node_annual_kg)),
            );
            push(
                &mut obj,
                "break_even_y",
                json_num(o.ok().and_then(|o| o.break_even_years)),
            );
            push(
                &mut obj,
                "asymptotic_pct",
                json_num(o.ok().map(|o| o.asymptotic_savings_pct)),
            );
            push(
                &mut obj,
                "verdict",
                match o.ok() {
                    Some(o) => json_string(o.verdict),
                    None => "null".to_string(),
                },
            );
            obj.push('}');
            if i + 1 < self.rows.len() {
                obj.push(',');
            }
            out.push_str(&obj);
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

/// JSON string escaping: the API's emitter, shared so the sweep's JSON
/// and `hpcarbon estimate` output can never desynchronize.
fn json_string(s: &str) -> String {
    hpcarbon_api::json::esc(s)
}

/// JSON number with the same fixed `{:.4}` formatting as the CSV;
/// `null` when undefined. Also the API's emitter.
fn json_num(v: Option<f64>) -> String {
    hpcarbon_api::json::fmt_metric(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{SweepConfig, SweepExecutor};
    use crate::grid::ScenarioGrid;

    fn results() -> SweepResults {
        SweepExecutor::new(SweepConfig::fast())
            .with_threads(2)
            .run(&ScenarioGrid::quick())
    }

    #[test]
    fn csv_has_header_and_one_row_per_scenario() {
        let r = results();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), r.len() + 1);
        assert!(lines[0].starts_with("id,system,storage,region,trace,pue,policy"));
        // Every row has the full column count.
        for line in &lines {
            assert_eq!(line.split(',').count(), COLUMNS.len(), "{line}");
        }
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = results().to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(
            json.matches("\"status\": \"ok\"").count(),
            results().ok_count()
        );
        // Balanced braces (no nesting in the emitted objects).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_schema_is_uniform_across_ok_and_error_rows() {
        // Run a grid that contains infeasible points so both row kinds
        // appear, then check every row carries every column key.
        let r = SweepExecutor::new(SweepConfig::fast())
            .with_threads(2)
            .run(&ScenarioGrid::quick().storage(crate::scenario::StorageVariant::ALL));
        assert!(r.error_count() > 0 && r.ok_count() > 0);
        let json = r.to_json();
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .collect();
        assert_eq!(rows.len(), r.len());
        for key in super::COLUMNS {
            for row in &rows {
                assert!(
                    row.contains(&format!("\"{key}\":")),
                    "{key} missing in {row}"
                );
            }
        }
        // seed is a number, error rows null their metrics.
        assert!(json.contains("\"seed\": 2021,"));
        assert!(json.contains("\"error\": \"storage what-if"));
        assert!(json.contains("\"sched_kg\": null"));
    }

    #[test]
    fn rankings_are_sorted_and_bounded() {
        let r = results();
        let top = r.rank_by_sched_carbon(5);
        assert_eq!(top.len(), 5.min(r.ok_count()));
        for w in top.windows(2) {
            let a = w[0].outcome.as_ref().unwrap().sched_carbon_kg;
            let b = w[1].outcome.as_ref().unwrap().sched_carbon_kg;
            assert!(a <= b);
        }
    }

    #[test]
    fn summary_covers_the_headline_metrics() {
        let r = results();
        let s = r.summary();
        assert!(s.iter().any(|m| m.metric == "sched_kg"));
        for m in &s {
            assert!(m.min <= m.mean && m.mean <= m.max, "{}", m.metric);
            assert!(m.count > 0);
        }
        let table = r.summary_table();
        assert!(table.contains("sched_kg"));
    }

    #[test]
    fn greener_policies_rank_ahead_of_fifo() {
        // In the quick grid (GB + CA), greenest-window rows must beat the
        // FIFO rows from the same region/seed on scheduled carbon.
        let r = results();
        let best = r.rank_by_sched_carbon(1)[0];
        assert_ne!(best.scenario.policy, hpcarbon_sched::Policy::Fifo);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(None), "null");
    }
}
