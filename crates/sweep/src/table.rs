//! The result table: per-scenario rows, summary statistics, rankings,
//! and the legacy collected-results wrapper.
//!
//! Emission lives in [`crate::sink`] — [`SweepResults::to_csv`] and
//! [`SweepResults::to_json`] drive the same [`CsvSink`]/[`JsonSink`]
//! the streaming executor uses, so there is exactly one byte contract.
//!
//! [`CsvSink`]: crate::sink::CsvSink
//! [`JsonSink`]: crate::sink::JsonSink

use crate::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use crate::sink::{CsvSink, JsonSink, RowSink};
use crate::summary::SummaryAccumulator;
use hpcarbon_report::emit::MarkdownTable;

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario.
    pub scenario: Scenario,
    /// Its outcome, or why it was infeasible.
    pub outcome: Result<ScenarioOutcome, ScenarioError>,
}

/// Min/mean/max of one metric over the successful rows.
#[derive(Debug, Clone)]
pub struct MetricSummary {
    /// Metric name (matches the CSV column).
    pub metric: &'static str,
    /// Rows contributing (rows where the metric is defined).
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// CSV column order; the CSV and JSON emitters both follow it.
pub(crate) const COLUMNS: [&str; 25] = [
    "id",
    "system",
    "storage",
    "region",
    "trace",
    "pue",
    "policy",
    "upgrade",
    "seed",
    "status",
    "error",
    "embodied_t",
    "storage_delta_pct",
    "median_g_per_kwh",
    "cov_pct",
    "sched_kg",
    "sched_kwh",
    "mean_wait_h",
    "max_wait_h",
    "saved_kg",
    "saved_pct",
    "node_annual_kg",
    "break_even_y",
    "asymptotic_pct",
    "verdict",
];

/// The forecast-mode extension columns. Appended **after** `verdict`
/// only when a sink opts in ([`crate::CsvSink::forecast_columns`] /
/// [`crate::JsonSink::forecast_columns`]); the default emission stays
/// byte-identical to the frozen 25-column contract.
pub(crate) const FORECAST_COLUMNS: [&str; 2] = ["oracle_saved_kg", "oracle_saved_pct"];

/// Renders metric summaries as an aligned Markdown table.
pub(crate) fn summary_markdown(summaries: &[MetricSummary]) -> String {
    let num = |v: f64| format!("{v:.4}");
    let mut t = MarkdownTable::new(&["metric", "n", "min", "mean", "max"]);
    for s in summaries {
        t.row([
            s.metric.to_string(),
            s.count.to_string(),
            num(s.min),
            num(s.mean),
            num(s.max),
        ]);
    }
    t.finish()
}

/// The collected sweep result, rows in grid order.
///
/// Holds every row in memory — the pre-streaming API shape, kept as a
/// compatibility wrapper over [`crate::CollectSink`]. New code should
/// stream: attach sinks to [`crate::Sweep`] and read the
/// [`crate::SweepReport`], which carries the same summary/ranking data
/// without retaining rows.
#[deprecated(
    note = "collects every row in memory; stream through `Sweep::over(&grid)…sink(…)` \
            and use the returned `SweepReport` (or `CollectSink` when rows are needed)"
)]
#[derive(Debug, Clone)]
pub struct SweepResults {
    rows: Vec<SweepRow>,
}

#[allow(deprecated)]
impl SweepResults {
    /// Wraps evaluated rows (grid order).
    pub fn new(rows: Vec<SweepRow>) -> SweepResults {
        SweepResults { rows }
    }

    /// All rows, grid order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the sweep had zero scenarios.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows that evaluated successfully.
    pub fn ok_count(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Rows that failed soft.
    pub fn error_count(&self) -> usize {
        self.rows.len() - self.ok_count()
    }

    /// The `k` successful rows with the lowest scheduled carbon,
    /// ascending; ties break by grid order. Error rows are skipped
    /// wherever they appear — an all-error sweep ranks to an empty
    /// list.
    pub fn rank_by_sched_carbon(&self, k: usize) -> Vec<&SweepRow> {
        let mut ok: Vec<&SweepRow> = self.rows.iter().filter(|r| r.outcome.is_ok()).collect();
        ok.sort_by(|a, b| {
            // lint: allow(panic-in-library) -- `ok` holds only rows that passed the is_ok() filter two lines up
            let ka = a.outcome.as_ref().expect("filtered ok").sched_carbon_kg;
            // lint: allow(panic-in-library) -- same filter guarantee as the line above
            let kb = b.outcome.as_ref().expect("filtered ok").sched_carbon_kg;
            ka.total_cmp(&kb).then(a.scenario.id.cmp(&b.scenario.id))
        });
        ok.truncate(k);
        ok
    }

    /// Feeds `self`'s rows through a sink writing to an in-memory
    /// buffer (which the caller reads afterwards).
    fn emit(&self, mut sink: impl RowSink) {
        // lint: allow(panic-in-library) -- the only callers pass sinks over Vec<u8> buffers, whose io::Write impl is infallible
        sink.begin().expect("in-memory sink cannot fail");
        for r in &self.rows {
            // lint: allow(panic-in-library) -- same Vec<u8>-backed sink guarantee as begin()
            sink.row(r).expect("in-memory sink cannot fail");
        }
        // lint: allow(panic-in-library) -- same Vec<u8>-backed sink guarantee as begin()
        sink.finish().expect("in-memory sink cannot fail");
    }

    /// Min/mean/max summaries of the headline metrics over successful
    /// rows (error rows are skipped wherever they appear). Empty when
    /// no row succeeded.
    pub fn summary(&self) -> Vec<MetricSummary> {
        let mut acc = SummaryAccumulator::new(0);
        for r in &self.rows {
            // lint: allow(panic-in-library) -- SummaryAccumulator::row is infallible (pure folds over the row's metrics)
            acc.row(r).expect("accumulator cannot fail");
        }
        acc.summary()
    }

    /// The summary as an aligned Markdown table (terminal-friendly).
    pub fn summary_table(&self) -> String {
        summary_markdown(&self.summary())
    }

    /// Emits the full table as RFC-4180 CSV, header first, rows in grid
    /// order. Error rows carry the error message and empty metric cells.
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        self.emit(CsvSink::new(&mut buf));
        // The emitter only writes UTF-8, so the lossy conversion never
        // actually substitutes anything.
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Emits the table as a JSON array of objects with a **uniform
    /// schema**: every row carries every CSV column. `id` and `seed` are
    /// numbers; the other dimensions are strings; `error` and `verdict`
    /// are strings or `null`; metrics are numbers or `null` (always
    /// `null` on error rows, mirroring the CSV's empty cells).
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.emit(JsonSink::new(&mut buf));
        // Same lossy-conversion reasoning as to_csv().
        String::from_utf8_lossy(&buf).into_owned()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::exec::{SweepConfig, SweepExecutor};
    use crate::grid::ScenarioGrid;

    fn results() -> SweepResults {
        SweepExecutor::new(SweepConfig::fast())
            .with_threads(2)
            .run(&ScenarioGrid::quick())
    }

    fn error_row(id: usize) -> SweepRow {
        let mut sc = ScenarioGrid::quick().scenario_at(0);
        sc.id = id;
        SweepRow {
            scenario: sc,
            outcome: Err(crate::ScenarioError::InvalidPue(crate::PueSpec::Constant(
                0.5,
            ))),
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_scenario() {
        let r = results();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), r.len() + 1);
        assert!(lines[0].starts_with("id,system,storage,region,trace,pue,policy"));
        // Every row has the full column count.
        for line in &lines {
            assert_eq!(line.split(',').count(), COLUMNS.len(), "{line}");
        }
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = results().to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(
            json.matches("\"status\": \"ok\"").count(),
            results().ok_count()
        );
        // Balanced braces (no nesting in the emitted objects).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_schema_is_uniform_across_ok_and_error_rows() {
        // Run a grid that contains infeasible points so both row kinds
        // appear, then check every row carries every column key.
        let r = SweepExecutor::new(SweepConfig::fast())
            .with_threads(2)
            .run(&ScenarioGrid::quick().storage(crate::scenario::StorageVariant::ALL));
        assert!(r.error_count() > 0 && r.ok_count() > 0);
        let json = r.to_json();
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .collect();
        assert_eq!(rows.len(), r.len());
        for key in super::COLUMNS {
            for row in &rows {
                assert!(
                    row.contains(&format!("\"{key}\":")),
                    "{key} missing in {row}"
                );
            }
        }
        // seed is a number, error rows null their metrics.
        assert!(json.contains("\"seed\": 2021,"));
        assert!(json.contains("\"error\": \"storage what-if"));
        assert!(json.contains("\"sched_kg\": null"));
    }

    #[test]
    fn rankings_are_sorted_and_bounded() {
        let r = results();
        let top = r.rank_by_sched_carbon(5);
        assert_eq!(top.len(), 5.min(r.ok_count()));
        for w in top.windows(2) {
            let a = w[0].outcome.as_ref().unwrap().sched_carbon_kg;
            let b = w[1].outcome.as_ref().unwrap().sched_carbon_kg;
            assert!(a <= b);
        }
    }

    #[test]
    fn summary_covers_the_headline_metrics() {
        let r = results();
        let s = r.summary();
        assert!(s.iter().any(|m| m.metric == "sched_kg"));
        for m in &s {
            assert!(m.min <= m.mean && m.mean <= m.max, "{}", m.metric);
            assert!(m.count > 0);
        }
        let table = r.summary_table();
        assert!(table.contains("sched_kg"));
    }

    #[test]
    fn error_rows_anywhere_leave_summary_and_ranking_total() {
        // Error rows leading, interleaved, and trailing: the statistics
        // must come out as if only the ok rows existed.
        let base = results();
        let mut rows = vec![error_row(9000), error_row(9001)];
        for (i, r) in base.rows().iter().enumerate() {
            rows.push(r.clone());
            if i % 3 == 0 {
                rows.push(error_row(9100 + i));
            }
        }
        rows.push(error_row(9999));
        let salted = SweepResults::new(rows);
        assert_eq!(salted.ok_count(), base.ok_count());
        let a = salted.summary();
        let b = base.summary();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metric, y.metric);
            assert_eq!(x.count, y.count);
            assert_eq!((x.min, x.mean, x.max), (y.min, y.mean, y.max));
        }
        let ra: Vec<usize> = salted
            .rank_by_sched_carbon(5)
            .iter()
            .map(|r| r.scenario.id)
            .collect();
        let rb: Vec<usize> = base
            .rank_by_sched_carbon(5)
            .iter()
            .map(|r| r.scenario.id)
            .collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn all_error_sweep_stays_total() {
        // Every row infeasible: counts add up, the summary is empty,
        // rankings are empty, and both emitters still produce complete
        // documents.
        let rows: Vec<SweepRow> = (0..4).map(error_row).collect();
        let r = SweepResults::new(rows);
        assert_eq!(r.ok_count(), 0);
        assert_eq!(r.error_count(), 4);
        assert!(r.summary().is_empty());
        assert!(r.rank_by_sched_carbon(5).is_empty());
        assert_eq!(r.summary_table().lines().count(), 2); // header + rule
        assert_eq!(r.to_csv().lines().count(), 5);
        let json = r.to_json();
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"));
        assert_eq!(json.matches("\"status\": \"error\"").count(), 4);
    }

    #[test]
    fn greener_policies_rank_ahead_of_fifo() {
        // In the quick grid (GB + CA), greenest-window rows must beat the
        // FIFO rows from the same region/seed on scheduled carbon.
        let r = results();
        let best = r.rank_by_sched_carbon(1)[0];
        assert_ne!(best.scenario.policy, hpcarbon_sched::Policy::Fifo);
    }
}
