//! Per-sweep shared evaluation context.
//!
//! Before this layer existed, every scenario evaluation regenerated its
//! own intensity trace (a dispatch simulation plus a `WindowIndex`
//! build), re-read the system catalog, and regenerated its job trace —
//! even though a grid of a million scenarios draws those from a handful
//! of distinct keys. [`SweepContext`] hoists the work: it derives the
//! key sets **directly from the grid's dimension lists** (never by
//! expanding the product — O(dimensions) memory at any grid size),
//! builds an [`hpcarbon_api::EstimateContext`] once, and evaluates
//! every scenario through one context-attached [`Estimator`].
//!
//! Byte-safety is inherited from the API layer: context hits are pure
//! caches of the very provider calls the uncontexted path makes
//! (`crates/api` asserts report equality with and without a context),
//! so a context-evaluated sweep emits **exactly** the bytes a
//! [`crate::run_scenario`] sweep emits — only faster.

use crate::exec::SweepConfig;
use crate::grid::ScenarioGrid;
use crate::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use hpcarbon_api::context::partner_region;
use hpcarbon_api::providers::{CatalogEmbodied, DispatchIntensity, EmbodiedSource, GeneratedJobs};
use hpcarbon_api::{EstimateContext, Estimator, JobKey, TraceKey};
use hpcarbon_sim::rng::SimRng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The seed substreams one scenario seed forks: `(trace, jobs)` —
/// exactly what `EstimateRequest` evaluation derives from `seed`.
fn substreams(seed: u64) -> (u64, u64) {
    let rng = SimRng::seed_from(seed);
    (rng.substream("trace").seed(), rng.substream("jobs").seed())
}

/// Immutable shared state for one sweep: the workload knobs plus a
/// context-attached estimator covering every key the grid can touch.
///
/// Build once with [`SweepContext::build`], then call
/// [`SweepContext::run`] from any number of worker threads (the context
/// is immutable; traces and job lists are shared by `Arc`).
pub struct SweepContext {
    config: SweepConfig,
    estimator: Estimator,
    context: Arc<EstimateContext>,
}

impl std::fmt::Debug for SweepContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepContext")
            .field("config", &self.config)
            .field("context", &self.context)
            .finish_non_exhaustive()
    }
}

impl SweepContext {
    /// Builds the context for `grid` under `config`, simulating the
    /// distinct traces over `threads` workers (`None` = available
    /// parallelism). Cost is proportional to **distinct keys** — for
    /// the paper grids a handful of traces — not to `grid.len()`.
    pub fn build(grid: &ScenarioGrid, config: SweepConfig, threads: Option<usize>) -> SweepContext {
        Self::build_with(grid, config, threads, Arc::new(CatalogEmbodied))
    }

    /// [`SweepContext::build`] with an explicit embodied source — the
    /// `--catalog DIR` path. The grid's `system` dimension then
    /// resolves every inventory (and the all-flash what-if's
    /// replacement SSD) against `embodied` instead of the built-in
    /// tables; with the default [`CatalogEmbodied`] the two
    /// constructors are byte-identical.
    pub fn build_with(
        grid: &ScenarioGrid,
        config: SweepConfig,
        threads: Option<usize>,
        embodied: Arc<dyn EmbodiedSource>,
    ) -> SweepContext {
        Self::build_full(grid, config, threads, embodied, Vec::new())
    }

    /// [`SweepContext::build_with`] plus registered trace files — the
    /// `--trace-file` path. Each `(region, trace)` pair backs that
    /// region's [`hpcarbon_api::TraceSource::File`] scenarios; regions
    /// without a registered file fail those rows soft with the API's
    /// "no trace file registered" error. File keys are measured data,
    /// not simulator output, so they are deliberately excluded from the
    /// precomputed provider context (the estimator resolves them from
    /// its own registry).
    pub fn build_full(
        grid: &ScenarioGrid,
        config: SweepConfig,
        threads: Option<usize>,
        embodied: Arc<dyn EmbodiedSource>,
        trace_files: Vec<(
            hpcarbon_grid::regions::OperatorId,
            Arc<hpcarbon_grid::trace::IntensityTrace>,
        )>,
    ) -> SweepContext {
        let mut trace_keys: BTreeSet<TraceKey> = BTreeSet::new();
        let mut job_keys: BTreeSet<JobKey> = BTreeSet::new();
        // The sweep translates scenarios with `partner: None`, so a
        // partner trace is engaged exactly when the policy is
        // multi-region; one such policy in the dimension list puts the
        // partner key of every (region, source, seed) cell in play.
        let partnered = grid.policies.iter().any(|p| p.is_multi_region());
        for &seed in &grid.seeds {
            let (trace_seed, jobs_seed) = substreams(seed);
            job_keys.insert((config.jobs_per_scenario, jobs_seed));
            for &region in &grid.regions {
                for &source in &grid.sources {
                    trace_keys.insert((region, source, config.year, trace_seed));
                    if partnered {
                        trace_keys.insert((
                            partner_region(region),
                            source,
                            config.year,
                            trace_seed,
                        ));
                    }
                }
            }
        }
        let system_keys: BTreeSet<_> = grid.systems.iter().copied().collect();
        let context = Arc::new(EstimateContext::build_from_keys(
            trace_keys,
            job_keys,
            system_keys,
            &DispatchIntensity,
            &embodied,
            &GeneratedJobs,
            threads,
        ));
        let mut builder = Estimator::builder()
            .context(Arc::clone(&context))
            .embodied(embodied);
        for (region, trace) in trace_files {
            builder = builder.trace_file(region, trace);
        }
        let estimator = builder.build();
        SweepContext {
            config,
            estimator,
            context,
        }
    }

    /// The sweep's workload knobs.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Distinct intensity traces precomputed for this sweep.
    pub fn trace_count(&self) -> usize {
        self.context.trace_count()
    }

    /// Evaluates one scenario against the shared context. Semantically
    /// identical to [`crate::run_scenario`] — the context only removes
    /// repeated derivations — and safe to call from many threads.
    pub fn run(&self, sc: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
        self.estimator
            .estimate(&sc.to_request(&self.config))
            .map(ScenarioOutcome::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_scenario;
    use hpcarbon_sched::Policy;

    #[test]
    fn covers_every_key_of_the_grid() {
        let grid = ScenarioGrid::quick();
        let ctx = SweepContext::build(&grid, SweepConfig::fast(), Some(1));
        // quick(): 2 regions × 1 source × 2 seeds, no multi-region policy.
        assert_eq!(ctx.trace_count(), 4);
        assert_eq!(ctx.context.job_trace_count(), 2);
        assert_eq!(ctx.context.system_count(), 2);
    }

    #[test]
    fn multi_region_policies_pull_in_partner_traces() {
        let grid = ScenarioGrid::shifting();
        let ctx = SweepContext::build(&grid, SweepConfig::fast(), Some(1));
        // shifting(): regions {GB, CA} × 2 sources; SpatioTemporal adds the
        // partner of each — which is again {CA, GB}, already present.
        assert!(grid.policies.iter().any(|p| p.is_multi_region()));
        assert_eq!(ctx.trace_count(), 4);
        // A single dirty region with a multi-region policy pulls its
        // partner in even though the grid never lists it.
        let lone = ScenarioGrid::shifting()
            .regions([hpcarbon_grid::regions::OperatorId::Miso])
            .policies([Policy::SpatioTemporal { slack_hours: 24 }]);
        let ctx = SweepContext::build(&lone, SweepConfig::fast(), Some(1));
        assert_eq!(ctx.trace_count(), 4); // (MISO + partner GB) × 2 sources
    }

    #[test]
    fn contexted_run_matches_run_scenario_exactly() {
        let grid = ScenarioGrid::shifting();
        let cfg = SweepConfig::fast();
        let ctx = SweepContext::build(&grid, cfg, Some(2));
        for sc in grid.scenarios() {
            let contexted = ctx.run(&sc);
            let direct = run_scenario(&sc, &cfg);
            match (contexted, direct) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.sched_carbon_kg, b.sched_carbon_kg, "id {}", sc.id);
                    assert_eq!(a.median_g_per_kwh, b.median_g_per_kwh);
                    assert_eq!(a.shift_saved_kg, b.shift_saved_kg);
                    assert_eq!(a.break_even_years, b.break_even_years);
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("divergent feasibility: {a:?} vs {b:?}"),
            }
        }
    }
}
