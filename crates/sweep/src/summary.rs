//! Online summary statistics over a streamed sweep.
//!
//! [`SummaryAccumulator`] is a [`RowSink`] that reduces the row stream
//! to the headline min/mean/max table and the top-k ranking **without
//! retaining rows**: per metric it keeps `(count, sum, min, max)`, and
//! for the ranking a k-bounded heap of row clones. Because the executor
//! delivers rows in grid order, the accumulator's left-to-right sum and
//! min/max folds evaluate in exactly the order the retained-table
//! `SweepResults::summary` used — the resulting floats are
//! bit-identical, not merely close.

use crate::scenario::ScenarioOutcome;
use crate::sink::RowSink;
use crate::table::{MetricSummary, SweepRow};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;

type MetricGetter = fn(&ScenarioOutcome) -> Option<f64>;

/// The headline metrics summarized for every sweep, in display order.
const METRICS: [(&str, MetricGetter); 7] = [
    ("embodied_t", |o| Some(o.embodied_t)),
    ("median_g_per_kwh", |o| Some(o.median_g_per_kwh)),
    ("sched_kg", |o| Some(o.sched_carbon_kg)),
    ("mean_wait_h", |o| Some(o.mean_wait_hours)),
    ("saved_kg", |o| Some(o.shift_saved_kg)),
    ("node_annual_kg", |o| Some(o.node_annual_kg)),
    ("break_even_y", |o| o.break_even_years),
];

/// Running `(count, sum, min, max)` of one metric.
#[derive(Debug, Clone, Copy)]
struct MetricAcc {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
}

impl MetricAcc {
    fn new() -> MetricAcc {
        MetricAcc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = f64::min(self.min, v);
        self.max = f64::max(self.max, v);
    }
}

/// Heap entry for the top-k ranking: ordered by scheduled carbon
/// (total order), ties by grid id — the max element is the *worst*
/// retained row, evicted first.
#[derive(Debug, Clone)]
struct TopEntry {
    carbon: f64,
    id: usize,
    row: SweepRow,
}

impl PartialEq for TopEntry {
    fn eq(&self, other: &TopEntry) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for TopEntry {}

impl PartialOrd for TopEntry {
    fn partial_cmp(&self, other: &TopEntry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TopEntry {
    fn cmp(&self, other: &TopEntry) -> Ordering {
        self.carbon
            .total_cmp(&other.carbon)
            .then(self.id.cmp(&other.id))
    }
}

/// Streams rows into summary statistics and a bounded top-k ranking.
///
/// Memory is O(metrics + k): suitable for million-scenario sweeps where
/// collecting rows is not.
#[derive(Debug)]
pub struct SummaryAccumulator {
    rows: usize,
    ok: usize,
    metrics: [MetricAcc; METRICS.len()],
    k: usize,
    top: BinaryHeap<TopEntry>,
}

impl SummaryAccumulator {
    /// An accumulator retaining the `k` lowest-carbon rows.
    pub fn new(k: usize) -> SummaryAccumulator {
        SummaryAccumulator {
            rows: 0,
            ok: 0,
            metrics: [MetricAcc::new(); METRICS.len()],
            k,
            top: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Total rows seen.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True before any row arrived.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows that evaluated successfully.
    pub fn ok_count(&self) -> usize {
        self.ok
    }

    /// Rows that failed soft.
    pub fn error_count(&self) -> usize {
        self.rows - self.ok
    }

    /// Min/mean/max summaries of the headline metrics over successful
    /// rows, matching `SweepResults::summary` bit-for-bit. Empty when
    /// no row succeeded.
    pub fn summary(&self) -> Vec<MetricSummary> {
        METRICS
            .iter()
            .zip(self.metrics.iter())
            .filter(|(_, acc)| acc.count > 0)
            .map(|(&(name, _), acc)| MetricSummary {
                metric: name,
                count: acc.count,
                min: acc.min,
                mean: acc.sum / acc.count as f64,
                max: acc.max,
            })
            .collect()
    }

    /// The retained lowest-carbon rows, ascending; ties break by grid
    /// order. At most `k` rows.
    pub fn top(&self) -> Vec<SweepRow> {
        let mut entries: Vec<&TopEntry> = self.top.iter().collect();
        entries.sort();
        entries.into_iter().map(|e| e.row.clone()).collect()
    }
}

impl RowSink for SummaryAccumulator {
    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        self.rows += 1;
        if let Ok(o) = &row.outcome {
            self.ok += 1;
            for ((_, get), acc) in METRICS.iter().zip(self.metrics.iter_mut()) {
                if let Some(v) = get(o) {
                    acc.push(v);
                }
            }
            if self.k > 0 {
                let entry = TopEntry {
                    carbon: o.sched_carbon_kg,
                    id: row.scenario.id,
                    row: row.clone(),
                };
                if self.top.len() < self.k {
                    self.top.push(entry);
                } else if let Some(worst) = self.top.peek() {
                    if entry.cmp(worst) == Ordering::Less {
                        self.top.pop();
                        self.top.push(entry);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PueSpec, Scenario, StorageVariant, SystemId, TraceSource, UpgradePath};
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_sched::Policy;
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn ok_row(id: usize, carbon: f64) -> SweepRow {
        let sc = Scenario {
            id,
            system: SystemId::Frontier,
            storage: StorageVariant::Baseline,
            region: OperatorId::Eso,
            source: TraceSource::Paper,
            pue: PueSpec::Constant(1.2),
            policy: Policy::Fifo,
            upgrade: UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            },
            seed: 2021,
        };
        SweepRow {
            scenario: sc,
            outcome: Ok(ScenarioOutcome {
                embodied_t: 10.0 + id as f64,
                storage_delta_pct: None,
                median_g_per_kwh: 200.0,
                cov_percent: 30.0,
                sched_carbon_kg: carbon,
                sched_energy_kwh: 1.0,
                mean_wait_hours: 0.5,
                max_wait_hours: 2.0,
                shift_saved_kg: 1.0,
                shift_saved_pct: 2.0,
                oracle_saved_kg: None,
                oracle_saved_pct: None,
                node_annual_kg: 3.0,
                break_even_years: if id.is_multiple_of(2) {
                    Some(4.0)
                } else {
                    None
                },
                asymptotic_savings_pct: 5.0,
                verdict: "upgrade",
            }),
        }
    }

    fn err_row(id: usize) -> SweepRow {
        let mut r = ok_row(id, 0.0);
        r.outcome = Err(crate::ScenarioError::InvalidPue(PueSpec::Constant(0.5)));
        r
    }

    #[test]
    fn top_k_is_sorted_bounded_and_tie_broken_by_id() {
        let mut acc = SummaryAccumulator::new(3);
        for (id, c) in [(0, 5.0), (1, 2.0), (2, 5.0), (3, 9.0), (4, 1.0)] {
            acc.row(&ok_row(id, c)).unwrap();
        }
        let top: Vec<(usize, f64)> = acc
            .top()
            .iter()
            .map(|r| (r.scenario.id, r.outcome.as_ref().unwrap().sched_carbon_kg))
            .collect();
        assert_eq!(top, vec![(4, 1.0), (1, 2.0), (0, 5.0)]);
    }

    #[test]
    fn summary_counts_only_defined_metrics() {
        let mut acc = SummaryAccumulator::new(1);
        for id in 0..4 {
            acc.row(&ok_row(id, 1.0)).unwrap();
        }
        acc.row(&err_row(4)).unwrap();
        assert_eq!(acc.len(), 5);
        assert_eq!(acc.ok_count(), 4);
        assert_eq!(acc.error_count(), 1);
        let s = acc.summary();
        let embodied = s.iter().find(|m| m.metric == "embodied_t").unwrap();
        assert_eq!(embodied.count, 4);
        assert_eq!(embodied.min, 10.0);
        assert_eq!(embodied.max, 13.0);
        assert_eq!(embodied.mean, 11.5);
        // break_even_y defined on even ids only.
        let be = s.iter().find(|m| m.metric == "break_even_y").unwrap();
        assert_eq!(be.count, 2);
    }

    #[test]
    fn all_error_stream_yields_empty_summary_and_top() {
        let mut acc = SummaryAccumulator::new(5);
        for id in 0..3 {
            acc.row(&err_row(id)).unwrap();
        }
        assert!(acc.summary().is_empty());
        assert!(acc.top().is_empty());
        assert_eq!(acc.error_count(), 3);
    }
}
