//! # hpcarbon-sweep
//!
//! Declarative scenario grids and a deterministic, parallel sweep
//! executor over the whole carbon-modeling stack.
//!
//! The paper's headline results (Figs. 5–8) are each *one point* in a much
//! larger design space: system composition × grid region × PUE model ×
//! scheduling policy × upgrade path × seed. This crate makes the whole
//! space addressable:
//!
//! - [`ScenarioGrid`] declares the sweep as a cartesian product of
//!   dimension value lists ([`grid`]);
//! - [`run_scenario`] evaluates one grid point end to end — embodied
//!   composition (with optional storage-tier what-ifs), a simulated grid
//!   year, a scheduling run, PUE-adjusted node accounting, and the upgrade
//!   advisor — as a *pure function* that fails soft with a
//!   [`ScenarioError`] ([`scenario`]). Since the front-door API landed,
//!   this delegates to [`hpcarbon_api::Estimator`]: a scenario is exactly
//!   one [`hpcarbon_api::EstimateRequest`] plus a grid position, and the
//!   dimension types ([`SystemId`], [`PueSpec`], …) are re-exports from
//!   that crate;
//! - [`SweepExecutor`] fans the grid out over
//!   [`hpcarbon_sim::par::par_map_workers`] ([`exec`]);
//! - [`SweepResults`] holds the per-scenario rows plus summary statistics
//!   and rankings, and emits CSV and JSON ([`table`]).
//!
//! ## Determinism
//!
//! Every scenario derives its randomness from its **own** parameters
//! (seed dimension + fixed substream labels via
//! [`hpcarbon_sim::rng::SimRng::substream`]), never from thread-local or
//! shared state, and the executor returns rows in grid order. Sweeping the
//! same grid therefore produces **byte-identical CSV/JSON output for any
//! worker count** — `--threads 1` and `--threads N` runs can be `diff`ed
//! in CI.
//!
//! ## Example
//!
//! ```
//! use hpcarbon_sweep::{ScenarioGrid, SweepConfig, SweepExecutor};
//!
//! let grid = ScenarioGrid::quick(); // a small 16-point demo grid
//! let results = SweepExecutor::new(SweepConfig::fast()).run(&grid);
//! assert_eq!(results.len(), grid.len());
//! assert_eq!(results.error_count(), 0);
//! let csv = results.to_csv();
//! assert!(csv.lines().count() == grid.len() + 1); // header + one row each
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod grid;
pub mod scenario;
pub mod table;

pub use exec::{SweepConfig, SweepExecutor};
pub use grid::ScenarioGrid;
pub use scenario::{
    run_scenario, PueSpec, Scenario, ScenarioError, ScenarioOutcome, StorageVariant, SystemId,
    TraceSource, UpgradePath,
};
pub use table::{MetricSummary, SweepResults, SweepRow};
