//! # hpcarbon-sweep
//!
//! Declarative scenario grids and a deterministic **streaming** sweep
//! engine over the whole carbon-modeling stack.
//!
//! The paper's headline results (Figs. 5–8) are each *one point* in a much
//! larger design space: system composition × grid region × PUE model ×
//! scheduling policy × upgrade path × seed. This crate makes the whole
//! space addressable — up to millions of scenarios — in bounded memory:
//!
//! - [`ScenarioGrid`] declares the sweep as a cartesian product of
//!   dimension value lists; [`ScenarioGrid::scenario_at`] decodes any grid
//!   position without expanding the product ([`grid`]);
//! - [`run_scenario`] evaluates one grid point end to end as a *pure
//!   function* that fails soft with a [`ScenarioError`] ([`scenario`]),
//!   delegating to [`hpcarbon_api::Estimator`]; [`SweepContext`] hoists
//!   the shared derivations (intensity traces, catalogs, job traces) out
//!   of that path, built once per sweep ([`context`]);
//! - [`Sweep`] is the executor: workers fan scenario ids out, an
//!   order-restoring merge forwards rows **in grid order** to pluggable
//!   [`RowSink`]s, and a bounded reorder window keeps memory at
//!   O(threads), independent of grid size ([`exec`], [`sink`]);
//! - [`CsvSink`] / [`JsonSink`] stream the frozen CSV/JSON documents,
//!   [`SummaryAccumulator`] folds summary statistics and a top-k ranking
//!   online ([`summary`]), and the returned [`SweepReport`] carries the
//!   counts, summaries and output digests;
//! - `--shard i/N` partitions a grid across machines: [`ShardSpec`]
//!   slices it deterministically, [`ShardManifest`] records each slice's
//!   provenance and digests, and the merge helpers reassemble the
//!   canonical single-machine documents ([`shard`]).
//!
//! ## Determinism
//!
//! Every scenario derives its randomness from its **own** parameters
//! (seed dimension + fixed substream labels via
//! [`hpcarbon_sim::rng::SimRng::substream`]), never from thread-local or
//! shared state, and the merge forwards rows in grid order. Sweeping the
//! same grid therefore produces **byte-identical CSV/JSON output for any
//! worker count and any shard split** — `--threads 1`, `--threads N`, and
//! sharded-then-merged runs all `cmp` equal in CI. The contract is
//! specified in `DESIGN.md` §11.
//!
//! ## Example
//!
//! ```
//! use hpcarbon_sweep::{CsvSink, ScenarioGrid, Sweep, SweepConfig};
//!
//! let grid = ScenarioGrid::quick(); // a small 16-point demo grid
//! let mut csv = CsvSink::new(Vec::new());
//! let report = Sweep::over(&grid)
//!     .config(SweepConfig::fast())
//!     .sink(&mut csv)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.len(), grid.len());
//! assert_eq!(report.errors, 0);
//! let bytes = csv.into_inner();
//! assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), grid.len() + 1);
//! ```
//!
//! The pre-streaming `SweepExecutor`/`SweepResults` API still works but
//! is deprecated; it collects every row in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod exec;
pub mod grid;
pub mod scenario;
pub mod shard;
pub mod sink;
pub mod summary;
pub mod table;

pub use context::SweepContext;
#[allow(deprecated)]
pub use exec::SweepExecutor;
pub use exec::{Sweep, SweepConfig, SweepError, SweepReport};
pub use grid::ScenarioGrid;
pub use scenario::{
    run_scenario, PueSpec, Scenario, ScenarioError, ScenarioOutcome, StorageVariant, SystemId,
    TraceSource, UpgradePath,
};
pub use shard::{
    grid_fingerprint, merge_sweep_outputs, validate_partition, OutputDigest, ShardManifest,
    ShardSpec, CSV_FILE, JSON_FILE, MANIFEST_FILE,
};
pub use sink::{fnv1a64, CollectSink, CsvSink, JsonSink, RowSink, SinkDigest};
pub use summary::SummaryAccumulator;
#[allow(deprecated)]
pub use table::SweepResults;
pub use table::{MetricSummary, SweepRow};
