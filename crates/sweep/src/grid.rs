//! Declarative scenario grids: the cartesian product of dimension lists.

use crate::scenario::{PueSpec, Scenario, StorageVariant, SystemId, TraceSource, UpgradePath};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_sched::Policy;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// A sweep declared as value lists per dimension; expansion is the
/// cartesian product in a fixed row-major order (systems outermost, seeds
/// innermost), which is also the row order of the result table.
///
/// An empty dimension yields an empty grid — the executor treats that as
/// a zero-row sweep, not an error.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Deployed systems.
    pub systems: Vec<SystemId>,
    /// Storage-architecture variants.
    pub storage: Vec<StorageVariant>,
    /// Grid regions.
    pub regions: Vec<OperatorId>,
    /// Trace sources (paper dispatch simulation vs synthetic harmonics).
    pub sources: Vec<TraceSource>,
    /// Facility PUE models.
    pub pues: Vec<PueSpec>,
    /// Scheduling policies.
    pub policies: Vec<Policy>,
    /// Upgrade paths.
    pub upgrades: Vec<UpgradePath>,
    /// Random seeds (one full sub-grid per seed).
    pub seeds: Vec<u64>,
}

impl ScenarioGrid {
    /// Starts an empty grid; chain the dimension setters.
    pub fn new() -> ScenarioGrid {
        ScenarioGrid {
            systems: Vec::new(),
            storage: Vec::new(),
            regions: Vec::new(),
            sources: Vec::new(),
            pues: Vec::new(),
            policies: Vec::new(),
            upgrades: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Sets the system dimension.
    pub fn systems(mut self, v: impl Into<Vec<SystemId>>) -> Self {
        self.systems = v.into();
        self
    }

    /// Sets the storage-variant dimension.
    pub fn storage(mut self, v: impl Into<Vec<StorageVariant>>) -> Self {
        self.storage = v.into();
        self
    }

    /// Sets the region dimension.
    pub fn regions(mut self, v: impl Into<Vec<OperatorId>>) -> Self {
        self.regions = v.into();
        self
    }

    /// Sets the trace-source dimension.
    pub fn sources(mut self, v: impl Into<Vec<TraceSource>>) -> Self {
        self.sources = v.into();
        self
    }

    /// Sets the PUE dimension.
    pub fn pues(mut self, v: impl Into<Vec<PueSpec>>) -> Self {
        self.pues = v.into();
        self
    }

    /// Sets the policy dimension.
    pub fn policies(mut self, v: impl Into<Vec<Policy>>) -> Self {
        self.policies = v.into();
        self
    }

    /// Sets the upgrade-path dimension.
    pub fn upgrades(mut self, v: impl Into<Vec<UpgradePath>>) -> Self {
        self.upgrades = v.into();
        self
    }

    /// Sets the seed dimension.
    pub fn seeds(mut self, v: impl Into<Vec<u64>>) -> Self {
        self.seeds = v.into();
        self
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.systems.len()
            * self.storage.len()
            * self.regions.len()
            * self.sources.len()
            * self.pues.len()
            * self.policies.len()
            * self.upgrades.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into scenarios, ids in row order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        let mut id = 0;
        for &system in &self.systems {
            for &storage in &self.storage {
                for &region in &self.regions {
                    for &source in &self.sources {
                        for &pue in &self.pues {
                            for &policy in &self.policies {
                                for &upgrade in &self.upgrades {
                                    for &seed in &self.seeds {
                                        out.push(Scenario {
                                            id,
                                            system,
                                            storage,
                                            region,
                                            source,
                                            pue,
                                            policy,
                                            upgrade,
                                            seed,
                                        });
                                        id += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The scenario at grid position `id` without expanding the product:
    /// the mixed-radix decode of `id` over the dimension lists (seeds
    /// are the least-significant digit, systems the most). Agrees with
    /// [`ScenarioGrid::scenarios`]`()[id]` for every valid `id` — the
    /// streaming executor leans on this to keep sweep memory independent
    /// of grid size.
    ///
    /// # Panics
    /// When `id >= self.len()`.
    pub fn scenario_at(&self, id: usize) -> Scenario {
        assert!(
            id < self.len(),
            "scenario id {id} out of bounds for a {}-point grid",
            self.len()
        );
        let mut rem = id;
        let mut digit = |len: usize| {
            let d = rem % len;
            rem /= len;
            d
        };
        let seed = self.seeds[digit(self.seeds.len())];
        let upgrade = self.upgrades[digit(self.upgrades.len())];
        let policy = self.policies[digit(self.policies.len())];
        let pue = self.pues[digit(self.pues.len())];
        let source = self.sources[digit(self.sources.len())];
        let region = self.regions[digit(self.regions.len())];
        let storage = self.storage[digit(self.storage.len())];
        let system = self.systems[digit(self.systems.len())];
        Scenario {
            id,
            system,
            storage,
            region,
            source,
            pue,
            policy,
            upgrade,
            seed,
        }
    }

    /// Samples `n` estimate requests uniformly (with replacement) from
    /// the expanded grid under the sweep's workload knobs — the serving
    /// load generator's workload, and a grid-shaped way to build request
    /// batches in general.
    ///
    /// Sampling is deterministic: indices come from the `loadgen`
    /// substream of `seed`, never from thread or wall-clock state, so a
    /// fixed seed reproduces the exact request sequence (CI's smoke load
    /// relies on this). An empty grid samples to an empty batch.
    pub fn sample_requests(
        &self,
        n: usize,
        cfg: &crate::exec::SweepConfig,
        seed: u64,
    ) -> Vec<hpcarbon_api::EstimateRequest> {
        let scenarios = self.scenarios();
        if scenarios.is_empty() {
            return Vec::new();
        }
        let mut rng = hpcarbon_sim::rng::SimRng::seed_from(seed).substream("loadgen");
        (0..n)
            .map(|_| scenarios[rng.index(scenarios.len())].to_request(cfg))
            .collect()
    }

    /// The default full sweep: every Table 2 system × both storage
    /// variants × all seven Table 3 regions × constant and seasonal PUE ×
    /// three policies × two upgrade paths — 504 scenarios per seed.
    pub fn paper_default() -> ScenarioGrid {
        ScenarioGrid::new()
            .systems(SystemId::ALL)
            .storage(StorageVariant::ALL)
            .regions(OperatorId::ALL)
            .sources([TraceSource::Paper])
            .pues([
                PueSpec::Constant(1.2),
                PueSpec::Seasonal {
                    mean: 1.2,
                    amplitude: 0.1,
                },
            ])
            .policies([
                Policy::Fifo,
                Policy::GreenestWindow { horizon_hours: 24 },
                Policy::ThresholdDefer {
                    threshold_g_per_kwh: 150.0,
                },
            ])
            .upgrades([
                UpgradePath {
                    from: NodeGen::P100Node,
                    to: NodeGen::A100Node,
                    suite: Suite::Nlp,
                },
                UpgradePath {
                    from: NodeGen::V100Node,
                    to: NodeGen::A100Node,
                    suite: Suite::Vision,
                },
            ])
            .seeds([2021])
    }

    /// A 16-scenario grid for demos, doctests and smoke tests.
    pub fn quick() -> ScenarioGrid {
        ScenarioGrid::new()
            .systems([SystemId::Frontier, SystemId::Perlmutter])
            .storage([StorageVariant::Baseline])
            .regions([OperatorId::Eso, OperatorId::Ciso])
            .sources([TraceSource::Paper])
            .pues([PueSpec::Constant(1.2)])
            .policies([Policy::Fifo, Policy::GreenestWindow { horizon_hours: 24 }])
            .upgrades([UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            }])
            .seeds([2021, 7])
    }

    /// The carbon-shifting study: both trace sources × the shifting
    /// policies at several slack levels against the FIFO baseline —
    /// 2 regions × 2 sources × 5 policies = 20 scenarios per seed.
    pub fn shifting() -> ScenarioGrid {
        ScenarioGrid::new()
            .systems([SystemId::Frontier])
            .storage([StorageVariant::Baseline])
            .regions([OperatorId::Eso, OperatorId::Ciso])
            .sources(TraceSource::ALL)
            .pues([PueSpec::Constant(1.2)])
            .policies([
                Policy::Fifo,
                Policy::TemporalShift { slack_hours: 6 },
                Policy::TemporalShift { slack_hours: 24 },
                Policy::TemporalShift { slack_hours: 48 },
                Policy::SpatioTemporal { slack_hours: 24 },
            ])
            .upgrades([UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            }])
            .seeds([2021])
    }
}

impl Default for ScenarioGrid {
    fn default() -> ScenarioGrid {
        ScenarioGrid::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_the_dimension_product() {
        let g = ScenarioGrid::paper_default();
        // systems × storage × regions × sources × pues × policies ×
        // upgrades (× 1 seed).
        #[allow(clippy::identity_op)]
        let expected = 3 * 2 * 7 * 1 * 2 * 3 * 2;
        assert_eq!(g.len(), expected);
        assert_eq!(g.scenarios().len(), g.len());
        assert!(g.len() >= 500, "the default sweep must cover ≥500 points");
    }

    #[test]
    fn shifting_grid_covers_both_sources_and_all_slacks() {
        let g = ScenarioGrid::shifting();
        #[allow(clippy::identity_op)]
        let expected = 1 * 1 * 2 * 2 * 1 * 5 * 1 * 1;
        assert_eq!(g.len(), expected);
        let s = g.scenarios();
        assert!(s.iter().any(|x| x.source == TraceSource::Synthetic));
        assert!(s.iter().any(|x| x.source == TraceSource::Paper));
        assert!(s
            .iter()
            .any(|x| x.policy == hpcarbon_sched::Policy::SpatioTemporal { slack_hours: 24 }));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let s = ScenarioGrid::quick().scenarios();
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.id, i);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic_and_grid_bound() {
        let g = ScenarioGrid::quick();
        let cfg = crate::exec::SweepConfig::fast();
        let a = g.sample_requests(32, &cfg, 2021);
        let b = g.sample_requests(32, &cfg, 2021);
        assert_eq!(a, b, "fixed seed reproduces the exact sequence");
        assert_eq!(a.len(), 32);
        // Every sample is a point of the grid (same translation as the
        // sweep executor's rows).
        let points: Vec<_> = g.scenarios().iter().map(|s| s.to_request(&cfg)).collect();
        assert!(a.iter().all(|r| points.contains(r)));
        // A different seed draws a different sequence.
        assert_ne!(a, g.sample_requests(32, &cfg, 7));
        // Degenerate cases stay total.
        assert!(g.sample_requests(0, &cfg, 2021).is_empty());
        let empty = ScenarioGrid::new();
        assert!(empty.sample_requests(8, &cfg, 2021).is_empty());
    }

    #[test]
    fn scenario_at_agrees_with_full_expansion() {
        for grid in [
            ScenarioGrid::paper_default(),
            ScenarioGrid::quick(),
            ScenarioGrid::shifting(),
        ] {
            let expanded = grid.scenarios();
            for (i, sc) in expanded.iter().enumerate() {
                assert_eq!(grid.scenario_at(i), *sc, "index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scenario_at_rejects_out_of_range_ids() {
        let g = ScenarioGrid::quick();
        g.scenario_at(g.len());
    }

    #[test]
    fn empty_dimension_empties_the_grid() {
        let g = ScenarioGrid::paper_default().seeds(Vec::new());
        assert!(g.is_empty());
        assert!(g.scenarios().is_empty());
    }

    #[test]
    fn seeds_are_the_innermost_dimension() {
        let s = ScenarioGrid::quick().scenarios();
        // quick() has seeds [2021, 7]: adjacent rows alternate seeds.
        assert_eq!(s[0].seed, 2021);
        assert_eq!(s[1].seed, 7);
        assert_eq!(s[0].system, s[1].system);
        assert_eq!(s[0].policy, s[1].policy);
    }

    #[test]
    fn scenarios_differ_only_in_declared_dimensions() {
        let s = ScenarioGrid::quick().scenarios();
        let distinct: std::collections::BTreeSet<String> =
            s.iter().map(|x| format!("{x:?}")).collect();
        assert_eq!(distinct.len(), s.len(), "every scenario is unique");
    }
}
