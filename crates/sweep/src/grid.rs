//! Declarative scenario grids: the cartesian product of dimension lists.

use crate::scenario::{PueSpec, Scenario, StorageVariant, SystemId, UpgradePath};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_sched::Policy;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// A sweep declared as value lists per dimension; expansion is the
/// cartesian product in a fixed row-major order (systems outermost, seeds
/// innermost), which is also the row order of the result table.
///
/// An empty dimension yields an empty grid — the executor treats that as
/// a zero-row sweep, not an error.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Deployed systems.
    pub systems: Vec<SystemId>,
    /// Storage-architecture variants.
    pub storage: Vec<StorageVariant>,
    /// Grid regions.
    pub regions: Vec<OperatorId>,
    /// Facility PUE models.
    pub pues: Vec<PueSpec>,
    /// Scheduling policies.
    pub policies: Vec<Policy>,
    /// Upgrade paths.
    pub upgrades: Vec<UpgradePath>,
    /// Random seeds (one full sub-grid per seed).
    pub seeds: Vec<u64>,
}

impl ScenarioGrid {
    /// Starts an empty grid; chain the dimension setters.
    pub fn new() -> ScenarioGrid {
        ScenarioGrid {
            systems: Vec::new(),
            storage: Vec::new(),
            regions: Vec::new(),
            pues: Vec::new(),
            policies: Vec::new(),
            upgrades: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Sets the system dimension.
    pub fn systems(mut self, v: impl Into<Vec<SystemId>>) -> Self {
        self.systems = v.into();
        self
    }

    /// Sets the storage-variant dimension.
    pub fn storage(mut self, v: impl Into<Vec<StorageVariant>>) -> Self {
        self.storage = v.into();
        self
    }

    /// Sets the region dimension.
    pub fn regions(mut self, v: impl Into<Vec<OperatorId>>) -> Self {
        self.regions = v.into();
        self
    }

    /// Sets the PUE dimension.
    pub fn pues(mut self, v: impl Into<Vec<PueSpec>>) -> Self {
        self.pues = v.into();
        self
    }

    /// Sets the policy dimension.
    pub fn policies(mut self, v: impl Into<Vec<Policy>>) -> Self {
        self.policies = v.into();
        self
    }

    /// Sets the upgrade-path dimension.
    pub fn upgrades(mut self, v: impl Into<Vec<UpgradePath>>) -> Self {
        self.upgrades = v.into();
        self
    }

    /// Sets the seed dimension.
    pub fn seeds(mut self, v: impl Into<Vec<u64>>) -> Self {
        self.seeds = v.into();
        self
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.systems.len()
            * self.storage.len()
            * self.regions.len()
            * self.pues.len()
            * self.policies.len()
            * self.upgrades.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into scenarios, ids in row order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        let mut id = 0;
        for &system in &self.systems {
            for &storage in &self.storage {
                for &region in &self.regions {
                    for &pue in &self.pues {
                        for &policy in &self.policies {
                            for &upgrade in &self.upgrades {
                                for &seed in &self.seeds {
                                    out.push(Scenario {
                                        id,
                                        system,
                                        storage,
                                        region,
                                        pue,
                                        policy,
                                        upgrade,
                                        seed,
                                    });
                                    id += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The default full sweep: every Table 2 system × both storage
    /// variants × all seven Table 3 regions × constant and seasonal PUE ×
    /// three policies × two upgrade paths — 504 scenarios per seed.
    pub fn paper_default() -> ScenarioGrid {
        ScenarioGrid::new()
            .systems(SystemId::ALL)
            .storage(StorageVariant::ALL)
            .regions(OperatorId::ALL)
            .pues([
                PueSpec::Constant(1.2),
                PueSpec::Seasonal {
                    mean: 1.2,
                    amplitude: 0.1,
                },
            ])
            .policies([
                Policy::Fifo,
                Policy::GreenestWindow { horizon_hours: 24 },
                Policy::ThresholdDefer {
                    threshold_g_per_kwh: 150.0,
                },
            ])
            .upgrades([
                UpgradePath {
                    from: NodeGen::P100Node,
                    to: NodeGen::A100Node,
                    suite: Suite::Nlp,
                },
                UpgradePath {
                    from: NodeGen::V100Node,
                    to: NodeGen::A100Node,
                    suite: Suite::Vision,
                },
            ])
            .seeds([2021])
    }

    /// A 16-scenario grid for demos, doctests and smoke tests.
    pub fn quick() -> ScenarioGrid {
        ScenarioGrid::new()
            .systems([SystemId::Frontier, SystemId::Perlmutter])
            .storage([StorageVariant::Baseline])
            .regions([OperatorId::Eso, OperatorId::Ciso])
            .pues([PueSpec::Constant(1.2)])
            .policies([Policy::Fifo, Policy::GreenestWindow { horizon_hours: 24 }])
            .upgrades([UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            }])
            .seeds([2021, 7])
    }
}

impl Default for ScenarioGrid {
    fn default() -> ScenarioGrid {
        ScenarioGrid::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_the_dimension_product() {
        let g = ScenarioGrid::paper_default();
        assert_eq!(g.len(), 3 * 2 * 7 * 2 * 3 * 2);
        assert_eq!(g.scenarios().len(), g.len());
        assert!(g.len() >= 500, "the default sweep must cover ≥500 points");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let s = ScenarioGrid::quick().scenarios();
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.id, i);
        }
    }

    #[test]
    fn empty_dimension_empties_the_grid() {
        let g = ScenarioGrid::paper_default().seeds(Vec::new());
        assert!(g.is_empty());
        assert!(g.scenarios().is_empty());
    }

    #[test]
    fn seeds_are_the_innermost_dimension() {
        let s = ScenarioGrid::quick().scenarios();
        // quick() has seeds [2021, 7]: adjacent rows alternate seeds.
        assert_eq!(s[0].seed, 2021);
        assert_eq!(s[1].seed, 7);
        assert_eq!(s[0].system, s[1].system);
        assert_eq!(s[0].policy, s[1].policy);
    }

    #[test]
    fn scenarios_differ_only_in_declared_dimensions() {
        let s = ScenarioGrid::quick().scenarios();
        let distinct: std::collections::BTreeSet<String> =
            s.iter().map(|x| format!("{x:?}")).collect();
        assert_eq!(distinct.len(), s.len(), "every scenario is unique");
    }
}
