//! Pluggable row sinks: where streamed sweep rows go.
//!
//! The streaming executor ([`crate::Sweep`]) forwards every evaluated
//! [`SweepRow`] **in grid order** to the sinks attached to the run. A
//! sink sees three calls — [`RowSink::begin`] once, [`RowSink::row`]
//! per row, [`RowSink::finish`] once — and must never buffer rows:
//! bounded sweep memory at 10^6 scenarios depends on sinks being O(1)
//! in row count ([`CollectSink`] is the deliberate exception, kept for
//! the deprecated [`crate::SweepResults`] compatibility path).
//!
//! ## The frozen byte contract
//!
//! [`CsvSink`] and [`JsonSink`] are THE sweep emitters: the historical
//! `SweepResults::to_csv`/`to_json` now delegate to them, and golden
//! tests pin their output to the pre-streaming bytes for the default,
//! quick, and shifting grids. Anything here that changes a byte is a
//! breaking change to downstream diff-based CI.
//!
//! ## Full vs fragment mode
//!
//! Both emitters run in **full** mode (header / array brackets
//! included — the single-machine document) or **fragment** mode (rows
//! only — one shard's slice of the document). Fragments are designed so
//! the canonical document is the plain concatenation
//! `prologue ++ fragment_0 ++ … ++ fragment_{N-1} ++ epilogue`
//! (see [`crate::shard`]): CSV fragments omit the header; JSON
//! fragments omit the brackets and lead with the `,\n` separator when
//! the fragment continues a previous one.
//!
//! Every byte-emitting sink tracks an FNV-1a 64 [`SinkDigest`] of what
//! it wrote, which shard manifests embed and `--merge` re-validates.

use crate::scenario::Scenario;
use crate::table::{SweepRow, COLUMNS, FORECAST_COLUMNS};
use std::io::{self, Write};

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — the digest primitive shared by sinks, shard
/// manifests, and grid fingerprints. Not cryptographic; it guards
/// against truncation, corruption, and mixed-up shard files, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a 64 digest over more bytes.
pub fn fnv1a64_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// What a byte-emitting sink wrote: length and FNV-1a 64 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkDigest {
    /// Bytes written.
    pub bytes: u64,
    /// FNV-1a 64 of those bytes.
    pub fnv64: u64,
}

/// A destination for sweep rows, driven in grid order.
///
/// Contract (specified in DESIGN.md §11):
/// - `begin` is called exactly once, before any row;
/// - `row` is called once per evaluated scenario, in **strictly
///   ascending grid order** regardless of worker count or shard;
/// - `finish` is called exactly once after the last row (also when the
///   sweep had zero rows), and must flush;
/// - a sink must not retain rows (O(1) memory in row count) unless
///   collecting is its documented purpose;
/// - any error aborts the sweep — workers are torn down and the error
///   surfaces from [`crate::Sweep::run`].
pub trait RowSink {
    /// Starts the stream (headers, array brackets, …).
    fn begin(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Consumes the next row in grid order.
    fn row(&mut self, row: &SweepRow) -> io::Result<()>;

    /// Ends the stream and flushes.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Length + digest of the bytes this sink wrote, when it writes
    /// bytes at all.
    fn digest(&self) -> Option<SinkDigest> {
        None
    }
}

/// A writer wrapper that byte-counts and FNV-digests everything written
/// through it.
#[derive(Debug)]
struct DigestWriter<W: Write> {
    inner: W,
    bytes: u64,
    fnv: u64,
}

impl<W: Write> DigestWriter<W> {
    fn new(inner: W) -> DigestWriter<W> {
        DigestWriter {
            inner,
            bytes: 0,
            fnv: FNV_OFFSET,
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)?;
        self.bytes += buf.len() as u64;
        self.fnv = fnv1a64_update(self.fnv, buf);
        Ok(())
    }

    fn digest(&self) -> SinkDigest {
        SinkDigest {
            bytes: self.bytes,
            fnv64: self.fnv,
        }
    }
}

/// Stable decimal formatting: enough digits to distinguish real metric
/// differences, no dependence on shortest-roundtrip printing.
fn num(v: f64) -> String {
    format!("{v:.4}")
}

fn opt(v: Option<f64>) -> String {
    v.map(num).unwrap_or_default()
}

/// JSON string escaping: the API's emitter, shared so the sweep's JSON
/// and `hpcarbon estimate` output can never desynchronize.
fn json_string(s: &str) -> String {
    hpcarbon_api::json::esc(s)
}

/// JSON number with the same fixed `{:.4}` formatting as the CSV;
/// `null` when undefined. Also the API's emitter.
fn json_num(v: Option<f64>) -> String {
    hpcarbon_api::json::fmt_metric(v)
}

/// The scenario dimensions of one row as display strings, CSV order.
fn dimension_cells(s: &Scenario) -> [String; 9] {
    [
        s.id.to_string(),
        s.system.label().to_string(),
        s.storage.label().to_string(),
        s.region.info().short.to_string(),
        s.source.label().to_string(),
        s.pue.label(),
        s.policy.label().to_string(),
        s.upgrade.label(),
        s.seed.to_string(),
    ]
}

/// RFC-4180 cell escaping (matches `hpcarbon_report::emit::Csv`).
fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// The CSV header line (with trailing newline).
pub(crate) fn csv_header() -> String {
    csv_header_with(false)
}

/// The CSV header line, optionally extended with the forecast columns.
pub(crate) fn csv_header_with(forecast: bool) -> String {
    let mut line = COLUMNS.join(",");
    if forecast {
        line.push(',');
        line.push_str(&FORECAST_COLUMNS.join(","));
    }
    line.push('\n');
    line
}

/// One row as an RFC-4180 CSV line (with trailing newline). Error rows
/// carry the error message and empty metric cells. `forecast` appends
/// the extension columns (empty on error rows and forecast-free
/// outcomes, like the other optional metrics).
pub(crate) fn csv_line_with(r: &SweepRow, forecast: bool) -> String {
    let dims = dimension_cells(&r.scenario);
    let (status, error, metrics) = match &r.outcome {
        Ok(o) => (
            "ok".to_string(),
            String::new(),
            [
                num(o.embodied_t),
                opt(o.storage_delta_pct),
                num(o.median_g_per_kwh),
                num(o.cov_percent),
                num(o.sched_carbon_kg),
                num(o.sched_energy_kwh),
                num(o.mean_wait_hours),
                num(o.max_wait_hours),
                num(o.shift_saved_kg),
                num(o.shift_saved_pct),
                num(o.node_annual_kg),
                opt(o.break_even_years),
                num(o.asymptotic_savings_pct),
                o.verdict.to_string(),
            ],
        ),
        Err(e) => (
            "error".to_string(),
            e.to_string(),
            std::array::from_fn(|_| String::new()),
        ),
    };
    let extra = forecast.then(|| {
        let o = r.outcome.as_ref().ok();
        [
            opt(o.and_then(|o| o.oracle_saved_kg)),
            opt(o.and_then(|o| o.oracle_saved_pct)),
        ]
    });
    let cells: Vec<String> = dims
        .into_iter()
        .chain([status, error])
        .chain(metrics)
        .chain(extra.into_iter().flatten())
        .map(|c| csv_escape(&c))
        .collect();
    debug_assert_eq!(
        cells.len(),
        COLUMNS.len() + if forecast { FORECAST_COLUMNS.len() } else { 0 }
    );
    let mut line = cells.join(",");
    line.push('\n');
    line
}

/// One row as the two-space-indented JSON object (`  {…}`, no separator
/// or newline) of the sweep's array document: a **uniform schema**
/// where every row carries every CSV column. `id` and `seed` are
/// numbers; the other dimensions are strings; `error` and `verdict` are
/// strings or `null`; metrics are numbers or `null` (always `null` on
/// error rows, mirroring the CSV's empty cells).
pub(crate) fn json_object_with(r: &SweepRow, forecast: bool) -> String {
    let dims = dimension_cells(&r.scenario);
    let mut obj = String::from("  {");
    let push = |obj: &mut String, key: &str, value: String| {
        if !obj.ends_with('{') {
            obj.push_str(", ");
        }
        obj.push_str(&format!("\"{key}\": {value}"));
    };
    push(&mut obj, "id", r.scenario.id.to_string());
    for (key, cell) in COLUMNS[1..8].iter().zip(dims[1..8].iter()) {
        push(&mut obj, key, json_string(cell));
    }
    push(&mut obj, "seed", r.scenario.seed.to_string());
    let o = r.outcome.as_ref();
    push(
        &mut obj,
        "status",
        json_string(if o.is_ok() { "ok" } else { "error" }),
    );
    push(
        &mut obj,
        "error",
        match &r.outcome {
            Ok(_) => "null".to_string(),
            Err(e) => json_string(&e.to_string()),
        },
    );
    push(
        &mut obj,
        "embodied_t",
        json_num(o.ok().map(|o| o.embodied_t)),
    );
    push(
        &mut obj,
        "storage_delta_pct",
        json_num(o.ok().and_then(|o| o.storage_delta_pct)),
    );
    push(
        &mut obj,
        "median_g_per_kwh",
        json_num(o.ok().map(|o| o.median_g_per_kwh)),
    );
    push(&mut obj, "cov_pct", json_num(o.ok().map(|o| o.cov_percent)));
    push(
        &mut obj,
        "sched_kg",
        json_num(o.ok().map(|o| o.sched_carbon_kg)),
    );
    push(
        &mut obj,
        "sched_kwh",
        json_num(o.ok().map(|o| o.sched_energy_kwh)),
    );
    push(
        &mut obj,
        "mean_wait_h",
        json_num(o.ok().map(|o| o.mean_wait_hours)),
    );
    push(
        &mut obj,
        "max_wait_h",
        json_num(o.ok().map(|o| o.max_wait_hours)),
    );
    push(
        &mut obj,
        "saved_kg",
        json_num(o.ok().map(|o| o.shift_saved_kg)),
    );
    push(
        &mut obj,
        "saved_pct",
        json_num(o.ok().map(|o| o.shift_saved_pct)),
    );
    push(
        &mut obj,
        "node_annual_kg",
        json_num(o.ok().map(|o| o.node_annual_kg)),
    );
    push(
        &mut obj,
        "break_even_y",
        json_num(o.ok().and_then(|o| o.break_even_years)),
    );
    push(
        &mut obj,
        "asymptotic_pct",
        json_num(o.ok().map(|o| o.asymptotic_savings_pct)),
    );
    push(
        &mut obj,
        "verdict",
        match o.ok() {
            Some(o) => json_string(o.verdict),
            None => "null".to_string(),
        },
    );
    if forecast {
        push(
            &mut obj,
            "oracle_saved_kg",
            json_num(o.ok().and_then(|o| o.oracle_saved_kg)),
        );
        push(
            &mut obj,
            "oracle_saved_pct",
            json_num(o.ok().and_then(|o| o.oracle_saved_pct)),
        );
    }
    obj.push('}');
    obj
}

/// Streams rows as RFC-4180 CSV.
///
/// Full mode writes the header in `begin`; fragment mode writes rows
/// only (the merge step supplies the header once).
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: DigestWriter<W>,
    header: bool,
    forecast: bool,
}

impl<W: Write> CsvSink<W> {
    /// A full-document CSV sink (header + rows).
    pub fn new(w: W) -> CsvSink<W> {
        CsvSink {
            out: DigestWriter::new(w),
            header: true,
            forecast: false,
        }
    }

    /// A fragment sink: rows only, no header.
    pub fn fragment(w: W) -> CsvSink<W> {
        CsvSink {
            out: DigestWriter::new(w),
            header: false,
            forecast: false,
        }
    }

    /// Opts into the forecast extension columns (`oracle_saved_kg`,
    /// `oracle_saved_pct`), appended after `verdict`. Without this the
    /// emission is byte-identical to the frozen 25-column contract,
    /// whether or not the sweep ran under a forecast model.
    pub fn forecast_columns(mut self) -> CsvSink<W> {
        self.forecast = true;
        self
    }

    /// Consumes the sink, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.out.inner
    }
}

impl<W: Write> RowSink for CsvSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        if self.header {
            self.out
                .write_all(csv_header_with(self.forecast).as_bytes())?;
        }
        Ok(())
    }

    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        self.out
            .write_all(csv_line_with(row, self.forecast).as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.inner.flush()
    }

    fn digest(&self) -> Option<SinkDigest> {
        Some(self.out.digest())
    }
}

/// Streams rows as the sweep's JSON array document.
///
/// Full mode brackets the array; fragment mode emits the row objects
/// (and their separating `,\n`) only, leading with a separator when the
/// fragment continues an earlier one — so concatenating `[\n`, the
/// fragments in shard order, and the closing `\n]\n` reproduces the
/// full document byte-for-byte.
#[derive(Debug)]
pub struct JsonSink<W: Write> {
    out: DigestWriter<W>,
    brackets: bool,
    /// Whether the next row needs a leading `,\n` separator.
    separate: bool,
    rows: u64,
    forecast: bool,
}

impl<W: Write> JsonSink<W> {
    /// A full-document JSON sink (`[` … `]`).
    pub fn new(w: W) -> JsonSink<W> {
        JsonSink {
            out: DigestWriter::new(w),
            brackets: true,
            separate: false,
            rows: 0,
            forecast: false,
        }
    }

    /// A fragment sink: row objects only. `continues` declares that the
    /// fragment follows earlier rows (every shard but the first), so
    /// its first row leads with the `,\n` separator.
    pub fn fragment(w: W, continues: bool) -> JsonSink<W> {
        JsonSink {
            out: DigestWriter::new(w),
            brackets: false,
            separate: continues,
            rows: 0,
            forecast: false,
        }
    }

    /// Opts into the forecast extension keys (`oracle_saved_kg`,
    /// `oracle_saved_pct`) on every row object. Without this the
    /// emission is byte-identical to the frozen schema.
    pub fn forecast_columns(mut self) -> JsonSink<W> {
        self.forecast = true;
        self
    }

    /// Consumes the sink, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.out.inner
    }
}

impl<W: Write> RowSink for JsonSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        if self.brackets {
            self.out.write_all(b"[\n")?;
        }
        Ok(())
    }

    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        if self.separate {
            self.out.write_all(b",\n")?;
        }
        self.separate = true;
        self.rows += 1;
        self.out
            .write_all(json_object_with(row, self.forecast).as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        if self.brackets {
            if self.rows > 0 {
                self.out.write_all(b"\n]\n")?;
            } else {
                self.out.write_all(b"]\n")?;
            }
        }
        self.out.inner.flush()
    }

    fn digest(&self) -> Option<SinkDigest> {
        Some(self.out.digest())
    }
}

/// Collects rows into memory — O(rows), **not** for million-scenario
/// sweeps. Exists to back the deprecated [`crate::SweepResults`]
/// compatibility wrapper and small in-process analyses.
#[derive(Debug, Default)]
pub struct CollectSink {
    rows: Vec<SweepRow>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The collected rows, grid order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Consumes the collector into the legacy results table.
    #[allow(deprecated)]
    pub fn into_results(self) -> crate::table::SweepResults {
        crate::table::SweepResults::new(self.rows)
    }
}

impl RowSink for CollectSink {
    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PueSpec, StorageVariant, SystemId, TraceSource, UpgradePath};
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_sched::Policy;
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn row(id: usize) -> SweepRow {
        let sc = Scenario {
            id,
            system: SystemId::Frontier,
            storage: StorageVariant::Baseline,
            region: OperatorId::Eso,
            source: TraceSource::Paper,
            pue: PueSpec::Constant(1.2),
            policy: Policy::Fifo,
            upgrade: UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            },
            seed: 2021,
        };
        SweepRow {
            scenario: sc,
            outcome: Err(crate::ScenarioError::InvalidPue(PueSpec::Constant(0.5))),
        }
    }

    fn drive(sink: &mut dyn RowSink, rows: &[SweepRow]) {
        sink.begin().unwrap();
        for r in rows {
            sink.row(r).unwrap();
        }
        sink.finish().unwrap();
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_matches_bytes_written() {
        let mut buf = Vec::new();
        let mut sink = CsvSink::new(&mut buf);
        drive(&mut sink, &[row(0), row(1)]);
        let d = sink.digest().unwrap();
        assert_eq!(d.bytes, buf.len() as u64);
        assert_eq!(d.fnv64, fnv1a64(&buf));
    }

    #[test]
    fn csv_fragments_concatenate_to_the_full_document() {
        let rows = [row(0), row(1), row(2)];
        let mut full = Vec::new();
        drive(&mut CsvSink::new(&mut full), &rows);
        let mut merged = csv_header().into_bytes();
        for chunk in [&rows[..1], &rows[1..]] {
            let mut frag = Vec::new();
            drive(&mut CsvSink::fragment(&mut frag), chunk);
            merged.extend_from_slice(&frag);
        }
        assert_eq!(full, merged);
    }

    #[test]
    fn json_fragments_concatenate_to_the_full_document() {
        let rows = [row(0), row(1), row(2)];
        let mut full = Vec::new();
        drive(&mut JsonSink::new(&mut full), &rows);
        let mut merged = b"[\n".to_vec();
        for (i, chunk) in [&rows[..2], &rows[2..]].into_iter().enumerate() {
            let mut frag = Vec::new();
            drive(&mut JsonSink::fragment(&mut frag, i > 0), chunk);
            merged.extend_from_slice(&frag);
        }
        merged.extend_from_slice(b"\n]\n");
        assert_eq!(full, merged);
    }

    #[test]
    fn empty_json_document_is_the_bare_brackets() {
        let mut buf = Vec::new();
        drive(&mut JsonSink::new(&mut buf), &[]);
        assert_eq!(buf, b"[\n]\n");
    }

    fn ok_row(id: usize, oracle: Option<(f64, f64)>) -> SweepRow {
        let mut r = row(id);
        r.outcome = Ok(crate::scenario::ScenarioOutcome {
            embodied_t: 1234.5,
            storage_delta_pct: None,
            median_g_per_kwh: 200.0,
            cov_percent: 30.0,
            sched_carbon_kg: 50.0,
            sched_energy_kwh: 400.0,
            mean_wait_hours: 1.0,
            max_wait_hours: 4.0,
            shift_saved_kg: 2.5,
            shift_saved_pct: 5.0,
            oracle_saved_kg: oracle.map(|(kg, _)| kg),
            oracle_saved_pct: oracle.map(|(_, pct)| pct),
            node_annual_kg: 900.0,
            break_even_years: Some(3.0),
            asymptotic_savings_pct: 40.0,
            verdict: "upgrade",
        });
        r
    }

    #[test]
    fn forecast_columns_are_strictly_additive() {
        // Default sinks ignore the oracle fields entirely: a
        // forecast-run row emits the frozen bytes.
        let rows = [ok_row(0, Some((4.0, 8.0))), row(1)];
        let plain_rows = [ok_row(0, None), row(1)];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        drive(&mut CsvSink::new(&mut a), &rows);
        drive(&mut CsvSink::new(&mut b), &plain_rows);
        assert_eq!(a, b);
        assert!(!String::from_utf8(a).unwrap().contains("oracle"));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        drive(&mut JsonSink::new(&mut a), &rows);
        drive(&mut JsonSink::new(&mut b), &plain_rows);
        assert_eq!(a, b);

        // Opted-in sinks append the two columns after `verdict` — on
        // every row, empty/null when the value is undefined.
        let mut csv = Vec::new();
        drive(&mut CsvSink::new(&mut csv).forecast_columns(), &rows);
        let csv = String::from_utf8(csv).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with("verdict,oracle_saved_kg,oracle_saved_pct"));
        assert!(lines[1].ends_with("upgrade,4.0000,8.0000"));
        assert!(lines[2].ends_with(",,")); // error row: empty cells
        for line in &lines {
            assert_eq!(line.split(',').count(), COLUMNS.len() + 2, "{line}");
        }
        let mut json = Vec::new();
        drive(&mut JsonSink::new(&mut json).forecast_columns(), &rows);
        let json = String::from_utf8(json).unwrap();
        assert!(json.contains("\"oracle_saved_kg\": 4.0000, \"oracle_saved_pct\": 8.0000"));
        assert!(json.contains("\"oracle_saved_kg\": null, \"oracle_saved_pct\": null"));
    }

    #[test]
    fn collect_sink_keeps_grid_order() {
        let mut sink = CollectSink::new();
        drive(&mut sink, &[row(0), row(1)]);
        assert_eq!(sink.rows().len(), 2);
        assert_eq!(sink.rows()[1].scenario.id, 1);
    }
}
