//! Grid sharding, shard manifests, and shard-output merging.
//!
//! A sweep over 10^6 scenarios wants to run on several machines at
//! once. The partition is deterministic and declarative: `--shard i/N`
//! evaluates the contiguous id range `[i·n/N, (i+1)·n/N)` of the grid,
//! so the N shards are pairwise disjoint and their union is exactly the
//! grid — properties the proptest suite checks for arbitrary `(n, N)`.
//!
//! Each shard run writes a **manifest** next to its outputs recording
//! what was swept (a grid fingerprint), which slice (`i/N` plus the row
//! range), and what came out (per-file byte counts and FNV-1a 64
//! digests). The manifest makes two operations safe:
//!
//! - **resume**: a rerun validates the existing manifest + file digests
//!   and skips recomputation when they match;
//! - **merge**: `hpcarbon sweep --merge` validates that the manifests
//!   form a complete, compatible partition and concatenates the
//!   fragment files into the canonical single-machine document —
//!   byte-identical to an unsharded run (`cmp`-enforced in CI).
//!
//! The manifest format (`hpcarbon-sweep-shard-v1`) is specified in
//! DESIGN.md §11; digests are hex strings because the JSON number space
//! (f64) cannot carry 64-bit integers exactly.

use crate::exec::SweepConfig;
use crate::grid::ScenarioGrid;
use crate::sink::fnv1a64;
use hpcarbon_api::json::{self, Json};
use std::fmt;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// The manifest format tag; bumped on any incompatible change.
pub const MANIFEST_FORMAT: &str = "hpcarbon-sweep-shard-v1";

/// File name of the manifest inside a shard output directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One slice of an N-way deterministic grid partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: usize,
    /// Total shard count (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// Parses the CLI's `i/N` syntax.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected i/N, got `{s}`"))?;
        let index: usize = i.trim().parse().map_err(|_| format!("bad index `{i}`"))?;
        let count: usize = n.trim().parse().map_err(|_| format!("bad count `{n}`"))?;
        if count == 0 {
            return Err("shard count must be ≥ 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// The contiguous id range this shard covers in an `n`-row grid:
    /// `[index·n/count, (index+1)·n/count)`. Ranges of consecutive
    /// shards abut; the union over all indices is exactly `0..n`, and
    /// sizes differ by at most one row.
    pub fn range(&self, n: usize) -> Range<usize> {
        debug_assert!(self.index < self.count);
        (self.index * n / self.count)..((self.index + 1) * n / self.count)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Fingerprints the swept space: FNV-1a 64 over the grid's dimension
/// lists and the workload config. Two runs with equal fingerprints
/// evaluated the same scenarios in the same order, so their shards are
/// merge-compatible. (Debug formatting is stable: plain derived enums
/// and numbers, no addresses.)
pub fn grid_fingerprint(grid: &ScenarioGrid, config: &SweepConfig) -> u64 {
    fnv1a64(format!("{grid:?}|{config:?}").as_bytes())
}

/// Byte count + digest of one emitted output file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputDigest {
    /// File name relative to the shard directory (e.g. `sweep.csv`).
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 of the file contents.
    pub fnv64: u64,
}

/// What one shard run swept and emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Fingerprint of (grid, config) — see [`grid_fingerprint`].
    pub fingerprint: u64,
    /// The slice of the partition.
    pub shard: ShardSpec,
    /// Grid id range the shard evaluated.
    pub rows: Range<usize>,
    /// Rows that evaluated successfully.
    pub ok: usize,
    /// Rows that failed soft.
    pub errors: usize,
    /// Emitted files with digests, emission order.
    pub outputs: Vec<OutputDigest>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> io::Result<&'a Json> {
    obj.get(key)
        .ok_or_else(|| invalid(format!("manifest {ctx}: missing `{key}`")))
}

fn usize_field(obj: &Json, key: &str, ctx: &str) -> io::Result<usize> {
    match field(obj, key, ctx)? {
        Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v as usize),
        other => Err(invalid(format!(
            "manifest {ctx}: `{key}` must be a non-negative integer, got {}",
            other.type_name()
        ))),
    }
}

fn str_field<'a>(obj: &'a Json, key: &str, ctx: &str) -> io::Result<&'a str> {
    match field(obj, key, ctx)? {
        Json::Str(s) => Ok(s),
        other => Err(invalid(format!(
            "manifest {ctx}: `{key}` must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn hex_field(obj: &Json, key: &str, ctx: &str) -> io::Result<u64> {
    let s = str_field(obj, key, ctx)?;
    parse_hex64(s).ok_or_else(|| invalid(format!("manifest {ctx}: `{key}` is not 0x-hex: `{s}`")))
}

impl ShardManifest {
    /// Serializes to the `hpcarbon-sweep-shard-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"format\": {},\n", json::esc(MANIFEST_FORMAT)));
        out.push_str(&format!(
            "  \"grid_fingerprint\": {},\n",
            json::esc(&hex64(self.fingerprint))
        ));
        out.push_str(&format!(
            "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
            self.shard.index, self.shard.count
        ));
        out.push_str(&format!(
            "  \"rows\": {{\"start\": {}, \"end\": {}}},\n",
            self.rows.start, self.rows.end
        ));
        out.push_str(&format!("  \"ok\": {},\n", self.ok));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str("  \"outputs\": [");
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"bytes\": {}, \"fnv64\": {}}}",
                json::esc(&o.path),
                o.bytes,
                json::esc(&hex64(o.fnv64))
            ));
        }
        if !self.outputs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses and structurally validates a manifest document.
    pub fn from_json(src: &str) -> io::Result<ShardManifest> {
        let doc = json::parse(src).map_err(|e| invalid(format!("manifest: {e}")))?;
        let format = str_field(&doc, "format", "root")?;
        if format != MANIFEST_FORMAT {
            return Err(invalid(format!(
                "manifest format `{format}` is not `{MANIFEST_FORMAT}`"
            )));
        }
        let shard_obj = field(&doc, "shard", "root")?;
        let shard = ShardSpec {
            index: usize_field(shard_obj, "index", "shard")?,
            count: usize_field(shard_obj, "count", "shard")?,
        };
        if shard.count == 0 || shard.index >= shard.count {
            return Err(invalid(format!("manifest shard {shard} is inconsistent")));
        }
        let rows_obj = field(&doc, "rows", "root")?;
        let rows = usize_field(rows_obj, "start", "rows")?..usize_field(rows_obj, "end", "rows")?;
        if rows.start > rows.end {
            return Err(invalid(format!(
                "manifest row range {}..{} is inverted",
                rows.start, rows.end
            )));
        }
        let outputs = match field(&doc, "outputs", "root")? {
            Json::Arr(items) => items
                .iter()
                .map(|o| {
                    Ok(OutputDigest {
                        path: str_field(o, "path", "outputs")?.to_string(),
                        bytes: usize_field(o, "bytes", "outputs")? as u64,
                        fnv64: hex_field(o, "fnv64", "outputs")?,
                    })
                })
                .collect::<io::Result<Vec<_>>>()?,
            other => {
                return Err(invalid(format!(
                    "manifest `outputs` must be an array, got {}",
                    other.type_name()
                )))
            }
        };
        Ok(ShardManifest {
            fingerprint: hex_field(&doc, "grid_fingerprint", "root")?,
            shard,
            rows,
            ok: usize_field(&doc, "ok", "root")?,
            errors: usize_field(&doc, "errors", "root")?,
            outputs,
        })
    }

    /// Writes the manifest into `dir` as [`MANIFEST_FILE`].
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        fs::write(dir.join(MANIFEST_FILE), self.to_json())
    }

    /// Loads the manifest from `dir` and verifies every recorded output
    /// file is present with matching length and digest. Returns the
    /// manifest when everything checks out.
    pub fn load_verified(dir: &Path) -> io::Result<ShardManifest> {
        let src = fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let manifest = ShardManifest::from_json(&src)?;
        for o in &manifest.outputs {
            let bytes = fs::read(dir.join(&o.path))
                .map_err(|e| invalid(format!("{}: {e}", dir.join(&o.path).display())))?;
            if bytes.len() as u64 != o.bytes || fnv1a64(&bytes) != o.fnv64 {
                return Err(invalid(format!(
                    "{} does not match its manifest digest (expected {} bytes {}, \
                     found {} bytes {})",
                    dir.join(&o.path).display(),
                    o.bytes,
                    hex64(o.fnv64),
                    bytes.len(),
                    hex64(fnv1a64(&bytes)),
                )));
            }
        }
        Ok(manifest)
    }
}

/// Validates that `dirs` hold a complete shard partition (one manifest
/// per shard, same fingerprint and count, indices `0..N` exactly once,
/// abutting row ranges starting at 0) with intact output files, and
/// returns the manifests sorted by shard index.
pub fn validate_partition(dirs: &[PathBuf]) -> io::Result<Vec<(PathBuf, ShardManifest)>> {
    if dirs.is_empty() {
        return Err(invalid("no shard directories given".to_string()));
    }
    let mut shards: Vec<(PathBuf, ShardManifest)> = dirs
        .iter()
        .map(|d| Ok((d.clone(), ShardManifest::load_verified(d)?)))
        .collect::<io::Result<Vec<_>>>()?;
    shards.sort_by_key(|(_, m)| m.shard.index);
    let first = &shards[0].1;
    let count = first.shard.count;
    if shards.len() != count {
        return Err(invalid(format!(
            "partition declares {count} shards but {} directories were given",
            shards.len()
        )));
    }
    let mut next_row = 0;
    for (i, (dir, m)) in shards.iter().enumerate() {
        if m.fingerprint != first.fingerprint {
            return Err(invalid(format!(
                "{}: grid fingerprint {} differs from shard 0's {}",
                dir.display(),
                hex64(m.fingerprint),
                hex64(first.fingerprint)
            )));
        }
        if m.shard.count != count || m.shard.index != i {
            return Err(invalid(format!(
                "{}: expected shard {i}/{count}, found {}",
                dir.display(),
                m.shard
            )));
        }
        if m.rows.start != next_row {
            return Err(invalid(format!(
                "{}: rows start at {} but the previous shard ended at {next_row}",
                dir.display(),
                m.rows.start
            )));
        }
        next_row = m.rows.end;
    }
    Ok(shards)
}

/// Concatenates validated shard fragments of `file` (e.g. `sweep.csv`)
/// into `out`, prepending `prologue` and appending `epilogue` — the
/// canonical-document assembly for both emitters: CSV uses the header
/// line and an empty epilogue, JSON uses `[\n` and the closing bracket.
pub fn merge_fragments(
    shards: &[(PathBuf, ShardManifest)],
    file: &str,
    prologue: &[u8],
    epilogue: &[u8],
    out: &Path,
) -> io::Result<OutputDigest> {
    let mut merged = prologue.to_vec();
    for (dir, m) in shards {
        if !m.outputs.iter().any(|o| o.path == file) {
            return Err(invalid(format!(
                "{}: manifest has no `{file}` output",
                dir.display()
            )));
        }
        merged.extend_from_slice(&fs::read(dir.join(file))?);
    }
    merged.extend_from_slice(epilogue);
    fs::write(out, &merged)?;
    Ok(OutputDigest {
        path: file.to_string(),
        bytes: merged.len() as u64,
        fnv64: fnv1a64(&merged),
    })
}

/// Canonical CSV output file name (`hpcarbon sweep` and shard runs).
pub const CSV_FILE: &str = "sweep.csv";

/// Canonical JSON output file name.
pub const JSON_FILE: &str = "sweep.json";

/// Validates `dirs` as a complete shard partition and reassembles the
/// canonical single-machine [`CSV_FILE`] and [`JSON_FILE`] under
/// `out_dir`, byte-identical to an unsharded run. Returns the total
/// row count and the merged digests (CSV first).
pub fn merge_sweep_outputs(
    dirs: &[PathBuf],
    out_dir: &Path,
) -> io::Result<(usize, Vec<OutputDigest>)> {
    let shards = validate_partition(dirs)?;
    let rows = shards.last().map_or(0, |(_, m)| m.rows.end);
    fs::create_dir_all(out_dir)?;
    let csv = merge_fragments(
        &shards,
        CSV_FILE,
        crate::sink::csv_header().as_bytes(),
        b"",
        &out_dir.join(CSV_FILE),
    )?;
    let json_epilogue: &[u8] = if rows > 0 { b"\n]\n" } else { b"]\n" };
    let json = merge_fragments(
        &shards,
        JSON_FILE,
        b"[\n",
        json_epilogue,
        &out_dir.join(JSON_FILE),
    )?;
    Ok((rows, vec![csv, json]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("0/2"),
            Ok(ShardSpec { index: 0, count: 2 })
        );
        assert_eq!(
            ShardSpec::parse("3/4"),
            Ok(ShardSpec { index: 3, count: 4 })
        );
        assert!(ShardSpec::parse("2/2").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("1").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
    }

    #[test]
    fn ranges_partition_exactly() {
        for n in [0usize, 1, 7, 16, 100, 504] {
            for count in [1usize, 2, 3, 5, 8, 17] {
                let mut next = 0;
                for index in 0..count {
                    let r = ShardSpec { index, count }.range(n);
                    assert_eq!(r.start, next, "n={n} count={count} index={index}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, n, "union must cover the grid");
            }
        }
    }

    mod partition_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// For every grid size and shard count: the shard ranges are
            /// disjoint, in order, exhaustive (union = `0..n`), and
            /// balanced to within one row.
            #[test]
            fn shards_partition_any_grid(n in 0usize..2_000_000, count in 1usize..64) {
                let mut covered = 0usize;
                let (mut smallest, mut largest) = (usize::MAX, 0usize);
                for index in 0..count {
                    let r = ShardSpec { index, count }.range(n);
                    prop_assert_eq!(r.start, covered);
                    prop_assert!(r.end >= r.start);
                    smallest = smallest.min(r.len());
                    largest = largest.max(r.len());
                    covered = r.end;
                }
                prop_assert_eq!(covered, n);
                prop_assert!(largest - smallest <= 1, "sizes within one row");
            }

            /// Every grid id belongs to exactly one shard.
            #[test]
            fn each_id_lands_in_exactly_one_shard(
                n in 1usize..100_000,
                count in 1usize..32,
                id_frac in 0.0f64..1.0,
            ) {
                let id = ((n as f64 * id_frac) as usize).min(n - 1);
                let owners = (0..count)
                    .filter(|&index| ShardSpec { index, count }.range(n).contains(&id))
                    .count();
                prop_assert_eq!(owners, 1);
            }
        }
    }

    #[test]
    fn fingerprint_tracks_grid_and_config() {
        let g = ScenarioGrid::quick();
        let cfg = SweepConfig::fast();
        assert_eq!(grid_fingerprint(&g, &cfg), grid_fingerprint(&g, &cfg));
        assert_ne!(
            grid_fingerprint(&g, &cfg),
            grid_fingerprint(&ScenarioGrid::shifting(), &cfg)
        );
        assert_ne!(
            grid_fingerprint(&g, &cfg),
            grid_fingerprint(&g, &SweepConfig::paper_default())
        );
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = ShardManifest {
            fingerprint: 0xdead_beef_0123_4567,
            shard: ShardSpec { index: 1, count: 3 },
            rows: 10..20,
            ok: 9,
            errors: 1,
            outputs: vec![
                OutputDigest {
                    path: "sweep.csv".to_string(),
                    bytes: 123,
                    fnv64: u64::MAX,
                },
                OutputDigest {
                    path: "sweep.json".to_string(),
                    bytes: 456,
                    fnv64: 7,
                },
            ],
        };
        let parsed = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn manifest_parse_rejects_foreign_documents() {
        assert!(ShardManifest::from_json("{}").is_err());
        assert!(ShardManifest::from_json("[]").is_err());
        let wrong_format = ShardManifest {
            fingerprint: 1,
            shard: ShardSpec { index: 0, count: 1 },
            rows: 0..0,
            ok: 0,
            errors: 0,
            outputs: vec![],
        }
        .to_json()
        .replace(MANIFEST_FORMAT, "hpcarbon-sweep-shard-v0");
        assert!(ShardManifest::from_json(&wrong_format).is_err());
    }
}
