//! One grid point, evaluated end to end through the estimation API.
//!
//! A [`Scenario`] fixes every free variable of the paper's analyses —
//! which system is deployed (and with what storage architecture), which
//! regional grid powers it, how efficient the facility is, how jobs are
//! scheduled, and which upgrade is on the table. [`run_scenario`] turns
//! that point into a [`ScenarioOutcome`] of comparable metrics, or a
//! [`ScenarioError`] when the combination is infeasible (e.g. an all-flash
//! what-if on a system with no HDD tier). It never prints and never
//! panics on bad combinations, so batched executors can fan thousands of
//! points out and keep going.
//!
//! Since the front-door API landed, a scenario is exactly one
//! [`EstimateRequest`]: the dimension types live in [`hpcarbon_api`]
//! (re-exported here unchanged), and `run_scenario` delegates to the
//! default [`Estimator`] — the sweep is the API's batch-shaped
//! consumer, not a second implementation of the pipeline.
//! The produced CSV/JSON output is a frozen contract and stayed
//! byte-identical across the delegation.

use hpcarbon_api::{EstimateRequest, Estimator, FootprintReport};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_sched::Policy;
use hpcarbon_sim::rng::SimRng;
use hpcarbon_upgrade::savings::UsageLevel;

pub use hpcarbon_api::{ApiError, PueSpec, StorageVariant, SystemId, TraceSource, UpgradePath};

/// Why a scenario cannot be evaluated.
///
/// Since the API became the single front door this is the unified
/// [`ApiError`]; the historical variants (`WhatIf`, `Sched`,
/// `InvalidPue`) and their `Display` strings are unchanged, so error
/// cells in emitted CSV/JSON are byte-identical to earlier releases.
pub type ScenarioError = ApiError;

/// One fully specified grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the expanded grid (row order of the result table).
    pub id: usize,
    /// Deployed system.
    pub system: SystemId,
    /// Storage-architecture variant.
    pub storage: StorageVariant,
    /// Grid region powering the facility.
    pub region: OperatorId,
    /// Where the region's intensity trace comes from.
    pub source: TraceSource,
    /// Facility PUE model.
    pub pue: PueSpec,
    /// Scheduling policy for the job-trace run.
    pub policy: Policy,
    /// Upgrade question evaluated at the region's median intensity.
    pub upgrade: UpgradePath,
    /// Seed of this scenario's random streams.
    pub seed: u64,
}

impl Scenario {
    /// The root random stream of this scenario.
    ///
    /// Derived **only** from the scenario's seed dimension — never from
    /// grid position, thread id, or shared state — so outcomes are a pure
    /// function of the scenario and independent of executor parallelism.
    /// Named substreams fork off this root (`trace`, `jobs`).
    pub fn rng(&self) -> SimRng {
        SimRng::seed_from(self.seed)
    }

    /// The scenario as an API request under the sweep's workload knobs.
    /// This is the whole translation — the sweep adds no estimation
    /// semantics of its own.
    pub fn to_request(&self, cfg: &crate::exec::SweepConfig) -> EstimateRequest {
        EstimateRequest {
            schema_version: hpcarbon_api::SCHEMA_VERSION,
            system: self.system,
            storage: self.storage,
            region: self.region,
            source: self.source,
            pue: self.pue,
            policy: self.policy,
            partner: None, // the sweep keeps the policy-decides topology
            forecast: cfg.forecast,
            upgrade: self.upgrade,
            usage: UsageLevel::Medium.fraction(),
            seed: self.seed,
            year: cfg.year,
            jobs: cfg.jobs_per_scenario,
            cluster_gpus: cfg.cluster_gpus,
        }
    }
}

/// The comparable metrics of one evaluated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Embodied carbon of the (possibly transformed) inventory, tCO₂.
    pub embodied_t: f64,
    /// Relative embodied change of the storage what-if, % (`None` for the
    /// baseline variant).
    pub storage_delta_pct: Option<f64>,
    /// Median annual carbon intensity of the simulated region, gCO₂/kWh.
    pub median_g_per_kwh: f64,
    /// Coefficient of variation of the intensity trace, %.
    pub cov_percent: f64,
    /// Total operational carbon of the scheduled job trace, kgCO₂.
    pub sched_carbon_kg: f64,
    /// Total facility energy of the job trace, kWh.
    pub sched_energy_kwh: f64,
    /// Mean queue wait, hours.
    pub mean_wait_hours: f64,
    /// Max queue wait, hours.
    pub max_wait_hours: f64,
    /// Carbon saved versus running every job at arrival, kgCO₂ (negative
    /// when deferral backfired).
    pub shift_saved_kg: f64,
    /// The same savings as a percentage of the run-at-arrival baseline.
    pub shift_saved_pct: f64,
    /// What a perfect-knowledge planner would have saved, kgCO₂ —
    /// `None` unless the sweep ran under a forecast model, in which case
    /// `shift_saved_kg` is the *realized* savings against this oracle.
    pub oracle_saved_kg: Option<f64>,
    /// Oracle savings as a percentage of the run-at-arrival baseline.
    pub oracle_saved_pct: Option<f64>,
    /// Annual carbon of one `upgrade.from` node serving the reference
    /// workload under this scenario's PUE model, kgCO₂. Seasonal PUE
    /// models are integrated hour by hour against the trace.
    pub node_annual_kg: f64,
    /// Upgrade break-even time at the median intensity, years (`None`
    /// when the upgrade never pays off).
    pub break_even_years: Option<f64>,
    /// Asymptotic energy saving of the upgrade, %.
    pub asymptotic_savings_pct: f64,
    /// Advisor verdict at a five-year horizon.
    pub verdict: &'static str,
}

impl From<FootprintReport> for ScenarioOutcome {
    fn from(r: FootprintReport) -> ScenarioOutcome {
        ScenarioOutcome {
            embodied_t: r.embodied.total_t,
            storage_delta_pct: r.embodied.storage_delta_pct,
            median_g_per_kwh: r.grid.median_g_per_kwh,
            cov_percent: r.grid.cov_pct,
            sched_carbon_kg: r.operational.sched_kg,
            sched_energy_kwh: r.operational.sched_kwh,
            mean_wait_hours: r.operational.mean_wait_h,
            max_wait_hours: r.operational.max_wait_h,
            shift_saved_kg: r.shift.saved_kg,
            shift_saved_pct: r.shift.saved_pct,
            oracle_saved_kg: r.shift.oracle_saved_kg,
            oracle_saved_pct: r.shift.oracle_saved_pct,
            node_annual_kg: r.upgrade.node_annual_kg,
            break_even_years: r.upgrade.break_even_y,
            asymptotic_savings_pct: r.upgrade.asymptotic_pct,
            verdict: r.upgrade.verdict.label(),
        }
    }
}

/// Evaluates one scenario through the default [`Estimator`]. Pure: no
/// printing, no panicking on bad combinations, and no dependence on
/// global or thread state.
///
/// # Errors
/// [`ScenarioError`] when the combination is infeasible — the caller is
/// expected to record the error row and continue the batch.
pub fn run_scenario(
    s: &Scenario,
    cfg: &crate::exec::SweepConfig,
) -> Result<ScenarioOutcome, ScenarioError> {
    Estimator::builder()
        .build()
        .estimate(&s.to_request(cfg))
        .map(ScenarioOutcome::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SweepConfig;
    use hpcarbon_core::whatif::WhatIfError;
    use hpcarbon_sched::SimError;
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn scenario() -> Scenario {
        Scenario {
            id: 0,
            system: SystemId::Frontier,
            storage: StorageVariant::Baseline,
            region: OperatorId::Eso,
            source: TraceSource::Paper,
            pue: PueSpec::Constant(1.2),
            policy: Policy::Fifo,
            upgrade: UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            },
            seed: 2021,
        }
    }

    #[test]
    fn baseline_scenario_evaluates() {
        let out = run_scenario(&scenario(), &SweepConfig::fast()).unwrap();
        assert!(out.embodied_t > 1000.0);
        assert!(out.storage_delta_pct.is_none());
        assert!(out.median_g_per_kwh > 0.0);
        assert!(out.sched_carbon_kg > 0.0);
        assert!(out.node_annual_kg > 0.0);
        assert_eq!(out.verdict, "upgrade"); // GB median is well above 100 g/kWh
    }

    #[test]
    fn all_flash_fails_soft_on_perlmutter() {
        let s = Scenario {
            system: SystemId::Perlmutter,
            storage: StorageVariant::AllFlash,
            ..scenario()
        };
        let err = run_scenario(&s, &SweepConfig::fast()).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::WhatIf(WhatIfError::NoSourceUnits(_))
        ));
    }

    #[test]
    fn all_flash_raises_frontier_embodied() {
        let cfg = SweepConfig::fast();
        let base = run_scenario(&scenario(), &cfg).unwrap();
        let flash = run_scenario(
            &Scenario {
                storage: StorageVariant::AllFlash,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert!(flash.embodied_t > base.embodied_t);
        assert!(flash.storage_delta_pct.unwrap() > 50.0);
    }

    #[test]
    fn invalid_pue_is_rejected() {
        let s = Scenario {
            pue: PueSpec::Constant(0.8),
            ..scenario()
        };
        assert!(matches!(
            run_scenario(&s, &SweepConfig::fast()).unwrap_err(),
            ScenarioError::InvalidPue(_)
        ));
        let s = Scenario {
            pue: PueSpec::Seasonal {
                mean: 1.1,
                amplitude: 0.5,
            },
            ..scenario()
        };
        assert!(run_scenario(&s, &SweepConfig::fast()).is_err());
    }

    #[test]
    fn seasonal_pue_stays_near_constant_mean() {
        let cfg = SweepConfig::fast();
        let constant = run_scenario(&scenario(), &cfg).unwrap();
        let seasonal = run_scenario(
            &Scenario {
                pue: PueSpec::Seasonal {
                    mean: 1.2,
                    amplitude: 0.1,
                },
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // The seasonal model integrates PUE(t) × intensity(t); its annual
        // node carbon stays within a few percent of the constant-PUE one.
        let ratio = seasonal.node_annual_kg / constant.node_annual_kg;
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn same_scenario_same_outcome() {
        let cfg = SweepConfig::fast();
        let a = run_scenario(&scenario(), &cfg).unwrap();
        let b = run_scenario(&scenario(), &cfg).unwrap();
        assert_eq!(a.sched_carbon_kg, b.sched_carbon_kg);
        assert_eq!(a.median_g_per_kwh, b.median_g_per_kwh);
        assert_eq!(a.node_annual_kg, b.node_annual_kg);
    }

    #[test]
    fn synthetic_traces_are_a_distinct_axis() {
        let cfg = SweepConfig::fast();
        let paper = run_scenario(&scenario(), &cfg).unwrap();
        let synth = run_scenario(
            &Scenario {
                source: TraceSource::Synthetic,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // Different generators, same region: different (but physical)
        // medians and scheduling carbon.
        assert_ne!(paper.median_g_per_kwh, synth.median_g_per_kwh);
        assert!(synth.median_g_per_kwh > 0.0);
        assert!(synth.sched_carbon_kg > 0.0);
        // Determinism holds on the synthetic axis too.
        let again = run_scenario(
            &Scenario {
                source: TraceSource::Synthetic,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert_eq!(synth.sched_carbon_kg, again.sched_carbon_kg);
    }

    #[test]
    fn shifting_policies_report_savings() {
        let cfg = SweepConfig::fast();
        let fifo = run_scenario(&scenario(), &cfg).unwrap();
        let shifted = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 24 },
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // FIFO at ample capacity never saves; shifting on a real trace
        // does, and the savings tie out with the carbon totals.
        assert!(fifo.shift_saved_kg.abs() < 1e-9);
        assert!(shifted.shift_saved_kg > 0.0, "{}", shifted.shift_saved_kg);
        assert!(shifted.shift_saved_pct > 0.0);
        assert!(shifted.sched_carbon_kg < fifo.sched_carbon_kg);
    }

    #[test]
    fn spatio_temporal_engages_the_spatial_axis() {
        // With the partner site in play, joint placement must differ from
        // (and not exceed) pure temporal shifting at the same slack.
        let cfg = SweepConfig::fast();
        let temporal = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 24 },
                region: OperatorId::Miso, // dirty region, clean partner
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        let joint = run_scenario(
            &Scenario {
                policy: Policy::SpatioTemporal { slack_hours: 24 },
                region: OperatorId::Miso,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert_ne!(joint.sched_carbon_kg, temporal.sched_carbon_kg);
        assert!(joint.sched_carbon_kg < temporal.sched_carbon_kg);
    }

    #[test]
    fn oversized_slack_is_a_soft_error_row() {
        let cfg = SweepConfig::fast();
        let err = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 9000 },
                ..scenario()
            },
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Sched(SimError::ShiftSlackExceedsTrace { .. })
        ));
    }

    #[test]
    fn delegation_matches_a_direct_api_call() {
        // The sweep's outcome and the API's report are the same numbers.
        let cfg = SweepConfig::fast();
        let s = scenario();
        let via_sweep = run_scenario(&s, &cfg).unwrap();
        let via_api = hpcarbon_api::Estimator::builder()
            .build()
            .estimate(&s.to_request(&cfg))
            .unwrap();
        assert_eq!(via_sweep.sched_carbon_kg, via_api.operational.sched_kg);
        assert_eq!(via_sweep.embodied_t, via_api.embodied.total_t);
        assert_eq!(via_sweep.break_even_years, via_api.upgrade.break_even_y);
    }
}
