//! One grid point, evaluated end to end as a pure function.
//!
//! A [`Scenario`] fixes every free variable of the paper's analyses —
//! which system is deployed (and with what storage architecture), which
//! regional grid powers it, how efficient the facility is, how jobs are
//! scheduled, and which upgrade is on the table. [`run_scenario`] turns
//! that point into a [`ScenarioOutcome`] of comparable metrics, or a
//! [`ScenarioError`] when the combination is infeasible (e.g. an all-flash
//! what-if on a system with no HDD tier). It never prints and never
//! panics on bad combinations, so batched executors can fan thousands of
//! points out and keep going.

use hpcarbon_core::db::PartId;
use hpcarbon_core::operational::Pue;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_core::whatif::{swap_storage_tier, WhatIfError};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_year;
use hpcarbon_grid::synth::synthesize_year;
use hpcarbon_power::pue_model::{account_with_seasonal_pue, SeasonalPue};
use hpcarbon_sched::{
    shift_savings, summarize_shift_savings, Cluster, JobTraceGenerator, Policy, SimError,
    Simulation,
};
use hpcarbon_sim::rng::SimRng;
use hpcarbon_units::{CarbonIntensity, TimeSpan};
use hpcarbon_upgrade::savings::{UpgradeScenario, UsageLevel};
use hpcarbon_upgrade::{Recommendation, UpgradeAdvisor};
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::power::node_active_power;

/// Which Table 2 system the scenario deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    /// Frontier (Oak Ridge).
    Frontier,
    /// LUMI (Kajaani).
    Lumi,
    /// Perlmutter (Berkeley).
    Perlmutter,
}

impl SystemId {
    /// All Table 2 systems, paper order.
    pub const ALL: [SystemId; 3] = [SystemId::Frontier, SystemId::Lumi, SystemId::Perlmutter];

    /// Builds the system inventory.
    pub fn build(self) -> HpcSystem {
        match self {
            SystemId::Frontier => HpcSystem::frontier(),
            SystemId::Lumi => HpcSystem::lumi(),
            SystemId::Perlmutter => HpcSystem::perlmutter(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SystemId::Frontier => "frontier",
            SystemId::Lumi => "lumi",
            SystemId::Perlmutter => "perlmutter",
        }
    }
}

/// Storage-architecture variant applied to the system before costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageVariant {
    /// The as-built inventory.
    Baseline,
    /// The Fig. 5 discussion's what-if: replace the HDD capacity tier with
    /// flash at equal capacity. Fails soft on systems with no HDD tier.
    AllFlash,
}

impl StorageVariant {
    /// Both variants.
    pub const ALL: [StorageVariant; 2] = [StorageVariant::Baseline, StorageVariant::AllFlash];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            StorageVariant::Baseline => "baseline",
            StorageVariant::AllFlash => "all-flash",
        }
    }
}

/// Facility PUE model for the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PueSpec {
    /// Constant year-round PUE (the paper's assumption).
    Constant(f64),
    /// Seasonal PUE: sinusoidal around `mean` with the given swing
    /// (summer chiller peak, winter free cooling).
    Seasonal {
        /// Annual mean PUE.
        mean: f64,
        /// Seasonal half-swing; the winter minimum `mean - amplitude`
        /// must stay ≥ 1.0.
        amplitude: f64,
    },
}

impl PueSpec {
    /// The annual-mean PUE value.
    pub fn mean_value(self) -> f64 {
        match self {
            PueSpec::Constant(v) => v,
            PueSpec::Seasonal { mean, .. } => mean,
        }
    }

    /// Checks physical validity (no PUE below 1.0, finite values).
    pub fn validate(self) -> Result<(), ScenarioError> {
        let ok = match self {
            PueSpec::Constant(v) => v.is_finite() && v >= 1.0,
            PueSpec::Seasonal { mean, amplitude } => {
                mean.is_finite()
                    && amplitude.is_finite()
                    && amplitude >= 0.0
                    && mean - amplitude >= 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ScenarioError::InvalidPue(self))
        }
    }

    /// Compact display label (`1.20` or `1.20±0.10`).
    pub fn label(self) -> String {
        match self {
            PueSpec::Constant(v) => format!("{v:.2}"),
            PueSpec::Seasonal { mean, amplitude } => format!("{mean:.2}±{amplitude:.2}"),
        }
    }
}

/// Where a scenario's intensity trace comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// The calibrated dispatch simulator
    /// ([`hpcarbon_grid::sim::simulate_year`]) — the paper's trace set.
    Paper,
    /// The synthetic harmonic generator
    /// ([`hpcarbon_grid::synth::synthesize_year`]) — cheap deterministic
    /// region-years beyond the shipped traces.
    Synthetic,
}

impl TraceSource {
    /// Both sources, paper first.
    pub const ALL: [TraceSource; 2] = [TraceSource::Paper, TraceSource::Synthetic];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TraceSource::Paper => "paper",
            TraceSource::Synthetic => "synthetic",
        }
    }
}

/// One upgrade question swept alongside the system scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpgradePath {
    /// Currently deployed node generation.
    pub from: NodeGen,
    /// Candidate replacement.
    pub to: NodeGen,
    /// Workload mix driving performance/power.
    pub suite: Suite,
}

impl UpgradePath {
    /// Compact display label (`p100->a100/NLP`).
    pub fn label(self) -> String {
        let short = |n: NodeGen| match n {
            NodeGen::P100Node => "p100",
            NodeGen::V100Node => "v100",
            NodeGen::A100Node => "a100",
        };
        format!(
            "{}->{}/{}",
            short(self.from),
            short(self.to),
            self.suite.label()
        )
    }
}

/// One fully specified grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the expanded grid (row order of the result table).
    pub id: usize,
    /// Deployed system.
    pub system: SystemId,
    /// Storage-architecture variant.
    pub storage: StorageVariant,
    /// Grid region powering the facility.
    pub region: OperatorId,
    /// Where the region's intensity trace comes from.
    pub source: TraceSource,
    /// Facility PUE model.
    pub pue: PueSpec,
    /// Scheduling policy for the job-trace run.
    pub policy: Policy,
    /// Upgrade question evaluated at the region's median intensity.
    pub upgrade: UpgradePath,
    /// Seed of this scenario's random streams.
    pub seed: u64,
}

impl Scenario {
    /// The root random stream of this scenario.
    ///
    /// Derived **only** from the scenario's seed dimension — never from
    /// grid position, thread id, or shared state — so outcomes are a pure
    /// function of the scenario and independent of executor parallelism.
    /// Named substreams fork off this root (`trace`, `jobs`).
    pub fn rng(&self) -> SimRng {
        SimRng::seed_from(self.seed)
    }
}

/// Why a scenario cannot be evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioError {
    /// The storage what-if does not apply to this system.
    WhatIf(WhatIfError),
    /// The scheduling run is infeasible.
    Sched(SimError),
    /// The PUE model is unphysical.
    InvalidPue(PueSpec),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::WhatIf(e) => write!(f, "storage what-if: {e}"),
            ScenarioError::Sched(e) => write!(f, "scheduling: {e}"),
            ScenarioError::InvalidPue(p) => write!(f, "invalid PUE model {p:?}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<WhatIfError> for ScenarioError {
    fn from(e: WhatIfError) -> ScenarioError {
        ScenarioError::WhatIf(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> ScenarioError {
        ScenarioError::Sched(e)
    }
}

/// The comparable metrics of one evaluated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Embodied carbon of the (possibly transformed) inventory, tCO₂.
    pub embodied_t: f64,
    /// Relative embodied change of the storage what-if, % (`None` for the
    /// baseline variant).
    pub storage_delta_pct: Option<f64>,
    /// Median annual carbon intensity of the simulated region, gCO₂/kWh.
    pub median_g_per_kwh: f64,
    /// Coefficient of variation of the intensity trace, %.
    pub cov_percent: f64,
    /// Total operational carbon of the scheduled job trace, kgCO₂.
    pub sched_carbon_kg: f64,
    /// Total facility energy of the job trace, kWh.
    pub sched_energy_kwh: f64,
    /// Mean queue wait, hours.
    pub mean_wait_hours: f64,
    /// Max queue wait, hours.
    pub max_wait_hours: f64,
    /// Carbon saved versus running every job at arrival, kgCO₂ (negative
    /// when deferral backfired).
    pub shift_saved_kg: f64,
    /// The same savings as a percentage of the run-at-arrival baseline.
    pub shift_saved_pct: f64,
    /// Annual carbon of one `upgrade.from` node serving the reference
    /// workload under this scenario's PUE model, kgCO₂. Seasonal PUE
    /// models are integrated hour by hour against the trace.
    pub node_annual_kg: f64,
    /// Upgrade break-even time at the median intensity, years (`None`
    /// when the upgrade never pays off).
    pub break_even_years: Option<f64>,
    /// Asymptotic energy saving of the upgrade, %.
    pub asymptotic_savings_pct: f64,
    /// Advisor verdict at a five-year horizon.
    pub verdict: &'static str,
}

/// Evaluates one scenario. Pure: no printing, no panicking on bad
/// combinations, and no dependence on global or thread state.
///
/// # Errors
/// [`ScenarioError`] when the combination is infeasible — the caller is
/// expected to record the error row and continue the batch.
pub fn run_scenario(
    s: &Scenario,
    cfg: &crate::exec::SweepConfig,
) -> Result<ScenarioOutcome, ScenarioError> {
    s.pue.validate()?;

    // Layer 1: embodied composition, with the storage what-if applied.
    let base = s.system.build();
    let (system, storage_delta_pct) = match s.storage {
        StorageVariant::Baseline => (base, None),
        StorageVariant::AllFlash => {
            let w = swap_storage_tier(&base, PartId::Hdd16tb, PartId::Ssd3_2tb)?;
            let delta = w.relative_change() * 100.0;
            (w.system, Some(delta))
        }
    };
    let embodied_t = system.embodied_total().as_t();

    // Layer 2: the regional grid year, from this scenario's own stream —
    // full dispatch for the paper trace set, harmonics for synthetic
    // region-years.
    let rng = s.rng();
    let trace_seed = rng.substream("trace").seed();
    let trace = match s.source {
        TraceSource::Paper => simulate_year(s.region, cfg.year, trace_seed),
        TraceSource::Synthetic => synthesize_year(s.region, cfg.year, trace_seed),
    };
    let boxplot = trace.boxplot();
    let median = CarbonIntensity::from_g_per_kwh(boxplot.median);

    // Layer 3: the scheduling run on a cluster powered by that grid, and
    // its carbon savings against the run-at-arrival baseline.
    let mut cluster = Cluster::new(s.region.info().short, trace.clone(), cfg.cluster_gpus);
    cluster.pue = s.pue.mean_value();
    let mut clusters = vec![cluster];
    // Multi-region policies get a partner site, otherwise the spatial
    // axis would silently degenerate to the temporal one in these
    // single-region scenarios. The partner is the greenest complement
    // region (GB, or CA when the scenario already is GB), built from the
    // same trace source, seed stream and PUE — so the scenario stays a
    // pure function of its own dimensions.
    if s.policy.is_multi_region() {
        let partner_op = if s.region == OperatorId::Eso {
            OperatorId::Ciso
        } else {
            OperatorId::Eso
        };
        let partner_trace = match s.source {
            TraceSource::Paper => simulate_year(partner_op, cfg.year, trace_seed),
            TraceSource::Synthetic => synthesize_year(partner_op, cfg.year, trace_seed),
        };
        let mut partner = Cluster::new(partner_op.info().short, partner_trace, cfg.cluster_gpus);
        partner.pue = s.pue.mean_value();
        clusters.push(partner);
    }
    let jobs_seed = rng.substream("jobs").seed();
    let jobs = JobTraceGenerator::default_rates().generate(cfg.jobs_per_scenario, jobs_seed);
    let sim = Simulation::multi_region(clusters.clone(), s.policy, &jobs).try_run()?;
    let savings = summarize_shift_savings(&shift_savings(&sim, &jobs, &clusters));

    // Layer 4: PUE-adjusted annual accounting of one reference node.
    let usage = UsageLevel::Medium.fraction();
    let year = TimeSpan::from_years(1.0);
    let it_energy = node_active_power(s.upgrade.from, s.upgrade.suite) * usage.value() * year;
    let node_annual_kg = match s.pue {
        PueSpec::Constant(v) => (median * Pue::new(v).apply(it_energy)).as_kg(),
        PueSpec::Seasonal { mean, amplitude } => {
            // validate() above guarantees SeasonalPue's invariants.
            let seasonal = SeasonalPue::new(mean, amplitude);
            account_with_seasonal_pue(&trace, &seasonal, 0, it_energy, year).as_kg()
        }
    };

    // Layer 5: the upgrade question at the region's median intensity.
    let upgrade = UpgradeScenario {
        old: s.upgrade.from,
        new: s.upgrade.to,
        suite: s.upgrade.suite,
        usage,
        pue: Pue::new(s.pue.mean_value()),
    };
    let verdict = match UpgradeAdvisor::with_five_year_horizon().recommend(&upgrade, median) {
        Recommendation::Upgrade { .. } => "upgrade",
        Recommendation::ExtendLifetime { .. } => "extend",
        Recommendation::KeepHardware => "keep",
    };

    Ok(ScenarioOutcome {
        embodied_t,
        storage_delta_pct,
        median_g_per_kwh: boxplot.median,
        cov_percent: trace.cov_percent(),
        sched_carbon_kg: sim.total_carbon.as_kg(),
        sched_energy_kwh: sim.total_energy.as_kwh(),
        mean_wait_hours: sim.mean_wait_hours,
        max_wait_hours: sim.max_wait_hours,
        shift_saved_kg: savings.saved_kg,
        shift_saved_pct: savings.saved_pct,
        node_annual_kg,
        break_even_years: upgrade.break_even(median).map(|t| t.as_years()),
        asymptotic_savings_pct: upgrade.asymptotic_savings_percent(),
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SweepConfig;

    fn scenario() -> Scenario {
        Scenario {
            id: 0,
            system: SystemId::Frontier,
            storage: StorageVariant::Baseline,
            region: OperatorId::Eso,
            source: TraceSource::Paper,
            pue: PueSpec::Constant(1.2),
            policy: Policy::Fifo,
            upgrade: UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            },
            seed: 2021,
        }
    }

    #[test]
    fn baseline_scenario_evaluates() {
        let out = run_scenario(&scenario(), &SweepConfig::fast()).unwrap();
        assert!(out.embodied_t > 1000.0);
        assert!(out.storage_delta_pct.is_none());
        assert!(out.median_g_per_kwh > 0.0);
        assert!(out.sched_carbon_kg > 0.0);
        assert!(out.node_annual_kg > 0.0);
        assert_eq!(out.verdict, "upgrade"); // GB median is well above 100 g/kWh
    }

    #[test]
    fn all_flash_fails_soft_on_perlmutter() {
        let s = Scenario {
            system: SystemId::Perlmutter,
            storage: StorageVariant::AllFlash,
            ..scenario()
        };
        let err = run_scenario(&s, &SweepConfig::fast()).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::WhatIf(WhatIfError::NoSourceUnits(_))
        ));
    }

    #[test]
    fn all_flash_raises_frontier_embodied() {
        let cfg = SweepConfig::fast();
        let base = run_scenario(&scenario(), &cfg).unwrap();
        let flash = run_scenario(
            &Scenario {
                storage: StorageVariant::AllFlash,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert!(flash.embodied_t > base.embodied_t);
        assert!(flash.storage_delta_pct.unwrap() > 50.0);
    }

    #[test]
    fn invalid_pue_is_rejected() {
        let s = Scenario {
            pue: PueSpec::Constant(0.8),
            ..scenario()
        };
        assert!(matches!(
            run_scenario(&s, &SweepConfig::fast()).unwrap_err(),
            ScenarioError::InvalidPue(_)
        ));
        let s = Scenario {
            pue: PueSpec::Seasonal {
                mean: 1.1,
                amplitude: 0.5,
            },
            ..scenario()
        };
        assert!(run_scenario(&s, &SweepConfig::fast()).is_err());
    }

    #[test]
    fn seasonal_pue_stays_near_constant_mean() {
        let cfg = SweepConfig::fast();
        let constant = run_scenario(&scenario(), &cfg).unwrap();
        let seasonal = run_scenario(
            &Scenario {
                pue: PueSpec::Seasonal {
                    mean: 1.2,
                    amplitude: 0.1,
                },
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // The seasonal model integrates PUE(t) × intensity(t); its annual
        // node carbon stays within a few percent of the constant-PUE one.
        let ratio = seasonal.node_annual_kg / constant.node_annual_kg;
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn same_scenario_same_outcome() {
        let cfg = SweepConfig::fast();
        let a = run_scenario(&scenario(), &cfg).unwrap();
        let b = run_scenario(&scenario(), &cfg).unwrap();
        assert_eq!(a.sched_carbon_kg, b.sched_carbon_kg);
        assert_eq!(a.median_g_per_kwh, b.median_g_per_kwh);
        assert_eq!(a.node_annual_kg, b.node_annual_kg);
    }

    #[test]
    fn synthetic_traces_are_a_distinct_axis() {
        let cfg = SweepConfig::fast();
        let paper = run_scenario(&scenario(), &cfg).unwrap();
        let synth = run_scenario(
            &Scenario {
                source: TraceSource::Synthetic,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // Different generators, same region: different (but physical)
        // medians and scheduling carbon.
        assert_ne!(paper.median_g_per_kwh, synth.median_g_per_kwh);
        assert!(synth.median_g_per_kwh > 0.0);
        assert!(synth.sched_carbon_kg > 0.0);
        // Determinism holds on the synthetic axis too.
        let again = run_scenario(
            &Scenario {
                source: TraceSource::Synthetic,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert_eq!(synth.sched_carbon_kg, again.sched_carbon_kg);
    }

    #[test]
    fn shifting_policies_report_savings() {
        let cfg = SweepConfig::fast();
        let fifo = run_scenario(&scenario(), &cfg).unwrap();
        let shifted = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 24 },
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        // FIFO at ample capacity never saves; shifting on a real trace
        // does, and the savings tie out with the carbon totals.
        assert!(fifo.shift_saved_kg.abs() < 1e-9);
        assert!(shifted.shift_saved_kg > 0.0, "{}", shifted.shift_saved_kg);
        assert!(shifted.shift_saved_pct > 0.0);
        assert!(shifted.sched_carbon_kg < fifo.sched_carbon_kg);
    }

    #[test]
    fn spatio_temporal_engages_the_spatial_axis() {
        // With the partner site in play, joint placement must differ from
        // (and not exceed) pure temporal shifting at the same slack.
        let cfg = SweepConfig::fast();
        let temporal = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 24 },
                region: OperatorId::Miso, // dirty region, clean partner
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        let joint = run_scenario(
            &Scenario {
                policy: Policy::SpatioTemporal { slack_hours: 24 },
                region: OperatorId::Miso,
                ..scenario()
            },
            &cfg,
        )
        .unwrap();
        assert_ne!(joint.sched_carbon_kg, temporal.sched_carbon_kg);
        assert!(joint.sched_carbon_kg < temporal.sched_carbon_kg);
    }

    #[test]
    fn oversized_slack_is_a_soft_error_row() {
        let cfg = SweepConfig::fast();
        let err = run_scenario(
            &Scenario {
                policy: Policy::TemporalShift { slack_hours: 9000 },
                ..scenario()
            },
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Sched(SimError::ShiftSlackExceedsTrace { .. })
        ));
    }
}
