//! # hpcarbon-catalog
//!
//! The plain-text hardware catalog: the embodied-carbon database
//! (Table 1 parts, process nodes, Table 2 systems, Table 3 regions) as
//! a directory of versioned entity files instead of hard-coded Rust
//! tables — "our parts table" becomes "any operator's fleet".
//!
//! ## Layout
//!
//! A catalog is a directory with four kind subdirectories, one entity
//! per `.ent` file:
//!
//! ```text
//! catalog/
//!   parts/gpu-a100-pcie-40.ent      kind: part
//!   nodes/n7.ent                    kind: process-node
//!   systems/frontier.ent            kind: system
//!   regions/eso.ent                 kind: region
//! ```
//!
//! Entity files are line-based `key: value` text (`#` comments, blank
//! lines ignored). Systems declare their bill of materials as repeated
//! `link: <part-id> <count>` lines, which is what lets reports cite BOM
//! provenance — every number traces to a file. The full format,
//! including every validator error with a line-numbered sample, is
//! specified in `docs/CATALOG.md` at the repository root.
//!
//! ## Pipeline
//!
//! Loading is strict — **load → validate → memoize**:
//!
//! 1. [`Catalog::load`] parses every entity file and validates field
//!    schemas, vocabularies, cross-entity links, and estimation-grade
//!    completeness, reporting *all* errors as line-numbered
//!    [`CatalogError`]s (the PR 4 vocabulary-listing idiom:
//!    `unknown class "gpuu" (valid values: gpu, cpu, dram, ssd, hdd)`).
//! 2. A valid catalog resolves into the same in-memory types the
//!    built-in tables produce ([`hpcarbon_core::db::PartSpec`],
//!    [`hpcarbon_core::systems::HpcSystem`]), so every model downstream
//!    runs unchanged.
//! 3. [`CatalogSource::load`] memoizes catalogs per canonical directory
//!    path and implements [`hpcarbon_api::providers::EmbodiedSource`],
//!    plugging a catalog into the estimator, the sweep engine, and the
//!    server.
//!
//! ## Byte-identity guarantee
//!
//! [`export_builtin`] writes the shipped tables as a canonical catalog
//! tree, printing every number in Rust's shortest round-trip `f64`
//! form. Reloading that tree reproduces the built-in specs **bit for
//! bit**, so estimates made through `--catalog <exported tree>` are
//! byte-identical to the hard-coded ones — CI diffs the two outputs
//! with `cmp`.
//!
//! ```
//! let dir = std::env::temp_dir().join("hpcarbon-doctest-catalog");
//! hpcarbon_catalog::export_builtin(&dir).unwrap();
//! let catalog = hpcarbon_catalog::Catalog::load(&dir).unwrap();
//! let builtin = hpcarbon_core::db::PartId::GpuA100Pcie40.spec();
//! assert_eq!(catalog.part(builtin.id), Some(&builtin));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod entity;
mod error;
mod export;
mod intern;
mod parse;
mod provider;
mod vocab;

pub use catalog::Catalog;
pub use entity::{PartEntity, ProcessNodeEntity, RegionEntity, SystemEntity, SystemLink};
pub use error::{CatalogError, CatalogErrors};
pub use export::export_builtin;
pub use provider::CatalogSource;
pub use vocab::{node_slug, part_slug, region_slug};
