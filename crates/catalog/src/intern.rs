//! Leaked-string interning.
//!
//! The model layer uses `&'static str` for identity-like strings
//! (`PartSpec::component`, `HpcSystem::name`, …) because the built-in
//! tables are literals and `PartSpec` stays `Copy`. Catalog-loaded
//! strings get the same lifetime by interning: each distinct string is
//! leaked **once** into a process-wide table and reused forever after.
//! The leak is bounded — catalogs are memoized per directory (see
//! [`crate::CatalogSource`]) and the intern table deduplicates across
//! reloads, so repeated loads of the same catalog allocate nothing new.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock, PoisonError};

// An ordered set rather than a hash set: the table is never iterated
// today, but `hash-iteration-order` (docs/LINTS.md) bans hash-ordered
// collections from deterministic crates outright so one can never
// *start* being iterated.
static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();

/// Returns a `'static` copy of `s`, allocating only on first sight.
pub(crate) fn intern(s: &str) -> &'static str {
    // Poison recovery is sound here: the only mutation is `insert` of a
    // fully-leaked string, so a panicking peer can never leave a
    // half-built entry behind.
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(found) = table.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = intern("hpcarbon-intern-test");
        let b = intern("hpcarbon-intern-test");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "hpcarbon-intern-test");
    }
}
