//! Leaked-string interning.
//!
//! The model layer uses `&'static str` for identity-like strings
//! (`PartSpec::component`, `HpcSystem::name`, …) because the built-in
//! tables are literals and `PartSpec` stays `Copy`. Catalog-loaded
//! strings get the same lifetime by interning: each distinct string is
//! leaked **once** into a process-wide table and reused forever after.
//! The leak is bounded — catalogs are memoized per directory (see
//! [`crate::CatalogSource`]) and the intern table deduplicates across
//! reloads, so repeated loads of the same catalog allocate nothing new.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();

/// Returns a `'static` copy of `s`, allocating only on first sight.
pub(crate) fn intern(s: &str) -> &'static str {
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table lock");
    if let Some(found) = table.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = intern("hpcarbon-intern-test");
        let b = intern("hpcarbon-intern-test");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "hpcarbon-intern-test");
    }
}
