//! Export of the built-in tables as a canonical catalog tree.
//!
//! Every numeric field is printed with Rust's `{}` float formatting —
//! the shortest decimal string that round-trips to the same `f64` —
//! and in the same unit the quantity type stores internally (mm²,
//! g/cm², GB, g/GB, GB/s, GFLOPS, W). Reloading an exported tree
//! therefore reconstructs every spec **bit for bit**, which is what
//! makes `--catalog <exported tree>` estimates byte-identical to the
//! built-in tables (the repository CI proves it with `cmp`).

use crate::vocab;
use hpcarbon_core::db::EmbodiedInputs;
use hpcarbon_core::db::{all_parts, PartSpec, ProcessNode};
use hpcarbon_core::embodied::PackagingSpec;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::regions::OperatorId;
use std::io;
use std::path::Path;

/// The built-in process nodes, oldest lithography last (canonical
/// listing order = `NODE_SLUGS` order).
const NODES: [ProcessNode; 5] = [
    ProcessNode::N6,
    ProcessNode::N7,
    ProcessNode::N12,
    ProcessNode::N14,
    ProcessNode::N16,
];

/// Writes the shipped Table 1/2/3 data as a catalog tree under `root`,
/// creating `parts/`, `nodes/`, `systems/`, and `regions/`. Existing
/// files are overwritten; the result always passes
/// [`crate::Catalog::load`].
pub fn export_builtin(root: impl AsRef<Path>) -> io::Result<()> {
    let root = root.as_ref();
    for (dir, files) in [
        ("parts", part_files()),
        ("nodes", node_files()),
        ("systems", system_files()),
        ("regions", region_files()),
    ] {
        let dir = root.join(dir);
        std::fs::create_dir_all(&dir)?;
        for (name, text) in files {
            std::fs::write(dir.join(format!("{name}.ent")), text)?;
        }
    }
    Ok(())
}

fn part_files() -> Vec<(String, String)> {
    all_parts()
        .into_iter()
        .map(|id| {
            let spec = id.spec();
            (vocab::part_slug(id).to_string(), render_part(&spec))
        })
        .collect()
}

fn render_part(spec: &PartSpec) -> String {
    let mut s = String::new();
    push(
        &mut s,
        format!("# {} — exported built-in entity.", spec.part_name),
    );
    push(&mut s, "kind: part".to_string());
    push(&mut s, format!("id: {}", vocab::part_slug(spec.id)));
    push(
        &mut s,
        format!("class: {}", vocab::slug_of(&vocab::CLASS_SLUGS, spec.class)),
    );
    push(&mut s, format!("component: {}", spec.component));
    push(&mut s, format!("part-name: {}", spec.part_name));
    push(
        &mut s,
        format!(
            "vendor: {}",
            vocab::slug_of(&vocab::VENDOR_SLUGS, spec.vendor)
        ),
    );
    push(
        &mut s,
        format!("release: {:04}-{:02}", spec.release.0, spec.release.1),
    );
    match spec.embodied_inputs {
        EmbodiedInputs::Processor { die_area, node, .. } => {
            push(&mut s, format!("die-area-mm2: {}", die_area.as_mm2()));
            push(
                &mut s,
                format!("node: {}", vocab::slug_of(&vocab::NODE_SLUGS, node)),
            );
        }
        EmbodiedInputs::MemoryStorage { epc } => {
            push(&mut s, format!("epc-g-per-gb: {}", epc.as_g_per_gb()));
        }
    }
    match spec.packaging {
        PackagingSpec::IcCount(n) => push(&mut s, format!("packaging-ic-count: {n}")),
        PackagingSpec::ManufacturingRatio(r) => push(&mut s, format!("packaging-ratio: {r}")),
    }
    if let Some(c) = spec.capacity {
        push(&mut s, format!("capacity-gb: {}", c.as_gb()));
    }
    if let Some(p) = spec.fp64_peak {
        push(&mut s, format!("fp64-gflops: {}", p.as_gflops()));
    }
    if let Some(b) = spec.bandwidth {
        push(&mut s, format!("bandwidth-gbps: {}", b.as_gbps()));
    }
    if let Some(t) = spec.tdp {
        push(&mut s, format!("tdp-w: {}", t.as_w()));
    }
    if let Some(i) = spec.idle_power {
        push(&mut s, format!("idle-w: {}", i.as_w()));
    }
    s
}

fn node_files() -> Vec<(String, String)> {
    NODES
        .into_iter()
        .map(|node| {
            let slug = vocab::slug_of(&vocab::NODE_SLUGS, node);
            let d = node.fab_densities();
            let mut s = String::new();
            push(
                &mut s,
                format!(
                    "# Process node {} — exported built-in entity.",
                    node.label()
                ),
            );
            push(&mut s, "kind: process-node".to_string());
            push(&mut s, format!("id: {slug}"));
            push(&mut s, format!("label: {}", node.label()));
            push(&mut s, format!("fpa-g-per-cm2: {}", d.fpa.as_g_per_cm2()));
            push(&mut s, format!("gpa-g-per-cm2: {}", d.gpa.as_g_per_cm2()));
            push(&mut s, format!("mpa-g-per-cm2: {}", d.mpa.as_g_per_cm2()));
            (slug.to_string(), s)
        })
        .collect()
}

fn system_files() -> Vec<(String, String)> {
    [
        ("frontier", HpcSystem::frontier()),
        ("lumi", HpcSystem::lumi()),
        ("perlmutter", HpcSystem::perlmutter()),
    ]
    .into_iter()
    .map(|(id, sys)| {
        let mut s = String::new();
        push(
            &mut s,
            format!("# {} — exported built-in entity.", sys.name),
        );
        push(&mut s, "kind: system".to_string());
        push(&mut s, format!("id: {id}"));
        push(&mut s, format!("name: {}", sys.name));
        push(&mut s, format!("location: {}", sys.location));
        push(&mut s, format!("cores: {}", sys.cores));
        push(&mut s, format!("year: {}", sys.year));
        for (spec, count) in &sys.inventory {
            push(
                &mut s,
                format!("link: {} {count}", vocab::part_slug(spec.id)),
            );
        }
        (id.to_string(), s)
    })
    .collect()
}

fn region_files() -> Vec<(String, String)> {
    OperatorId::ALL
        .into_iter()
        .map(|op| {
            let slug = vocab::slug_of(&vocab::REGION_SLUGS, op);
            let info = op.info();
            let mut s = String::new();
            push(
                &mut s,
                format!("# {} — exported built-in entity.", info.name),
            );
            push(&mut s, "kind: region".to_string());
            push(&mut s, format!("id: {slug}"));
            push(&mut s, format!("short: {}", info.short));
            push(&mut s, format!("name: {}", info.name));
            push(&mut s, format!("country: {}", info.country));
            push(&mut s, format!("region: {}", info.region));
            (slug.to_string(), s)
        })
        .collect()
}

fn push(s: &mut String, line: String) {
    s.push_str(&line);
    s.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use hpcarbon_core::db::PartId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hpcarbon-catalog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exported_tree_loads_cleanly() {
        let dir = tmp("loads");
        export_builtin(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        assert_eq!(cat.parts().len(), 13);
        assert_eq!(cat.nodes().len(), 5);
        assert_eq!(cat.systems().len(), 3);
        assert_eq!(cat.regions().len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_is_bit_identical_to_builtin() {
        // The tentpole guarantee: every exported spec reloads to the
        // exact bits of the hard-coded table — f64 `{}` formatting is
        // shortest-round-trip and parsing is correctly rounded.
        let dir = tmp("bits");
        export_builtin(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        for id in hpcarbon_core::db::all_parts() {
            assert_eq!(cat.part(id), Some(&id.spec()), "{id:?}");
        }
        for (sys, id) in [
            (HpcSystem::frontier(), "frontier"),
            (HpcSystem::lumi(), "lumi"),
            (HpcSystem::perlmutter(), "perlmutter"),
        ] {
            let loaded = &cat.system(id).unwrap().system;
            assert_eq!(loaded.name, sys.name);
            assert_eq!(loaded.location, sys.location);
            assert_eq!(loaded.cores, sys.cores);
            assert_eq!(loaded.year, sys.year);
            assert_eq!(loaded.inventory, sys.inventory);
            assert_eq!(
                loaded.embodied_total().as_g().to_bits(),
                sys.embodied_total().as_g().to_bits()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_is_deterministic() {
        let a = tmp("det-a");
        let b = tmp("det-b");
        export_builtin(&a).unwrap();
        export_builtin(&b).unwrap();
        let read = |d: &std::path::Path| {
            let mut all = String::new();
            for kind in ["parts", "nodes", "systems", "regions"] {
                let mut names: Vec<_> = std::fs::read_dir(d.join(kind))
                    .unwrap()
                    .map(|e| e.unwrap().file_name().into_string().unwrap())
                    .collect();
                names.sort();
                for n in names {
                    all.push_str(&std::fs::read_to_string(d.join(kind).join(n)).unwrap());
                }
            }
            all
        };
        assert_eq!(read(&a), read(&b));
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn catalog_ssd_matches_builtin_for_the_allflash_whatif() {
        let dir = tmp("ssd");
        export_builtin(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        assert_eq!(cat.part(PartId::Ssd3_2tb), Some(&PartId::Ssd3_2tb.spec()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
