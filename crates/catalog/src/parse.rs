//! Line-level parsing of `.ent` files into raw `key: value` fields.
//!
//! This layer knows nothing about entity kinds or schemas — it turns
//! text into `(line, key, value)` triples, rejecting only lines that
//! are not comments, blanks, or `key: value` pairs. Everything
//! semantic (required fields, vocabularies, links) happens in
//! `schema`-level validation with these line numbers attached.

use crate::error::CatalogError;

/// One `key: value` field with its 1-based source line.
#[derive(Debug, Clone)]
pub(crate) struct RawField {
    pub line: usize,
    pub key: String,
    pub value: String,
}

/// A parsed entity file: its fields in file order.
#[derive(Debug, Clone)]
pub(crate) struct RawEntity {
    /// Path relative to the catalog root, `/`-separated.
    pub file: String,
    pub fields: Vec<RawField>,
}

impl RawEntity {
    /// Parses one file's text. Syntactic errors (lines that are not
    /// comments, blanks, or `key: value`) are pushed to `errors`; the
    /// well-formed lines are still returned so one bad line does not
    /// mask every later diagnostic in the file.
    pub fn parse(file: &str, text: &str, errors: &mut Vec<CatalogError>) -> RawEntity {
        let mut fields = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw_line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((key, value)) = trimmed.split_once(':') else {
                errors.push(CatalogError::entity(
                    file,
                    line,
                    "expected \"key: value\"".to_string(),
                ));
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            if key.is_empty() {
                errors.push(CatalogError::entity(
                    file,
                    line,
                    "expected \"key: value\"".to_string(),
                ));
                continue;
            }
            fields.push(RawField {
                line,
                key: key.to_string(),
                value: value.to_string(),
            });
        }
        RawEntity {
            file: file.to_string(),
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_blanks_and_fields() {
        let mut errs = Vec::new();
        let e = RawEntity::parse(
            "parts/x.ent",
            "# header\n\nkind: part\n  id:  gpu-a100-pcie-40  \n",
            &mut errs,
        );
        assert!(errs.is_empty());
        assert_eq!(e.fields.len(), 2);
        assert_eq!(e.fields[0].line, 3);
        assert_eq!(e.fields[0].key, "kind");
        assert_eq!(e.fields[1].value, "gpu-a100-pcie-40");
    }

    #[test]
    fn non_field_lines_are_line_numbered_errors() {
        let mut errs = Vec::new();
        let e = RawEntity::parse(
            "parts/x.ent",
            "kind: part\nnot a field\n: empty key\n",
            &mut errs,
        );
        assert_eq!(e.fields.len(), 1);
        assert_eq!(errs.len(), 2);
        assert_eq!(
            errs[0].to_string(),
            "parts/x.ent:2: expected \"key: value\""
        );
        assert_eq!(
            errs[1].to_string(),
            "parts/x.ent:3: expected \"key: value\""
        );
    }

    #[test]
    fn value_may_contain_colons() {
        let mut errs = Vec::new();
        let e = RawEntity::parse("systems/x.ent", "location: Kajaani: Finland\n", &mut errs);
        assert_eq!(e.fields[0].value, "Kajaani: Finland");
    }
}
