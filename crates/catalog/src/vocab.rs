//! The closed vocabularies: catalog slugs ↔ in-memory enums.
//!
//! Part, node, and region identities are closed enums in the model
//! layer ([`PartId`], [`ProcessNode`], [`OperatorId`]), so their
//! catalog slugs are closed vocabularies too — an unknown slug is a
//! validation error listing the valid values, never a silently ignored
//! entity. System ids are open slugs (any operator can add fleets),
//! but an estimation-grade catalog must define the three Table 2
//! systems the request schema can name.

use hpcarbon_core::db::{PartId, ProcessNode, Vendor};
use hpcarbon_core::embodied::ComponentClass;
use hpcarbon_grid::regions::OperatorId;

/// Catalog slug of every part, in `TABLE1_PARTS` + `TABLE5_EXTRA_PARTS`
/// order (the canonical listing order everywhere).
pub(crate) const PART_SLUGS: [(&str, PartId); 13] = [
    ("gpu-a100-pcie-40", PartId::GpuA100Pcie40),
    ("gpu-mi250x", PartId::GpuMi250x),
    ("gpu-v100-sxm2-32", PartId::GpuV100Sxm2_32),
    ("cpu-epyc-7763", PartId::CpuEpyc7763),
    ("cpu-epyc-7742", PartId::CpuEpyc7742),
    ("cpu-xeon-gold-6240r", PartId::CpuXeonGold6240r),
    ("dram-64gb", PartId::Dram64gb),
    ("ssd-3-2tb", PartId::Ssd3_2tb),
    ("hdd-16tb", PartId::Hdd16tb),
    ("gpu-p100-pcie-16", PartId::GpuP100Pcie16),
    ("cpu-xeon-e5-2680-v4", PartId::CpuXeonE5_2680v4),
    ("cpu-epyc-7542", PartId::CpuEpyc7542),
    ("dram-32gb", PartId::Dram32gb),
];

pub(crate) const NODE_SLUGS: [(&str, ProcessNode); 5] = [
    ("n6", ProcessNode::N6),
    ("n7", ProcessNode::N7),
    ("n12", ProcessNode::N12),
    ("n14", ProcessNode::N14),
    ("n16", ProcessNode::N16),
];

pub(crate) const CLASS_SLUGS: [(&str, ComponentClass); 5] = [
    ("gpu", ComponentClass::Gpu),
    ("cpu", ComponentClass::Cpu),
    ("dram", ComponentClass::Dram),
    ("ssd", ComponentClass::Ssd),
    ("hdd", ComponentClass::Hdd),
];

pub(crate) const VENDOR_SLUGS: [(&str, Vendor); 5] = [
    ("nvidia", Vendor::Nvidia),
    ("amd", Vendor::Amd),
    ("intel", Vendor::Intel),
    ("sk-hynix", Vendor::SkHynix),
    ("seagate", Vendor::Seagate),
];

pub(crate) const REGION_SLUGS: [(&str, OperatorId); 7] = [
    ("kansai", OperatorId::Kansai),
    ("tokyo", OperatorId::Tokyo),
    ("eso", OperatorId::Eso),
    ("ciso", OperatorId::Ciso),
    ("pjm", OperatorId::Pjm),
    ("miso", OperatorId::Miso),
    ("ercot", OperatorId::Ercot),
];

/// The systems an estimation-grade catalog must define: the Table 2
/// fleet the request schema's `system` field can name.
pub(crate) const REQUIRED_SYSTEMS: [&str; 3] = ["frontier", "lumi", "perlmutter"];

pub(crate) fn slug_list<T: Copy>(table: &'static [(&'static str, T)]) -> Vec<&'static str> {
    table.iter().map(|(s, _)| *s).collect()
}

pub(crate) fn lookup<T: Copy>(table: &'static [(&'static str, T)], slug: &str) -> Option<T> {
    table.iter().find(|(s, _)| *s == slug).map(|(_, v)| *v)
}

pub(crate) fn slug_of<T: Copy + PartialEq>(
    table: &'static [(&'static str, T)],
    v: T,
) -> &'static str {
    table
        .iter()
        .find(|(_, x)| *x == v)
        .map(|(s, _)| *s)
        // lint: allow(panic-in-library) -- the slug tables are exhaustive over their enums; vocab tests assert every variant round-trips
        .expect("every enum variant has a catalog slug")
}

/// The catalog slug of a part id (used by export, provenance listings,
/// and the `hpcarbon catalog` subcommands).
pub fn part_slug(id: PartId) -> &'static str {
    slug_of(&PART_SLUGS, id)
}

/// The catalog slug of a process node (`n7`, `n16`, …).
pub fn node_slug(node: ProcessNode) -> &'static str {
    slug_of(&NODE_SLUGS, node)
}

/// The catalog slug of a grid region (`eso`, `ciso`, …).
pub fn region_slug(op: OperatorId) -> &'static str {
    slug_of(&REGION_SLUGS, op)
}

/// True iff `s` is a valid open id slug: non-empty `[a-z0-9-]`.
pub(crate) fn is_slug(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_part_has_a_distinct_slug() {
        let mut slugs = slug_list(&PART_SLUGS);
        assert_eq!(slugs.len(), hpcarbon_core::db::all_parts().len());
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 13);
        for p in hpcarbon_core::db::all_parts() {
            assert_eq!(lookup(&PART_SLUGS, part_slug(p)), Some(p));
        }
    }

    #[test]
    fn slugs_are_slugs() {
        for (s, _) in PART_SLUGS {
            assert!(is_slug(s), "{s}");
        }
        assert!(is_slug("frontier"));
        assert!(!is_slug("Frontier"));
        assert!(!is_slug("a b"));
        assert!(!is_slug(""));
    }
}
