//! The loader: directory walk → parse → validate → resolve.

use crate::entity::{
    validate_node, validate_part, validate_region, validate_system, PartEntity, ProcessNodeEntity,
    RawNode, RawPart, RawRegion, RawSystem, RegionEntity, SystemEntity,
};
use crate::error::{CatalogError, CatalogErrors};
use crate::intern::intern;
use crate::parse::RawEntity;
use crate::vocab;
use hpcarbon_core::db::EmbodiedInputs;
use hpcarbon_core::db::{PartId, PartSpec, ProcessNode};
use hpcarbon_core::embodied::FabDensities;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_units::{
    Bandwidth, CarbonAreaDensity, CarbonPerCapacity, ComputeRate, DataCapacity, Power, SiliconArea,
};
use std::path::{Path, PathBuf};

/// A loaded, fully validated catalog: every entity resolved into the
/// same in-memory types the built-in tables produce.
///
/// Construction goes through [`Catalog::load`], which is strict — a
/// `Catalog` value **is** the proof that the directory passed every
/// schema, cross-reference, and completeness check. Use
/// [`crate::CatalogSource`] for the memoized provider form.
#[derive(Debug, Clone)]
pub struct Catalog {
    root: PathBuf,
    parts: Vec<PartEntity>,
    nodes: Vec<ProcessNodeEntity>,
    systems: Vec<SystemEntity>,
    regions: Vec<RegionEntity>,
}

impl Catalog {
    /// Loads and validates the catalog directory at `root`.
    ///
    /// # Errors
    /// Every diagnostic found, in deterministic order: per-entity
    /// errors by (directory, file, line), then cross-entity errors
    /// (dangling references, duplicate ids are reported inline), then
    /// directory-level completeness errors.
    ///
    /// ```
    /// use hpcarbon_catalog::{export_builtin, Catalog};
    ///
    /// let dir = std::env::temp_dir().join(format!("cat-load-doc-{}", std::process::id()));
    /// export_builtin(&dir).unwrap();
    /// let catalog = Catalog::load(&dir).unwrap();
    /// assert_eq!(catalog.parts().len(), 13);
    /// assert_eq!(catalog.systems().len(), 3);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn load(root: impl AsRef<Path>) -> Result<Catalog, CatalogErrors> {
        let root = root.as_ref();
        if !root.is_dir() {
            return Err(CatalogErrors(vec![CatalogError::catalog(format!(
                "\"{}\" is not a catalog directory",
                root.display()
            ))]));
        }
        let mut errors: Vec<CatalogError> = Vec::new();

        let mut parts: Vec<RawPart> = Vec::new();
        let mut nodes: Vec<RawNode> = Vec::new();
        let mut systems: Vec<RawSystem> = Vec::new();
        let mut regions: Vec<RawRegion> = Vec::new();

        for raw in walk_kind(root, "parts", &mut errors) {
            if let Some(p) = validate_part(&raw, &mut errors) {
                if let Some(first) = parts.iter().find(|q| q.id == p.id) {
                    errors.push(CatalogError::entity(
                        &p.file,
                        p.id_line,
                        format!(
                            "duplicate id \"{}\" (first defined in {})",
                            vocab::part_slug(p.id),
                            first.file
                        ),
                    ));
                } else {
                    parts.push(p);
                }
            }
        }
        for raw in walk_kind(root, "nodes", &mut errors) {
            if let Some(n) = validate_node(&raw, &mut errors) {
                if let Some(first) = nodes.iter().find(|q| q.node == n.node) {
                    errors.push(CatalogError::entity(
                        &n.file,
                        n.id_line,
                        format!(
                            "duplicate id \"{}\" (first defined in {})",
                            vocab::slug_of(&vocab::NODE_SLUGS, n.node),
                            first.file
                        ),
                    ));
                } else {
                    nodes.push(n);
                }
            }
        }
        for raw in walk_kind(root, "systems", &mut errors) {
            if let Some(s) = validate_system(&raw, &mut errors) {
                if let Some(first) = systems.iter().find(|q| q.id == s.id) {
                    errors.push(CatalogError::entity(
                        &s.file,
                        s.id_line,
                        format!(
                            "duplicate id \"{}\" (first defined in {})",
                            s.id, first.file
                        ),
                    ));
                } else {
                    systems.push(s);
                }
            }
        }
        for raw in walk_kind(root, "regions", &mut errors) {
            if let Some(r) = validate_region(&raw, &mut errors) {
                if let Some(first) = regions.iter().find(|q| q.id == r.id) {
                    errors.push(CatalogError::entity(
                        &r.file,
                        r.id_line,
                        format!(
                            "duplicate id \"{}\" (first defined in {})",
                            vocab::slug_of(&vocab::REGION_SLUGS, r.id),
                            first.file
                        ),
                    ));
                } else {
                    regions.push(r);
                }
            }
        }

        // Cross-entity pass: every reference must land on an entity
        // *file* in this catalog — the id vocabularies were already
        // checked per entity, so these are specifically dangling links.
        for p in &parts {
            if let Some((line, node)) = p.node {
                if !nodes.iter().any(|n| n.node == node) {
                    errors.push(CatalogError::entity(
                        &p.file,
                        line,
                        format!(
                            "field \"node\" references process node \"{}\" which has no entity file in this catalog",
                            vocab::slug_of(&vocab::NODE_SLUGS, node)
                        ),
                    ));
                }
            }
        }
        for s in &systems {
            for l in &s.links {
                if !parts.iter().any(|p| p.id == l.part) {
                    errors.push(CatalogError::entity(
                        &s.file,
                        l.line,
                        format!(
                            "link references part \"{}\" which has no entity file in this catalog",
                            vocab::part_slug(l.part)
                        ),
                    ));
                }
            }
        }

        // Completeness: estimation reaches for every built-in part id,
        // node, Table 2 system, and operator — a catalog missing any of
        // them would fail at estimate time, so fail at load time instead.
        for (slug, id) in vocab::PART_SLUGS {
            if !parts.iter().any(|p| p.id == id) {
                errors.push(CatalogError::catalog(format!(
                    "catalog is missing part \"{slug}\" (an estimation-grade catalog defines all 13 built-in parts)"
                )));
            }
        }
        for (slug, node) in vocab::NODE_SLUGS {
            if !nodes.iter().any(|n| n.node == node) {
                errors.push(CatalogError::catalog(format!(
                    "catalog is missing process node \"{slug}\" (an estimation-grade catalog defines all 5 nodes)"
                )));
            }
        }
        for id in vocab::REQUIRED_SYSTEMS {
            if !systems.iter().any(|s| s.id == id) {
                errors.push(CatalogError::catalog(format!(
                    "catalog is missing system \"{id}\" (an estimation-grade catalog defines frontier, lumi, perlmutter)"
                )));
            }
        }
        for (slug, id) in vocab::REGION_SLUGS {
            if !regions.iter().any(|r| r.id == id) {
                errors.push(CatalogError::catalog(format!(
                    "catalog is missing region \"{slug}\" (an estimation-grade catalog defines all 7 grid operators)"
                )));
            }
        }

        if !errors.is_empty() {
            return Err(CatalogErrors(errors));
        }
        Ok(Catalog::resolve(root, parts, nodes, systems, regions))
    }

    /// Resolves validated raw entities into model types. Only reachable
    /// with zero diagnostics, so every cross-reference is present.
    fn resolve(
        root: &Path,
        parts: Vec<RawPart>,
        nodes: Vec<RawNode>,
        systems: Vec<RawSystem>,
        regions: Vec<RawRegion>,
    ) -> Catalog {
        let mut node_entities: Vec<ProcessNodeEntity> = nodes
            .into_iter()
            .map(|n| ProcessNodeEntity {
                node: n.node,
                label: n.label,
                densities: FabDensities {
                    fpa: CarbonAreaDensity::from_g_per_cm2(n.fpa),
                    gpa: CarbonAreaDensity::from_g_per_cm2(n.gpa),
                    mpa: CarbonAreaDensity::from_g_per_cm2(n.mpa),
                },
                source: n.file,
            })
            .collect();
        node_entities.sort_by_key(|n| slug_rank(&vocab::NODE_SLUGS, n.node));

        let mut part_entities: Vec<PartEntity> = parts
            .into_iter()
            .map(|p| {
                let embodied_inputs = match (p.die_area_mm2, p.node, p.epc_g_per_gb) {
                    (Some(mm2), Some((_, node)), None) => EmbodiedInputs::Processor {
                        die_area: SiliconArea::from_mm2(mm2),
                        node,
                        densities: node_entities
                            .iter()
                            .find(|n| n.node == node)
                            // lint: allow(panic-in-library) -- build_model runs after validate(), whose link check rejects any part whose node has no process-node entity
                            .expect("validated catalogs have no dangling node refs")
                            .densities,
                    },
                    (None, None, Some(epc)) => EmbodiedInputs::MemoryStorage {
                        epc: CarbonPerCapacity::from_g_per_gb(epc),
                    },
                    _ => unreachable!("the class schema admits exactly one input shape"),
                };
                PartEntity {
                    spec: PartSpec {
                        id: p.id,
                        class: p.class,
                        component: intern(&p.component),
                        part_name: intern(&p.part_name),
                        vendor: p.vendor,
                        release: p.release,
                        embodied_inputs,
                        packaging: p.packaging,
                        capacity: p.capacity_gb.map(DataCapacity::from_gb),
                        fp64_peak: p.fp64_gflops.map(ComputeRate::from_gflops),
                        bandwidth: p.bandwidth_gbps.map(Bandwidth::from_gbps),
                        tdp: p.tdp_w.map(Power::from_w),
                        idle_power: p.idle_w.map(Power::from_w),
                    },
                    source: p.file,
                }
            })
            .collect();
        part_entities.sort_by_key(|p| slug_rank(&vocab::PART_SLUGS, p.spec.id));

        let mut system_entities: Vec<SystemEntity> = systems
            .into_iter()
            .map(|s| SystemEntity {
                system: HpcSystem {
                    name: intern(&s.name),
                    location: intern(&s.location),
                    cores: s.cores,
                    year: s.year,
                    inventory: s
                        .links
                        .iter()
                        .map(|l| {
                            let spec = part_entities
                                .iter()
                                .find(|p| p.spec.id == l.part)
                                // lint: allow(panic-in-library) -- build_model runs after validate(), whose link check rejects any system link naming a part with no entity
                                .expect("validated catalogs have no dangling part links")
                                .spec;
                            (spec, l.count)
                        })
                        .collect(),
                },
                id: s.id,
                links: s.links,
                source: s.file,
            })
            .collect();
        system_entities.sort_by(|a, b| a.id.cmp(&b.id));

        let mut region_entities: Vec<RegionEntity> = regions
            .into_iter()
            .map(|r| RegionEntity {
                id: r.id,
                short: r.short,
                name: r.name,
                country: r.country,
                region: r.region,
                source: r.file,
            })
            .collect();
        region_entities.sort_by_key(|r| slug_rank(&vocab::REGION_SLUGS, r.id));

        Catalog {
            root: root.to_path_buf(),
            parts: part_entities,
            nodes: node_entities,
            systems: system_entities,
            regions: region_entities,
        }
    }

    /// The directory this catalog was loaded from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The resolved spec of `part` (every valid catalog defines all 13).
    pub fn part(&self, part: PartId) -> Option<&PartSpec> {
        self.part_entity(part).map(|p| &p.spec)
    }

    /// The part entity (spec + source file) of `part`.
    pub fn part_entity(&self, part: PartId) -> Option<&PartEntity> {
        self.parts.iter().find(|p| p.spec.id == part)
    }

    /// All part entities, in the canonical Table 1 + Table 5 order.
    pub fn parts(&self) -> &[PartEntity] {
        &self.parts
    }

    /// The process-node entity of `node`.
    pub fn node(&self, node: ProcessNode) -> Option<&ProcessNodeEntity> {
        self.nodes.iter().find(|n| n.node == node)
    }

    /// All process-node entities, newest lithography last.
    pub fn nodes(&self) -> &[ProcessNodeEntity] {
        &self.nodes
    }

    /// The system entity with catalog id `id` (e.g. `"frontier"`).
    pub fn system(&self, id: &str) -> Option<&SystemEntity> {
        self.systems.iter().find(|s| s.id == id)
    }

    /// All system entities, sorted by id.
    pub fn systems(&self) -> &[SystemEntity] {
        &self.systems
    }

    /// The region entity of `operator`.
    pub fn region(&self, operator: OperatorId) -> Option<&RegionEntity> {
        self.regions.iter().find(|r| r.id == operator)
    }

    /// All region entities, in Table 3 order.
    pub fn regions(&self) -> &[RegionEntity] {
        &self.regions
    }
}

/// Rank of an id in its canonical slug table (for stable listing order).
fn slug_rank<T: Copy + PartialEq>(table: &'static [(&'static str, T)], v: T) -> usize {
    table
        .iter()
        .position(|(_, x)| *x == v)
        // lint: allow(panic-in-library) -- the slug tables are exhaustive over their enums; vocab tests assert every variant round-trips
        .expect("every enum variant has a catalog slug")
}

/// Lists and parses `root/<dir>/*.ent` in filename order. A missing
/// kind directory yields no entities (completeness checks report what
/// that implies); stray non-`.ent` files are errors — a typo'd
/// filename must never silently drop an entity.
fn walk_kind(root: &Path, dir: &'static str, errors: &mut Vec<CatalogError>) -> Vec<RawEntity> {
    let kind_dir = root.join(dir);
    if !kind_dir.is_dir() {
        return Vec::new();
    }
    let mut names: Vec<String> = Vec::new();
    match std::fs::read_dir(&kind_dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if entry.path().is_dir() {
                    continue;
                }
                if name.ends_with(".ent") {
                    names.push(name);
                } else {
                    errors.push(CatalogError::catalog(format!(
                        "unexpected file \"{dir}/{name}\" (entity files end in .ent)"
                    )));
                }
            }
        }
        Err(e) => {
            errors.push(CatalogError::catalog(format!(
                "cannot read directory \"{dir}\": {e}"
            )));
            return Vec::new();
        }
    }
    names.sort_unstable();
    let mut out = Vec::new();
    for name in names {
        let rel = format!("{dir}/{name}");
        match std::fs::read_to_string(kind_dir.join(&name)) {
            Ok(text) => out.push(RawEntity::parse(&rel, &text, errors)),
            Err(e) => errors.push(CatalogError::catalog(format!("cannot read \"{rel}\": {e}"))),
        }
    }
    out
}
