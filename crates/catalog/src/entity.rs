//! Per-kind field schemas: raw fields → typed, validated entities.
//!
//! The directory an entity file lives in determines its schema
//! (`parts/` holds `kind: part`, and so on); validation checks the
//! `kind:` field against it, then required fields, closed
//! vocabularies, numeric domains, and field exclusivity. Every
//! diagnostic carries the 1-based line it anchors to; diagnostics
//! about a field the file *lacks* anchor to the `kind:` line.

use crate::error::{unknown_value, CatalogError};
use crate::parse::RawEntity;
use crate::vocab;
use hpcarbon_core::db::{PartId, PartSpec, ProcessNode, Vendor};
use hpcarbon_core::embodied::{ComponentClass, FabDensities, PackagingSpec};
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::regions::OperatorId;

/// A resolved part entity: the spec it contributes plus its source file.
#[derive(Debug, Clone)]
pub struct PartEntity {
    /// The fully resolved spec (identical shape to the built-in table).
    pub spec: PartSpec,
    /// Path of the defining file, relative to the catalog root.
    pub source: String,
}

/// A resolved process-node entity.
#[derive(Debug, Clone)]
pub struct ProcessNodeEntity {
    /// The node this entity defines densities for.
    pub node: ProcessNode,
    /// Marketing label (e.g. `7nm`).
    pub label: String,
    /// The Eq. 3 FPA/GPA/MPA densities.
    pub densities: FabDensities,
    /// Path of the defining file, relative to the catalog root.
    pub source: String,
}

/// One `link:` line of a system's bill of materials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemLink {
    /// The linked part.
    pub part: PartId,
    /// Unit count.
    pub count: u64,
    /// The 1-based line of the `link:` declaration (provenance).
    pub line: usize,
}

/// A resolved system entity: the built inventory plus its BOM links.
#[derive(Debug, Clone)]
pub struct SystemEntity {
    /// The system's catalog id (an open slug).
    pub id: String,
    /// The built system, with every inventory spec resolved from this
    /// catalog's part entities.
    pub system: HpcSystem,
    /// The BOM links in file order (provenance: file + line per part).
    pub links: Vec<SystemLink>,
    /// Path of the defining file, relative to the catalog root.
    pub source: String,
}

/// A resolved region entity (descriptive: the Table 3 operator rows).
#[derive(Debug, Clone)]
pub struct RegionEntity {
    /// The operator this entity describes.
    pub id: OperatorId,
    /// Short code used in figures (KN, TK, ESO, …).
    pub short: String,
    /// Full operator name.
    pub name: String,
    /// Country of operation.
    pub country: String,
    /// Region of operation.
    pub region: String,
    /// Path of the defining file, relative to the catalog root.
    pub source: String,
}

/// Pre-resolution part: node references are checked against the
/// catalog's node entities in a later cross-entity pass.
#[derive(Debug, Clone)]
pub(crate) struct RawPart {
    pub file: String,
    pub id_line: usize,
    pub id: PartId,
    pub class: ComponentClass,
    pub component: String,
    pub part_name: String,
    pub vendor: Vendor,
    pub release: (u16, u8),
    pub die_area_mm2: Option<f64>,
    pub node: Option<(usize, ProcessNode)>,
    pub epc_g_per_gb: Option<f64>,
    pub packaging: PackagingSpec,
    pub capacity_gb: Option<f64>,
    pub fp64_gflops: Option<f64>,
    pub bandwidth_gbps: Option<f64>,
    pub tdp_w: Option<f64>,
    pub idle_w: Option<f64>,
}

#[derive(Debug, Clone)]
pub(crate) struct RawNode {
    pub file: String,
    pub id_line: usize,
    pub node: ProcessNode,
    pub label: String,
    pub fpa: f64,
    pub gpa: f64,
    pub mpa: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct RawSystem {
    pub file: String,
    pub id_line: usize,
    pub id: String,
    pub name: String,
    pub location: String,
    pub cores: u64,
    pub year: u16,
    pub links: Vec<SystemLink>,
}

#[derive(Debug, Clone)]
pub(crate) struct RawRegion {
    pub file: String,
    pub id_line: usize,
    pub id: OperatorId,
    pub short: String,
    pub name: String,
    pub country: String,
    pub region: String,
}

pub(crate) const KIND_VALUES: [&str; 4] = ["part", "process-node", "system", "region"];

const PART_FIELDS: [&str; 17] = [
    "kind",
    "id",
    "class",
    "component",
    "part-name",
    "vendor",
    "release",
    "die-area-mm2",
    "node",
    "epc-g-per-gb",
    "packaging-ic-count",
    "packaging-ratio",
    "capacity-gb",
    "fp64-gflops",
    "bandwidth-gbps",
    "tdp-w",
    "idle-w",
];
const NODE_FIELDS: [&str; 6] = [
    "kind",
    "id",
    "label",
    "fpa-g-per-cm2",
    "gpa-g-per-cm2",
    "mpa-g-per-cm2",
];
const SYSTEM_FIELDS: [&str; 7] = ["kind", "id", "name", "location", "cores", "year", "link"];
const REGION_FIELDS: [&str; 6] = ["kind", "id", "short", "name", "country", "region"];

/// Field accessor over a parsed entity: duplicate/unknown detection plus
/// typed extraction, all error paths line-numbered.
struct Fields<'a> {
    file: &'a str,
    kind_line: usize,
    /// `(line, key, value)` of every non-`link` field, deduplicated.
    scalars: Vec<(usize, &'a str, &'a str)>,
    /// Every `link:` field in file order.
    links: Vec<(usize, &'a str)>,
}

impl<'a> Fields<'a> {
    /// Indexes `raw` against the schema `(kind, allowed)`. Unknown and
    /// duplicate fields are reported here; `link` is the one repeatable
    /// key (and only allowed where the schema lists it).
    fn index(
        raw: &'a RawEntity,
        kind: &str,
        allowed: &'static [&'static str],
        errors: &mut Vec<CatalogError>,
    ) -> Fields<'a> {
        let kind_line = raw
            .fields
            .iter()
            .find(|f| f.key == "kind")
            .map(|f| f.line)
            .unwrap_or(1);
        let mut scalars: Vec<(usize, &str, &str)> = Vec::new();
        let mut links = Vec::new();
        for f in &raw.fields {
            if !allowed.contains(&f.key.as_str()) {
                errors.push(CatalogError::entity(
                    &raw.file,
                    f.line,
                    format!(
                        "unknown field \"{}\" (valid fields for {kind}: {})",
                        f.key,
                        allowed.join(", ")
                    ),
                ));
                continue;
            }
            if f.key == "link" {
                links.push((f.line, f.value.as_str()));
                continue;
            }
            if let Some((first, _, _)) = scalars.iter().find(|(_, k, _)| *k == f.key) {
                errors.push(CatalogError::entity(
                    &raw.file,
                    f.line,
                    format!("duplicate field \"{}\" (first set on line {first})", f.key),
                ));
                continue;
            }
            scalars.push((f.line, f.key.as_str(), f.value.as_str()));
        }
        Fields {
            file: &raw.file,
            kind_line,
            scalars,
            links,
        }
    }

    fn get(&self, key: &str) -> Option<(usize, &'a str)> {
        self.scalars
            .iter()
            .find(|(_, k, _)| *k == key)
            .map(|(l, _, v)| (*l, *v))
    }

    /// A required free-text field; empty values are rejected.
    fn required(
        &self,
        key: &'static str,
        errors: &mut Vec<CatalogError>,
    ) -> Option<(usize, &'a str)> {
        match self.get(key) {
            None => {
                errors.push(CatalogError::entity(
                    self.file,
                    self.kind_line,
                    format!("missing required field \"{key}\""),
                ));
                None
            }
            Some((line, "")) => {
                errors.push(CatalogError::entity(
                    self.file,
                    line,
                    format!("field \"{key}\" must not be empty"),
                ));
                None
            }
            Some(found) => Some(found),
        }
    }

    /// A required closed-vocabulary field (`unknown {what} "{v}"
    /// (valid values: …)`).
    fn required_vocab<T: Copy>(
        &self,
        key: &'static str,
        what: &'static str,
        table: &'static [(&'static str, T)],
        errors: &mut Vec<CatalogError>,
    ) -> Option<(usize, T)> {
        let (line, v) = self.required(key, errors)?;
        match vocab::lookup(table, v) {
            Some(t) => Some((line, t)),
            None => {
                errors.push(CatalogError::entity(
                    self.file,
                    line,
                    unknown_value(what, v, &vocab::slug_list(table)),
                ));
                None
            }
        }
    }

    /// A positive finite `f64` field; `required` selects missing-field
    /// behavior (error vs `None`).
    fn number(
        &self,
        key: &'static str,
        required: bool,
        errors: &mut Vec<CatalogError>,
    ) -> Option<f64> {
        let found = if required {
            self.required(key, errors)?
        } else {
            self.get(key)?
        };
        let (line, v) = found;
        match v.parse::<f64>() {
            Ok(x) if x.is_finite() => {
                if x > 0.0 {
                    Some(x)
                } else {
                    errors.push(CatalogError::entity(
                        self.file,
                        line,
                        format!("field \"{key}\" must be a positive number (got \"{v}\")"),
                    ));
                    None
                }
            }
            _ => {
                errors.push(CatalogError::entity(
                    self.file,
                    line,
                    format!("field \"{key}\" must be a finite number (got \"{v}\")"),
                ));
                None
            }
        }
    }

    /// A required positive integer field.
    fn integer(&self, key: &'static str, errors: &mut Vec<CatalogError>) -> Option<(usize, u64)> {
        let (line, v) = self.required(key, errors)?;
        match v.parse::<u64>() {
            Ok(x) if x > 0 => Some((line, x)),
            _ => {
                errors.push(CatalogError::entity(
                    self.file,
                    line,
                    format!("field \"{key}\" must be a positive integer (got \"{v}\")"),
                ));
                None
            }
        }
    }

    /// The required `release: YYYY-MM` field.
    fn release(&self, errors: &mut Vec<CatalogError>) -> Option<(u16, u8)> {
        let (line, v) = self.required("release", errors)?;
        let parsed = v.split_once('-').and_then(|(y, m)| {
            if y.len() != 4 || m.len() != 2 {
                return None;
            }
            let year: u16 = y.parse().ok()?;
            let month: u8 = m.parse().ok()?;
            (1..=12).contains(&month).then_some((year, month))
        });
        if parsed.is_none() {
            errors.push(CatalogError::entity(
                self.file,
                line,
                format!("field \"release\" must be \"YYYY-MM\" (got \"{v}\")"),
            ));
        }
        parsed
    }

    /// A field the schema rejects for this entity's class.
    fn forbid(
        &self,
        key: &'static str,
        class: &'static str,
        hint: &'static str,
        errors: &mut Vec<CatalogError>,
    ) -> bool {
        if let Some((line, _)) = self.get(key) {
            errors.push(CatalogError::entity(
                self.file,
                line,
                format!("field \"{key}\" is not allowed for class {class} ({hint})"),
            ));
            return true;
        }
        false
    }
}

/// Checks the `kind:` field of `raw` against the kind its directory
/// implies. Returns `false` (after reporting) on mismatch; a missing
/// `kind:` is reported but validation proceeds — the directory already
/// determines the schema.
fn check_kind(
    raw: &RawEntity,
    expected: &'static str,
    dir: &'static str,
    errors: &mut Vec<CatalogError>,
) -> bool {
    match raw.fields.iter().find(|f| f.key == "kind") {
        None => {
            errors.push(CatalogError::entity(
                &raw.file,
                1,
                "missing required field \"kind\"".to_string(),
            ));
            true
        }
        Some(f) if f.value == expected => true,
        Some(f) => {
            if KIND_VALUES.contains(&f.value.as_str()) {
                errors.push(CatalogError::entity(
                    &raw.file,
                    f.line,
                    format!(
                        "kind \"{}\" does not match its directory ({dir}/ holds kind {expected})",
                        f.value
                    ),
                ));
            } else {
                errors.push(CatalogError::entity(
                    &raw.file,
                    f.line,
                    unknown_value("kind", &f.value, &KIND_VALUES),
                ));
            }
            false
        }
    }
}

/// Validates one `parts/*.ent` file. Returns the typed part only if
/// every check passed; all diagnostics are appended either way.
pub(crate) fn validate_part(raw: &RawEntity, errors: &mut Vec<CatalogError>) -> Option<RawPart> {
    if !check_kind(raw, "part", "parts", errors) {
        return None;
    }
    let before = errors.len();
    let f = Fields::index(raw, "part", &PART_FIELDS, errors);

    let id = f.required_vocab("id", "part", &vocab::PART_SLUGS, errors);
    let class = f.required_vocab("class", "class", &vocab::CLASS_SLUGS, errors);
    let component = f.required("component", errors);
    let part_name = f.required("part-name", errors);
    let vendor = f.required_vocab("vendor", "vendor", &vocab::VENDOR_SLUGS, errors);
    let release = f.release(errors);

    // Embodied-model inputs are class-shaped: processors carry Eq. 3
    // inputs (die area on a node), memory/storage carries Eq. 4 inputs
    // (EPC × capacity).
    let mut die_area_mm2 = None;
    let mut node = None;
    let mut epc_g_per_gb = None;
    let mut capacity_gb = f.number("capacity-gb", false, errors);
    if let Some((_, c)) = class {
        match c {
            ComponentClass::Gpu | ComponentClass::Cpu => {
                let slug = vocab::slug_of(&vocab::CLASS_SLUGS, c);
                f.forbid(
                    "epc-g-per-gb",
                    slug,
                    "processor parts use die-area-mm2 + node",
                    errors,
                );
                die_area_mm2 = f.number("die-area-mm2", true, errors);
                node = f.required_vocab("node", "process node", &vocab::NODE_SLUGS, errors);
            }
            ComponentClass::Dram | ComponentClass::Ssd | ComponentClass::Hdd => {
                let slug = vocab::slug_of(&vocab::CLASS_SLUGS, c);
                let hint = "memory/storage parts use epc-g-per-gb";
                f.forbid("die-area-mm2", slug, hint, errors);
                f.forbid("node", slug, hint, errors);
                epc_g_per_gb = f.number("epc-g-per-gb", true, errors);
                if capacity_gb.is_none() && f.get("capacity-gb").is_none() {
                    errors.push(CatalogError::entity(
                        f.file,
                        f.kind_line,
                        "missing required field \"capacity-gb\"".to_string(),
                    ));
                    capacity_gb = None;
                }
            }
        }
    }

    // Eq. 5 packaging: an IC count, or the manufacturing ratio used for
    // storage devices — exactly one.
    let ic = f.get("packaging-ic-count");
    let ratio = f.get("packaging-ratio");
    let packaging = match (ic, ratio) {
        (Some(_), Some((r_line, _))) => {
            errors.push(CatalogError::entity(
                f.file,
                r_line,
                "field \"packaging-ratio\" conflicts with \"packaging-ic-count\" (set exactly one)"
                    .to_string(),
            ));
            None
        }
        (Some(_), None) => f
            .integer("packaging-ic-count", errors)
            .map(|(_, n)| PackagingSpec::IcCount(n as u32)),
        (None, Some(_)) => f
            .number("packaging-ratio", true, errors)
            .map(PackagingSpec::ManufacturingRatio),
        (None, None) => {
            errors.push(CatalogError::entity(
                f.file,
                f.kind_line,
                "exactly one of \"packaging-ic-count\" or \"packaging-ratio\" is required"
                    .to_string(),
            ));
            None
        }
    };

    let fp64_gflops = f.number("fp64-gflops", false, errors);
    let bandwidth_gbps = f.number("bandwidth-gbps", false, errors);
    let tdp_w = f.number("tdp-w", false, errors);
    let idle_w = f.number("idle-w", false, errors);

    if errors.len() > before {
        return None;
    }
    Some(RawPart {
        file: raw.file.clone(),
        id_line: id.map(|(l, _)| l).unwrap_or(f.kind_line),
        id: id?.1,
        class: class?.1,
        component: component?.1.to_string(),
        part_name: part_name?.1.to_string(),
        vendor: vendor?.1,
        release: release?,
        die_area_mm2,
        node,
        epc_g_per_gb,
        packaging: packaging?,
        capacity_gb,
        fp64_gflops,
        bandwidth_gbps,
        tdp_w,
        idle_w,
    })
}

/// Validates one `nodes/*.ent` file.
pub(crate) fn validate_node(raw: &RawEntity, errors: &mut Vec<CatalogError>) -> Option<RawNode> {
    if !check_kind(raw, "process-node", "nodes", errors) {
        return None;
    }
    let before = errors.len();
    let f = Fields::index(raw, "process-node", &NODE_FIELDS, errors);
    let id = f.required_vocab("id", "process node", &vocab::NODE_SLUGS, errors);
    let label = f.required("label", errors);
    let fpa = f.number("fpa-g-per-cm2", true, errors);
    let gpa = f.number("gpa-g-per-cm2", true, errors);
    let mpa = f.number("mpa-g-per-cm2", true, errors);
    if errors.len() > before {
        return None;
    }
    Some(RawNode {
        file: raw.file.clone(),
        id_line: id.map(|(l, _)| l).unwrap_or(f.kind_line),
        node: id?.1,
        label: label?.1.to_string(),
        fpa: fpa?,
        gpa: gpa?,
        mpa: mpa?,
    })
}

/// Validates one `systems/*.ent` file. Link *targets* are checked
/// against the part vocabulary here; whether the catalog actually
/// defines each linked part is the loader's cross-entity pass.
pub(crate) fn validate_system(
    raw: &RawEntity,
    errors: &mut Vec<CatalogError>,
) -> Option<RawSystem> {
    if !check_kind(raw, "system", "systems", errors) {
        return None;
    }
    let before = errors.len();
    let f = Fields::index(raw, "system", &SYSTEM_FIELDS, errors);
    let id = match f.required("id", errors) {
        Some((line, v)) if !vocab::is_slug(v) => {
            errors.push(CatalogError::entity(
                f.file,
                line,
                format!("field \"id\" must be a slug of [a-z0-9-] (got \"{v}\")"),
            ));
            None
        }
        other => other,
    };
    let name = f.required("name", errors);
    let location = f.required("location", errors);
    let cores = f.integer("cores", errors);
    let year = f.integer("year", errors).and_then(|(line, y)| {
        u16::try_from(y).ok().or_else(|| {
            errors.push(CatalogError::entity(
                f.file,
                line,
                format!("field \"year\" must be a positive integer (got \"{y}\")"),
            ));
            None
        })
    });

    let mut links: Vec<SystemLink> = Vec::new();
    for (line, v) in &f.links {
        let mut tokens = v.split_whitespace();
        let parsed = match (tokens.next(), tokens.next(), tokens.next()) {
            (Some(slug), Some(count), None) => count
                .parse::<u64>()
                .ok()
                .filter(|c| *c > 0)
                .map(|c| (slug, c)),
            _ => None,
        };
        let Some((slug, count)) = parsed else {
            errors.push(CatalogError::entity(
                f.file,
                *line,
                format!("field \"link\" must be \"<part-id> <count>\" (got \"{v}\")"),
            ));
            continue;
        };
        let Some(part) = vocab::lookup(&vocab::PART_SLUGS, slug) else {
            errors.push(CatalogError::entity(
                f.file,
                *line,
                unknown_value("part", slug, &vocab::slug_list(&vocab::PART_SLUGS)),
            ));
            continue;
        };
        if let Some(first) = links.iter().find(|l| l.part == part) {
            errors.push(CatalogError::entity(
                f.file,
                *line,
                format!(
                    "duplicate link to \"{slug}\" (first on line {})",
                    first.line
                ),
            ));
            continue;
        }
        links.push(SystemLink {
            part,
            count,
            line: *line,
        });
    }
    if f.links.is_empty() {
        errors.push(CatalogError::entity(
            f.file,
            f.kind_line,
            "missing required field \"link\" (a system declares its bill of materials)".to_string(),
        ));
    }

    if errors.len() > before {
        return None;
    }
    Some(RawSystem {
        file: raw.file.clone(),
        id_line: id.map(|(l, _)| l).unwrap_or(f.kind_line),
        id: id?.1.to_string(),
        name: name?.1.to_string(),
        location: location?.1.to_string(),
        cores: cores?.1,
        year: year?,
        links,
    })
}

/// Validates one `regions/*.ent` file.
pub(crate) fn validate_region(
    raw: &RawEntity,
    errors: &mut Vec<CatalogError>,
) -> Option<RawRegion> {
    if !check_kind(raw, "region", "regions", errors) {
        return None;
    }
    let before = errors.len();
    let f = Fields::index(raw, "region", &REGION_FIELDS, errors);
    let id = f.required_vocab("id", "region", &vocab::REGION_SLUGS, errors);
    let short = f.required("short", errors);
    let name = f.required("name", errors);
    let country = f.required("country", errors);
    let region = f.required("region", errors);
    if errors.len() > before {
        return None;
    }
    Some(RawRegion {
        file: raw.file.clone(),
        id_line: id.map(|(l, _)| l).unwrap_or(f.kind_line),
        id: id?.1,
        short: short?.1.to_string(),
        name: name?.1.to_string(),
        country: country?.1.to_string(),
        region: region?.1.to_string(),
    })
}
