//! The `EmbodiedSource` provider over a loaded catalog.

use crate::catalog::Catalog;
use crate::error::CatalogErrors;
use hpcarbon_api::providers::EmbodiedSource;
use hpcarbon_api::SystemId;
use hpcarbon_core::db::{PartId, PartSpec};
use hpcarbon_core::systems::HpcSystem;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Loaded catalogs, memoized per canonical directory path. Estimators,
/// sweeps, and server shards asking for the same `--catalog DIR` share
/// one parsed [`Catalog`] — loading is strict and eager, so the cost
/// is paid once and every later lookup is a map read. Ordered map by
/// policy (`hash-iteration-order`, docs/LINTS.md): deterministic crates
/// carry no hash-ordered collections.
static LOADED: OnceLock<Mutex<BTreeMap<PathBuf, Arc<Catalog>>>> = OnceLock::new();

/// An [`EmbodiedSource`] backed by a plain-text catalog directory.
///
/// Construction validates the whole directory (schema, links,
/// estimation-grade completeness), so a `CatalogSource` can always
/// answer for every [`SystemId`] and [`PartId`] the request schema can
/// name. Cloning is cheap (an [`Arc`] handle); the provider is a pure
/// function of the loaded files, preserving the batch determinism
/// contract of [`hpcarbon_api::providers`].
///
/// ```no_run
/// use hpcarbon_catalog::CatalogSource;
/// let source = CatalogSource::load("catalog")?;
/// let estimator = hpcarbon_api::Estimator::builder().embodied(source).build();
/// # Ok::<(), hpcarbon_catalog::CatalogErrors>(())
/// ```
#[derive(Debug, Clone)]
pub struct CatalogSource {
    catalog: Arc<Catalog>,
}

impl CatalogSource {
    /// Loads (or reuses the memoized load of) the catalog at `dir`.
    ///
    /// # Errors
    /// Every validation diagnostic, line-numbered — see
    /// [`Catalog::load`]. Failed loads are not memoized, so a fixed
    /// catalog is picked up on the next call.
    pub fn load(dir: impl AsRef<Path>) -> Result<CatalogSource, CatalogErrors> {
        let dir = dir.as_ref();
        // Canonicalize so `./catalog` and an absolute spelling share one
        // cache slot; an unresolvable path falls through to `load`,
        // which reports it as a catalog error.
        let key = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
        // Poison recovery is sound for this map: entries are inserted
        // fully built (`Arc<Catalog>`), so a panicking peer can at worst
        // cost a redundant reload, never expose a partial catalog.
        let cache = LOADED.get_or_init(|| Mutex::new(BTreeMap::new()));
        if let Some(found) = cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Ok(CatalogSource {
                catalog: Arc::clone(found),
            });
        }
        let loaded = Arc::new(Catalog::load(dir)?);
        cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, Arc::clone(&loaded));
        Ok(CatalogSource { catalog: loaded })
    }

    /// Wraps an already loaded catalog (no memoization involved).
    pub fn from_catalog(catalog: Arc<Catalog>) -> CatalogSource {
        CatalogSource { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }
}

impl EmbodiedSource for CatalogSource {
    fn build_system(&self, system: SystemId) -> HpcSystem {
        self.catalog
            .system(system.label())
            // lint: allow(panic-in-library) -- Catalog::load's completeness check rejects any catalog missing a required SystemId, so a constructed CatalogSource always resolves every label
            .expect("estimation-grade catalogs define every SystemId")
            .system
            .clone()
    }

    fn part_spec(&self, part: PartId) -> PartSpec {
        *self
            .catalog
            .part(part)
            // lint: allow(panic-in-library) -- Catalog::load's completeness check requires all 13 PartIds, so a constructed CatalogSource always resolves every part
            .expect("estimation-grade catalogs define every PartId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export_builtin;

    #[test]
    fn memoizes_per_directory() {
        let dir =
            std::env::temp_dir().join(format!("hpcarbon-catalog-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        export_builtin(&dir).unwrap();
        let a = CatalogSource::load(&dir).unwrap();
        let b = CatalogSource::load(&dir).unwrap();
        assert!(Arc::ptr_eq(a.catalog(), b.catalog()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provider_answers_for_every_request_nameable_id() {
        let dir =
            std::env::temp_dir().join(format!("hpcarbon-catalog-prov-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        export_builtin(&dir).unwrap();
        let s = CatalogSource::load(&dir).unwrap();
        for id in SystemId::ALL {
            let sys = s.build_system(id);
            assert!(!sys.inventory.is_empty(), "{id:?}");
        }
        for p in hpcarbon_core::db::all_parts() {
            assert_eq!(s.part_spec(p), p.spec());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
