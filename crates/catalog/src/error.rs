//! Line-numbered validation errors.
//!
//! Every diagnostic the validator can emit is listed (with a sample)
//! in `docs/CATALOG.md`; the strings here are a documented contract —
//! golden fixture tests assert them byte-for-byte. Vocabulary errors
//! reuse the PR 4 `ParseError` idiom:
//! `unknown {field} "{value}" (valid values: {list})`.

/// One validation diagnostic.
///
/// Entity errors carry the file (path relative to the catalog root,
/// `/`-separated) and the 1-based line they anchor to; errors about a
/// field the file *lacks* anchor to the `kind:` line, which is the line
/// that selected the schema. Catalog errors are directory-level
/// (completeness, stray files) and have no line.
///
/// ```
/// use hpcarbon_catalog::CatalogError;
///
/// let e = CatalogError::Entity {
///     file: "parts/dram-64gb.ent".to_string(),
///     line: 9,
///     message: "field \"epc-g-per-gb\" must be a finite number (got \"sixty-five\")".to_string(),
/// };
/// assert_eq!(
///     e.to_string(),
///     "parts/dram-64gb.ent:9: field \"epc-g-per-gb\" must be a finite number (got \"sixty-five\")"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A diagnostic inside one entity file.
    Entity {
        /// Path relative to the catalog root, `/`-separated.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The diagnostic message (see `docs/CATALOG.md`).
        message: String,
    },
    /// A directory-level diagnostic (no single file/line).
    Catalog {
        /// The diagnostic message.
        message: String,
    },
}

impl CatalogError {
    pub(crate) fn entity(file: &str, line: usize, message: String) -> CatalogError {
        CatalogError::Entity {
            file: file.to_string(),
            line,
            message,
        }
    }

    pub(crate) fn catalog(message: String) -> CatalogError {
        CatalogError::Catalog { message }
    }
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Entity {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
            CatalogError::Catalog { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Every diagnostic of one failed load, in deterministic order:
/// per-entity errors (sorted by file, then line), then cross-entity
/// errors (dangling links, duplicate ids), then completeness errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogErrors(pub Vec<CatalogError>);

impl std::fmt::Display for CatalogErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CatalogErrors {}

/// `unknown {field} "{value}" (valid values: {list})` — the shared
/// vocabulary-listing idiom.
pub(crate) fn unknown_value(field: &str, value: &str, expected: &[&str]) -> String {
    format!(
        "unknown {field} \"{value}\" (valid values: {})",
        expected.join(", ")
    )
}
