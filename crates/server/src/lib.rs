//! # hpcarbon-server
//!
//! An always-on front end for the estimation API: a hand-rolled,
//! **std-only** HTTP/1.1 server (`hpcarbon serve`) and the matching load
//! generator (`hpcarbon loadgen`). No async runtime, no HTTP crate — on
//! Linux a readiness-based epoll event loop (raw syscalls declared by
//! hand, same idiom as the `signal(2)` shim): one acceptor feeds N
//! event-loop shards, each owning a connection [`slab::Slab`], driving
//! the incremental [`http::RequestParser`] off non-blocking reads. Cache
//! hits are answered directly on the event loop with zero body copies
//! (`Arc`'d rendered responses); only uncached estimation is handed to
//! the retained worker pool, which signals completion back through an
//! `eventfd`. Elsewhere, a blocking thread-per-connection fallback with
//! identical observable behavior.
//!
//! ## Routes
//!
//! - `POST /v1/estimate` — a schema-versioned [`hpcarbon_api::EstimateRequest`]
//!   (one object or an array) in, a batch report array out. Responses are
//!   **byte-identical** to `hpcarbon estimate` for the same document.
//! - `GET /healthz` — liveness (`ok\n`).
//! - `GET /metrics` — request counts, latency histogram, cache hits in a
//!   plain-text format (glossary in the README).
//!
//! ## The canonical-request cache
//!
//! In front of the estimator sits a sharded LRU cache keyed by each
//! validated request's canonical bytes
//! ([`hpcarbon_api::request::ValidRequest::canonical_json`]). Estimation
//! is a pure function of the request and the providers, and the canonical
//! form is injective over request semantics — so a cache hit returns the
//! exact bytes the uncached path would have computed. Repeated scenario
//! queries skip simulation entirely; determinism is never traded away.
//! The contract is specified in `DESIGN.md` §9.
//!
//! ## Graceful shutdown
//!
//! `SIGTERM`/`SIGINT` (or a programmatic [`ShutdownHandle`]) stop the
//! accept loop; queued connections drain, in-flight requests complete and
//! their responses are written, then workers join and [`Server::run`]
//! returns a [`ServeSummary`] — the CI smoke job asserts exactly this
//! sequence.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
#[cfg(target_os = "linux")]
pub mod conn;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod http;
pub mod loadgen;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod server;
pub mod service;
pub mod signal;
pub mod slab;

pub use cache::ShardedLru;
pub use http::{HttpError, HttpRequest, HttpResponse};
pub use loadgen::{wait_healthz, LoadGenConfig, LoadSummary};
pub use metrics::Metrics;
pub use server::{ServeSummary, Server, ServerConfig, ShutdownHandle};
pub use service::EstimateService;
