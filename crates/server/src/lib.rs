//! # hpcarbon-server
//!
//! An always-on front end for the estimation API: a hand-rolled,
//! **std-only** HTTP/1.1 server (`hpcarbon serve`) and the matching load
//! generator (`hpcarbon loadgen`). No async runtime, no HTTP crate — a
//! [`std::net::TcpListener`], a fixed pool of worker threads, and the
//! same [`hpcarbon_api`] parser/emitter the CLI uses.
//!
//! ## Routes
//!
//! - `POST /v1/estimate` — a schema-versioned [`hpcarbon_api::EstimateRequest`]
//!   (one object or an array) in, a batch report array out. Responses are
//!   **byte-identical** to `hpcarbon estimate` for the same document.
//! - `GET /healthz` — liveness (`ok\n`).
//! - `GET /metrics` — request counts, latency histogram, cache hits in a
//!   plain-text format (glossary in the README).
//!
//! ## The canonical-request cache
//!
//! In front of the estimator sits a sharded LRU cache keyed by each
//! validated request's canonical bytes
//! ([`hpcarbon_api::request::ValidRequest::canonical_json`]). Estimation
//! is a pure function of the request and the providers, and the canonical
//! form is injective over request semantics — so a cache hit returns the
//! exact bytes the uncached path would have computed. Repeated scenario
//! queries skip simulation entirely; determinism is never traded away.
//! The contract is specified in `DESIGN.md` §9.
//!
//! ## Graceful shutdown
//!
//! `SIGTERM`/`SIGINT` (or a programmatic [`ShutdownHandle`]) stop the
//! accept loop; queued connections drain, in-flight requests complete and
//! their responses are written, then workers join and [`Server::run`]
//! returns a [`ServeSummary`] — the CI smoke job asserts exactly this
//! sequence.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;
pub mod service;
pub mod signal;

pub use cache::ShardedLru;
pub use http::{HttpError, HttpRequest, HttpResponse};
pub use loadgen::{wait_healthz, LoadGenConfig, LoadSummary};
pub use metrics::Metrics;
pub use server::{ServeSummary, Server, ServerConfig, ShutdownHandle};
pub use service::EstimateService;
