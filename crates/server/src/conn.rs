//! Per-connection state for the event-loop shards.
//!
//! A [`Conn`] is one slab slot: the nonblocking stream, the incremental
//! [`RequestParser`], the outgoing [`WriteBuf`], and the bookkeeping the
//! readiness state machine needs (in-flight flag, generation stamp, read
//! deadline). The event loop owns all transitions; this module only
//! holds the data and the one self-contained algorithm — partial-write
//! resume over a queue of owned or `Arc`-shared byte segments.
//!
//! The shared segments are the zero-copy half of the hot-response path:
//! a cache hit pushes the `Arc`'d rendered body straight into the write
//! queue, so a 100k-connection fan-out of the same popular response
//! shares one allocation.

use crate::http::RequestParser;
use crate::poll::Interest;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// One queued chunk of outgoing bytes.
#[derive(Debug)]
pub enum Segment {
    /// Bytes owned by this connection (response heads, error payloads,
    /// uncached bodies).
    Owned(Vec<u8>),
    /// Bytes shared with the hot-response cache; written without copying.
    Shared(Arc<Vec<u8>>),
}

impl Segment {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Shared(v) => v,
        }
    }
}

/// The outgoing byte queue with partial-write resume.
///
/// Responses are pushed as segments (head, body, head, body, …);
/// [`write_to`](WriteBuf::write_to) flushes as much as the socket
/// accepts and remembers the offset into the front segment, so a short
/// write resumes exactly where the kernel stopped — the mechanism behind
/// write-interest-driven flushing.
#[derive(Debug, Default)]
pub struct WriteBuf {
    segments: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    offset: usize,
}

impl WriteBuf {
    /// An empty queue.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues connection-owned bytes (empty chunks are dropped).
    pub fn push_owned(&mut self, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.segments.push_back(Segment::Owned(bytes));
        }
    }

    /// Queues cache-shared bytes without copying them.
    pub fn push_shared(&mut self, bytes: Arc<Vec<u8>>) {
        if !bytes.is_empty() {
            self.segments.push_back(Segment::Shared(bytes));
        }
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Bytes still waiting to go out.
    pub fn pending_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.as_bytes().len())
            .sum::<usize>()
            - self.offset
    }

    /// Writes as much as the sink accepts. Returns `Ok(true)` when the
    /// queue drained, `Ok(false)` when the sink would block (the caller
    /// arms write interest), and `Err` on transport failure.
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while let Some(front) = self.segments.front() {
            let chunk = &front.as_bytes()[self.offset..];
            match w.write(chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(n) if n == chunk.len() => {
                    self.segments.pop_front();
                    self.offset = 0;
                }
                Ok(n) => {
                    self.offset += n;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// One live connection on an event-loop shard.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking stream (kept for its fd and I/O calls; the slab
    /// index, not the fd, is the epoll token).
    pub stream: TcpStream,
    /// Incremental request parser fed by readiness-driven reads.
    pub parser: RequestParser,
    /// Outgoing bytes with partial-write resume.
    pub out: WriteBuf,
    /// Stamp checked against worker completions: a completion whose
    /// generation does not match the slot's current value belongs to a
    /// previous occupant and is dropped.
    pub generation: u64,
    /// A request is at the worker pool; reads are paused (one outstanding
    /// request per connection keeps pipelined responses ordered).
    pub busy: bool,
    /// The connection ends once the write queue drains (protocol errors,
    /// `Connection: close`, shutdown drain).
    pub close_after_flush: bool,
    /// The interest currently armed in epoll (tracked so the loop only
    /// issues `epoll_ctl` when the desired interest actually changes).
    pub armed: Interest,
    /// The last flush hit `EWOULDBLOCK`; write interest should be armed
    /// until the queue drains.
    pub write_blocked: bool,
    /// When the current write stall began (deadline bookkeeping for
    /// peers that stop reading mid-response). Cleared on any progress.
    pub write_blocked_since: Option<Instant>,
    /// Deadline for the bytes of the request in flight: armed at the
    /// first byte, cleared when the request completes. A slow-loris peer
    /// trips it and is dropped; idle keep-alive connections have none.
    pub read_deadline: Option<Instant>,
    /// The peer's write side is closed (EOF or `EPOLLRDHUP`): no more
    /// request bytes will ever arrive. A response still owed (busy at
    /// the workers, unflushed output) is delivered first; the slot is
    /// torn down once the write queue drains.
    pub read_closed: bool,
}

impl Conn {
    /// Wraps a freshly accepted stream (already set nonblocking).
    pub fn new(stream: TcpStream, max_body: usize, generation: u64) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(max_body),
            out: WriteBuf::new(),
            generation,
            busy: false,
            close_after_flush: false,
            armed: Interest::READ,
            write_blocked: false,
            write_blocked_since: None,
            read_deadline: None,
            read_closed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts at most `cap` bytes per write, then blocks.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_across_segments() {
        let mut buf = WriteBuf::new();
        buf.push_owned(b"HEAD".to_vec());
        buf.push_shared(Arc::new(b"shared-body".to_vec()));
        buf.push_owned(b"tail".to_vec());
        assert_eq!(buf.pending_bytes(), 19);

        // Drip 3 bytes at a time with a budget that stops mid-segment.
        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 3,
            budget: 7,
        };
        assert!(!buf.write_to(&mut sink).unwrap(), "blocked mid-way");
        assert_eq!(sink.accepted, b"HEADsha");
        assert_eq!(buf.pending_bytes(), 12);

        // More budget: the queue resumes at the exact offset and drains.
        sink.budget = usize::MAX;
        assert!(buf.write_to(&mut sink).unwrap());
        assert_eq!(sink.accepted, b"HEADshared-bodytail");
        assert!(buf.is_empty());
        assert_eq!(buf.pending_bytes(), 0);
    }

    #[test]
    fn shared_segments_do_not_copy() {
        let body = Arc::new(vec![7u8; 64]);
        let mut buf = WriteBuf::new();
        buf.push_shared(Arc::clone(&body));
        // The queue holds a refcount, not a copy.
        assert_eq!(Arc::strong_count(&body), 2);
        let mut sink = Vec::new();
        assert!(buf.write_to(&mut sink).unwrap());
        assert_eq!(sink.len(), 64);
        assert_eq!(Arc::strong_count(&body), 1, "dropped after the write");
    }

    #[test]
    fn empty_segments_are_dropped_and_zero_write_is_an_error() {
        let mut buf = WriteBuf::new();
        buf.push_owned(Vec::new());
        buf.push_shared(Arc::new(Vec::new()));
        assert!(buf.is_empty());

        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        buf.push_owned(b"x".to_vec());
        assert!(buf.write_to(&mut Zero).is_err());
    }
}
