//! A sharded LRU cache with O(1) lookup, insert, and eviction.
//!
//! The serving hot path is "many worker threads asking for the same few
//! canonical requests", so the cache is split into [`SHARDS`] independent
//! shards, each behind its own [`Mutex`] — threads hitting different
//! shards never contend. Within a shard, recency is an intrusive doubly
//! linked list threaded through a slab of entries (`prev`/`next` are slab
//! indices, not pointers — no `unsafe`), and a `HashMap` maps keys to
//! slab slots:
//!
//! - `get` promotes the entry to the front and clones the value out;
//! - `insert` evicts the back entry once the shard is full;
//! - capacity 0 disables the cache entirely (every `get` misses, every
//!   `insert` is a no-op) — the knob the uncached benchmark arm and
//!   `--cache 0` use.
//!
//! Values are cloned out rather than borrowed so no lock is held while
//! the caller works with them; the service stores `Arc`ed reports, making
//! the clone a refcount bump.

use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independent shards (a power of two; the key hash picks one).
pub const SHARDS: usize = 8;

const NIL: usize = usize::MAX;

/// FNV-1a over the key bytes; stable across runs (no `RandomState`), so
/// shard assignment — and therefore lock-contention behaviour — is
/// reproducible.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Slot<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

struct Shard<V> {
    map: HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize) -> Shard<V> {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// The sharded LRU cache. `V` is cloned out on hits; wrap large values in
/// an [`std::sync::Arc`].
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding up to `capacity` entries in total, split evenly
    /// across [`SHARDS`] shards (rounded up, so the effective total can
    /// slightly exceed `capacity`). Capacity 0 disables caching.
    pub fn new(capacity: usize) -> ShardedLru<V> {
        let per_shard = capacity.div_ceil(SHARDS);
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Shard::new(if capacity == 0 { 0 } else { per_shard })))
            .collect();
        ShardedLru { shards, capacity }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        &self.shards[(fnv1a(key) as usize) % SHARDS]
    }

    /// Looks a key up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        self.shard(key)
            .lock()
            // lint: allow(panic-in-library) -- poison propagation is deliberate: a shard's intrusive LRU list may be half-relinked when a peer panics, so reuse would serve corrupt entries
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Inserts (or refreshes) an entry, evicting the shard's
    /// least-recently-used entry when full. No-op at capacity 0.
    pub fn insert(&self, key: String, value: V) {
        self.shard(&key)
            .lock()
            // lint: allow(panic-in-library) -- poison propagation is deliberate, as in get(): a half-relinked LRU list must not be written into
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            // lint: allow(panic-in-library) -- poison propagation is deliberate, as in get()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-shard view for deterministic LRU-order assertions.
    fn shard(capacity: usize) -> Shard<u32> {
        Shard::new(capacity)
    }

    #[test]
    fn get_returns_inserted_values() {
        let cache: ShardedLru<u32> = ShardedLru::new(16);
        assert_eq!(cache.get("a"), None);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("b"), Some(2));
        assert_eq!(cache.len(), 2);
        // Re-insert refreshes the value in place.
        cache.insert("a".into(), 9);
        assert_eq!(cache.get("a"), Some(9));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut s = shard(2);
        s.insert("a".into(), 1);
        s.insert("b".into(), 2);
        // Touch "a" so "b" becomes the LRU entry…
        assert_eq!(s.get("a"), Some(1));
        s.insert("c".into(), 3);
        // …and only "b" is gone.
        assert_eq!(s.get("b"), None);
        assert_eq!(s.get("a"), Some(1));
        assert_eq!(s.get("c"), Some(3));
        assert_eq!(s.map.len(), 2);
    }

    #[test]
    fn capacity_one_keeps_exactly_the_newest() {
        let mut s = shard(1);
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            s.insert((*k).into(), i as u32);
        }
        assert_eq!(s.get("a"), None);
        assert_eq!(s.get("b"), None);
        assert_eq!(s.get("c"), Some(2));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache: ShardedLru<u32> = ShardedLru::new(0);
        cache.insert("a".into(), 1);
        assert_eq!(cache.get("a"), None);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut s = shard(2);
        for i in 0..100u32 {
            s.insert(format!("k{i}"), i);
        }
        // 100 inserts through a 2-entry shard must not grow the slab
        // beyond capacity (evicted slots are recycled).
        assert!(s.slots.len() <= 2, "slab grew to {}", s.slots.len());
        assert_eq!(s.get("k99"), Some(99));
        assert_eq!(s.get("k98"), Some(98));
        assert_eq!(s.get("k0"), None);
    }

    #[test]
    fn sharding_is_stable_and_spread() {
        // FNV-1a is fixed, so the same key always lands in the same
        // shard; distinct keys spread across more than one shard.
        let cache: ShardedLru<u32> = ShardedLru::new(SHARDS * 4);
        let mut hit_shards = std::collections::BTreeSet::new();
        for i in 0..64u32 {
            let key = format!("req-{i}");
            hit_shards.insert((fnv1a(&key) as usize) % SHARDS);
            cache.insert(key, i);
        }
        assert!(hit_shards.len() > 1, "all keys landed in one shard");
        // Every shard caps at capacity/SHARDS, so the total is bounded
        // even under a skewed key distribution.
        assert!(cache.len() <= cache.capacity());
        assert!(cache.len() >= SHARDS, "implausibly skewed distribution");
    }

    /// The naive reference: a `Vec` ordered most-recently-used first.
    /// Every operation is O(n) and obviously correct — the property tests
    /// below hold the intrusive-list shard to this model's behaviour.
    struct ModelLru {
        cap: usize,
        /// Front = most recently used.
        entries: Vec<(String, u32)>,
    }

    impl ModelLru {
        fn new(cap: usize) -> ModelLru {
            ModelLru {
                cap,
                entries: Vec::new(),
            }
        }

        fn get(&mut self, key: &str) -> Option<u32> {
            let pos = self.entries.iter().position(|(k, _)| k == key)?;
            let entry = self.entries.remove(pos);
            let value = entry.1;
            self.entries.insert(0, entry);
            Some(value)
        }

        fn insert(&mut self, key: String, value: u32) {
            if self.cap == 0 {
                return;
            }
            if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
                self.entries.remove(pos);
            } else if self.entries.len() == self.cap {
                self.entries.pop();
            }
            self.entries.insert(0, (key, value));
        }
    }

    /// The shard's recency list, MRU first, read off the intrusive links.
    fn recency_order(s: &Shard<u32>) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        let mut i = s.head;
        while i != NIL {
            out.push((s.slots[i].key.clone(), s.slots[i].value));
            i = s.slots[i].next;
        }
        out
    }

    mod model_props {
        use super::*;
        use proptest::collection;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(160))]

            // Random get/insert sequences over a small key space (so
            // hits, refreshes, and evictions all happen): after EVERY
            // operation the shard agrees with the naive model on hit/miss
            // verdicts, returned values, full recency order (which pins
            // the eviction order), and the capacity invariant.
            #[test]
            fn shard_matches_the_naive_lru_model(
                cap in 0usize..6,
                ops in collection::vec((0u8..2, 0usize..10, 0u32..1000), 1..120),
            ) {
                let mut real = Shard::new(cap);
                let mut model = ModelLru::new(cap);
                for (kind, k, v) in ops {
                    let key = format!("k{k}");
                    if kind == 0 {
                        prop_assert_eq!(real.get(&key), model.get(&key));
                    } else {
                        real.insert(key.clone(), v);
                        model.insert(key, v);
                    }
                    prop_assert!(real.map.len() <= cap, "over capacity");
                    prop_assert!(real.slots.len() <= cap, "slab grew past cap");
                    prop_assert_eq!(recency_order(&real), model.entries.clone());
                }
            }

            // The sharded front: routing by the stable key hash must make
            // the whole cache behave as SHARDS independent models.
            #[test]
            fn sharded_cache_matches_per_shard_models(
                cap in 0usize..20,
                ops in collection::vec((0u8..2, 0usize..24, 0u32..1000), 1..150),
            ) {
                let real: ShardedLru<u32> = ShardedLru::new(cap);
                let per = if cap == 0 { 0 } else { cap.div_ceil(SHARDS) };
                let mut models: Vec<ModelLru> =
                    (0..SHARDS).map(|_| ModelLru::new(per)).collect();
                for (kind, k, v) in ops {
                    let key = format!("k{k}");
                    let model = &mut models[(fnv1a(&key) as usize) % SHARDS];
                    if kind == 0 {
                        prop_assert_eq!(real.get(&key), model.get(&key));
                    } else {
                        real.insert(key.clone(), v);
                        model.insert(key, v);
                    }
                }
                let model_len: usize = models.iter().map(|m| m.entries.len()).sum();
                prop_assert_eq!(real.len(), model_len);
            }
        }
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        let cache = std::sync::Arc::new(ShardedLru::<u64>::new(64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = format!("k{}", i % 96);
                        cache.insert(key.clone(), t * 1000 + i);
                        let _ = cache.get(&key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64 + SHARDS, "len {} over cap", cache.len());
    }
}
