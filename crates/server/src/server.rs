//! The listener, the serving cores, and graceful shutdown.
//!
//! ## Architecture
//!
//! On Linux, [`Server::run`] boots the readiness-based epoll core in
//! [`crate::event_loop`]: the calling thread becomes the acceptor,
//! feeding `--shards` event-loop threads (nonblocking reads, incremental
//! parsing, zero-copy hot-cache answers) backed by a retained pool of
//! estimation workers. Elsewhere, a blocking thread-per-connection
//! fallback with the same observable behavior: one accept loop pushing
//! connections onto an [`std::sync::mpsc`] channel drained by the worker
//! pool.
//!
//! ## Shutdown
//!
//! [`ShutdownHandle::shutdown`] (wired to SIGTERM/SIGINT by `hpcarbon
//! serve`) flips one flag. The accept loop notices within one poll tick
//! and stops accepting; already-accepted connections drain — in-flight
//! requests complete and their responses are written announcing
//! `Connection: close` (so even a never-idle client releases its slot),
//! idle keep-alive connections close at the next tick — then all threads
//! join and [`Server::run`] returns a [`ServeSummary`]. A clean
//! `SIGTERM → exit 0` is observable end to end, which is exactly what
//! CI's smoke job asserts.

use crate::service::EstimateService;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[cfg(not(target_os = "linux"))]
use crate::http;
#[cfg(not(target_os = "linux"))]
use std::io::{BufReader, Write};
#[cfg(not(target_os = "linux"))]
use std::net::TcpStream;
#[cfg(not(target_os = "linux"))]
use std::sync::{mpsc, Mutex};

/// How often blocked loops re-check the shutdown flag.
#[cfg(not(target_os = "linux"))]
const POLL_TICK: Duration = Duration::from_millis(25);

/// Read timeout on idle keep-alive connections (also the worker's
/// shutdown-poll cadence while parked on a connection).
#[cfg(not(target_os = "linux"))]
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(150);

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Estimation worker threads.
    pub workers: usize,
    /// Event-loop shards (Linux epoll core only; the blocking fallback
    /// ignores this).
    pub shards: usize,
    /// Canonical-request cache capacity, entries (0 disables).
    pub cache_capacity: usize,
    /// Request-body limit, bytes.
    pub max_body_bytes: usize,
    /// How long a peer may take to deliver a request once its first byte
    /// arrived (and how long a write may stall with the peer accepting
    /// nothing). Slow-loris protection; tests shrink it.
    pub read_deadline: Duration,
}

impl Default for ServerConfig {
    /// Workers default to the available parallelism (capped at 16 — the
    /// estimator is CPU-bound, so more threads than cores just thrash),
    /// shards to the parallelism capped at 4 (the event loop is I/O
    /// bound; a few shards saturate the NIC long before the CPUs), a
    /// 1024-entry cache, the 1 MiB body limit, and the 10 s deadline.
    fn default() -> ServerConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServerConfig {
            workers: cores.min(16),
            shards: cores.min(4),
            cache_capacity: 1024,
            max_body_bytes: crate::service::DEFAULT_MAX_BODY_BYTES,
            read_deadline: crate::http::REQUEST_READ_DEADLINE,
        }
    }
}

/// Requests a running [`Server`] to stop; cloneable across threads.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// HTTP requests parsed.
    pub http_requests: u64,
    /// `POST /v1/estimate` calls.
    pub estimate_calls: u64,
    /// Batch rows answered from the cache.
    pub cache_hits: u64,
    /// Batch rows computed by the estimator.
    pub cache_misses: u64,
}

/// A bound, not-yet-running estimation server.
pub struct Server {
    listener: TcpListener,
    service: Arc<EstimateService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`, or port 0 for an ephemeral
    /// port) and prepares the service. Nothing is served until
    /// [`Server::run`].
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_with(addr, config, hpcarbon_api::Estimator::builder().build())
    }

    /// [`Server::bind`] with an explicit estimator — the `hpcarbon
    /// serve --catalog DIR` path plugs a catalog-backed embodied source
    /// in here. The estimator must be a pure function of each request
    /// (the provider contract), or response caching would be unsound.
    pub fn bind_with(
        addr: &str,
        config: ServerConfig,
        estimator: hpcarbon_api::Estimator,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let service = EstimateService::new(estimator, config.cache_capacity)
            .with_max_body_bytes(config.max_body_bytes);
        Ok(Server {
            listener,
            service: Arc::new(service),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// The shared service (metrics and cache introspection for tests and
    /// the CLI's post-shutdown summary).
    pub fn service(&self) -> Arc<EstimateService> {
        Arc::clone(&self.service)
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// lifetime summary. Blocks the calling thread.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        #[cfg(target_os = "linux")]
        crate::event_loop::run(
            self.listener,
            Arc::clone(&self.service),
            Arc::clone(&self.shutdown),
            crate::event_loop::LoopConfig {
                shards: self.config.shards.max(1),
                workers: self.config.workers.max(1),
                max_body: self.config.max_body_bytes,
                deadline: self.config.read_deadline,
            },
        )?;
        #[cfg(not(target_os = "linux"))]
        self.run_threaded()?;

        let m = self.service.metrics();
        let g = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        Ok(ServeSummary {
            http_requests: g(&m.http_requests),
            estimate_calls: g(&m.estimate_calls),
            cache_hits: g(&m.cache_hits),
            cache_misses: g(&m.cache_misses),
        })
    }

    /// The blocking fallback: accept loop + thread-per-connection worker
    /// pool. Observably equivalent to the event loop (same service, same
    /// drain semantics), minus per-shard metrics.
    #[cfg(not(target_os = "linux"))]
    fn run_threaded(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&self.service);
                let shutdown = Arc::clone(&self.shutdown);
                std::thread::spawn(move || worker_loop(&rx, &service, &shutdown))
            })
            .collect();

        while !self.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // A send can only fail if every worker died; treat it
                    // as shutdown rather than panicking the acceptor.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (EMFILE under load spikes)
                    // must not kill the server; back off and keep going.
                    eprintln!("accept error: {e}");
                    std::thread::sleep(POLL_TICK);
                }
            }
        }

        // Drain: no new connections; queued ones are still delivered to
        // workers (mpsc buffers survive the sender drop), in-flight
        // requests complete.
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
fn worker_loop(
    rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    service: &Arc<EstimateService>,
    shutdown: &Arc<AtomicBool>,
) {
    loop {
        // Hold the lock only for the pop, never while serving.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match next {
            Ok(stream) => serve_connection(stream, service, shutdown),
            // Sender dropped and queue drained: shutdown complete.
            Err(_) => return,
        }
    }
}

/// Serves one connection to completion: a keep-alive loop over
/// (possibly pipelined) requests. On shutdown the current request still
/// completes — drain semantics — and the connection closes at the next
/// idle tick.
#[cfg(not(target_os = "linux"))]
fn serve_connection(stream: TcpStream, service: &EstimateService, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request_replying(&mut reader, service.max_body_bytes(), &mut writer) {
            Ok(req) => {
                let resp = service.handle(&req);
                // Drain means "finish the request in flight", not "keep
                // serving this connection": once shutdown is requested
                // the response itself announces the close, so even a
                // client streaming back-to-back requests (never idle)
                // cannot keep a worker alive past its current request.
                let keep = req.keep_alive && !resp.close && !shutdown.load(Ordering::Relaxed);
                if http::write_response(&mut writer, &resp, keep).is_err() || !keep {
                    return;
                }
            }
            Err(http::HttpError::Idle) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(err) => {
                if let Some(resp) = service.handle_protocol_error(&err) {
                    let _ = http::write_response(&mut writer, &resp, false);
                    let _ = writer.flush();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn start(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServeSummary>,
    ) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn healthz_roundtrips_over_a_real_socket() {
        let (addr, handle, join) = start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let resp = roundtrip(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.ends_with("ok\n"), "{resp}");
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.http_requests, 1);
    }

    #[test]
    fn shutdown_with_no_traffic_exits_promptly() {
        let (_addr, handle, join) = start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.http_requests, 0);
        assert!(handle.is_shutdown());
    }

    #[test]
    fn busy_keep_alive_connections_close_at_shutdown() {
        // A client hammering one keep-alive connection is never idle, so
        // the drain must happen on the response path: after shutdown the
        // in-flight request completes, the response announces the close,
        // and the worker lets go — the server cannot hang on a busy peer.
        let (addr, handle, join) = start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
            let mut served = 0u32;
            loop {
                if s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").is_err() {
                    return served;
                }
                match crate::loadgen::read_response(&mut reader) {
                    Ok((200, _)) => served += 1,
                    _ => return served,
                }
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
        let served = client.join().unwrap();
        assert!(served >= 1, "the connection served before shutdown");
        // The worker released the busy connection; a hang here is the bug.
        let summary = join.join().unwrap();
        assert!(summary.http_requests >= u64::from(served));
    }

    #[test]
    fn queued_connections_drain_after_shutdown() {
        // One worker; park a connection, queue a second, then shut down:
        // the queued request must still be answered (drain contract).
        let (addr, handle, join) = start(ServerConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        // Give the worker time to claim the first connection.
        std::thread::sleep(Duration::from_millis(100));
        let mut second = TcpStream::connect(addr).unwrap();
        second
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
        // The first (keep-alive) connection closes at its idle tick…
        drop(first);
        // …and the queued second connection is still served.
        let mut out = String::new();
        second.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        let summary = join.join().unwrap();
        assert_eq!(summary.http_requests, 2);
    }
}
