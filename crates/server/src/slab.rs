//! A minimal slot map for per-shard connection state.
//!
//! Every live connection on an event-loop shard occupies one slot; the
//! slot index doubles as the connection's epoll token, so readiness
//! events map back to state in O(1) with no hashing. Freed slots are
//! recycled LIFO (the hot path under connection churn), which is exactly
//! why tokens alone are not identity: a worker may still hold the token
//! of a connection that died and whose slot was reused. The event loop
//! pairs every token with a per-shard generation counter and discards
//! stale completions; the slab itself stays oblivious.

/// A vector-backed slot map with LIFO slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts a value, returning its slot index (stable until removal).
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Borrows the value at `index`, if occupied.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(Option::as_ref)
    }

    /// Mutably borrows the value at `index`, if occupied.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.slots.get_mut(index).and_then(Option::as_mut)
    }

    /// Removes and returns the value at `index`; the slot becomes
    /// reusable. Removing a vacant slot is a no-op returning `None`.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        let value = self.slots.get_mut(index)?.take()?;
        self.free.push(index);
        self.len -= 1;
        Some(value)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(index, &mut value)` for every occupied slot (the
    /// deadline sweep).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (i, v)))
    }

    /// Indices of every occupied slot, collected (for sweeps that need
    /// to remove entries while iterating).
    pub fn occupied(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        *slab.get_mut(b).unwrap() = "B";
        assert_eq!(slab.remove(b), Some("B"));
        assert_eq!(slab.get(b), None);
        assert_eq!(slab.remove(b), None, "double remove is a no-op");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        slab.remove(b);
        // LIFO: the most recently freed slot comes back first, and the
        // backing vector does not grow.
        assert_eq!(slab.insert(3), b);
        assert_eq!(slab.insert(4), a);
        assert_eq!(slab.slots.len(), 2);
    }

    #[test]
    fn iteration_skips_vacant_slots() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        slab.remove(b);
        let seen: Vec<(usize, i32)> = slab.iter_mut().map(|(i, v)| (i, *v)).collect();
        assert_eq!(seen, vec![(a, 10), (c, 30)]);
        assert_eq!(slab.occupied(), vec![a, c]);
        assert!(!slab.is_empty());
    }
}
