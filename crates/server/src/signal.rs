//! SIGTERM/SIGINT → one atomic flag, with no signal-handling crate.
//!
//! The vendored dependency set has no `libc`/`signal-hook`, but std links
//! the platform C library anyway, so the Unix implementation declares
//! `signal(2)` itself and installs a handler that does the only
//! async-signal-safe thing worth doing: store `true` into a static
//! [`AtomicBool`]. Every blocking loop in this crate polls rather than
//! parks indefinitely, so no `EINTR` choreography is needed — the serve
//! loop notices the flag within one poll tick and starts its graceful
//! drain.
//!
//! On non-Unix targets installation is a no-op and the flag can only be
//! raised programmatically ([`request_termination`], also what tests
//! use).

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from the C library std already links. The return
        // value (the previous handler) is deliberately ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn mark_terminated(_signum: i32) {
        // A relaxed store is async-signal-safe; the consumers poll.
        TERMINATE.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is only handed a static handler that performs
        // one atomic store — async-signal-safe by construction.
        unsafe {
            signal(SIGTERM, mark_terminated);
            signal(SIGINT, mark_terminated);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent; no-op off Unix).
pub fn install_handlers() {
    imp::install();
}

/// True once SIGTERM/SIGINT was delivered (or termination was requested
/// programmatically).
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Raises the termination flag without a signal — the programmatic
/// equivalent used by tests and embedders.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::Relaxed);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[allow(unsafe_code)]
    fn raise_sigterm() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raising a signal whose handler is installed above and
        // only stores an atomic flag.
        unsafe {
            raise(15);
        }
    }

    #[test]
    fn a_real_sigterm_sets_the_flag() {
        install_handlers();
        raise_sigterm();
        assert!(termination_requested());
    }
}
