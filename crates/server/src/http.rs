//! A minimal HTTP/1.1 reader/writer, in blocking and incremental form.
//!
//! The offline dependency set has no HTTP crate, so the server speaks the
//! protocol through this module. Two front ends share one head-parsing
//! core (`parse_request_line`/`HeadFields` — single source of truth,
//! so their verdicts can never diverge):
//!
//! - [`read_request`]/[`read_request_replying`]: the blocking reader over
//!   any [`BufRead`] (testable on in-memory cursors), used by the
//!   load-generator clients and the non-Linux fallback server;
//! - [`RequestParser`]: the **incremental** push parser the epoll event
//!   loop drives. Bytes arrive in whatever fragments the kernel delivers
//!   ([`RequestParser::feed`]); [`RequestParser::poll`] yields a request
//!   exactly when one is complete. Its output is byte-identical to
//!   one-shot parsing **at every possible chunk boundary** — the
//!   property test battery in `tests/prop_parser.rs` holds the two front
//!   ends equal over arbitrary chunkings and pipelined interleavings.
//!
//! Scope is deliberately narrow — the two methods the routes need,
//! `Content-Length` bodies only — but the narrow slice is implemented
//! carefully:
//!
//! - **keep-alive and pipelining** fall out of stateful parsing:
//!   back-to-back requests on one connection are consumed one at a time,
//!   responses written in order;
//! - **limits are typed**: an oversized body is [`HttpError::BodyTooLarge`]
//!   (→ 413), an oversized header block [`HttpError::HeadersTooLarge`]
//!   (→ 431), a protocol violation [`HttpError::Malformed`] (→ 400) — the
//!   service maps each to its status code;
//! - **idle is not an error**: for the blocking reader a timeout before
//!   the first byte of a request is [`HttpError::Idle`]; the event loop
//!   gets the same signal from [`RequestParser::is_mid_request`] plus its
//!   own deadline bookkeeping.

use std::io::{BufRead, ErrorKind, Write};
use std::time::{Duration, Instant};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Once a request's first byte has arrived, the peer gets this long to
/// deliver the rest. Socket read timeouts are short (they double as the
/// shutdown-poll tick), so mid-request timeouts *retry* until this
/// deadline — a slow writer, or a client like curl waiting out its
/// `Expect: 100-continue` grace period, is not a stalled peer.
pub const REQUEST_READ_DEADLINE: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercase as received (`GET`, `POST`).
    pub method: String,
    /// Request target, e.g. `/v1/estimate`.
    pub target: String,
    /// Decoded body (empty when the request carries none).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

/// One response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Forces `Connection: close` regardless of the request's preference
    /// (set on errors after which the stream position is unreliable).
    pub close: bool,
}

impl HttpResponse {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type,
            body: body.into(),
            close: false,
        }
    }

    /// A JSON response with an explicit status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
        }
    }
}

/// Why a request could not be read off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests — the
    /// normal end of a keep-alive session, not a failure.
    Closed,
    /// A read timed out before the first byte of a request: the
    /// connection is idle. The worker polls the shutdown flag and retries.
    Idle,
    /// The bytes violate the protocol (bad request line, bad
    /// `Content-Length`, an unsupported transfer coding, …) → 400.
    Malformed(String),
    /// The declared body exceeds the configured limit → 413.
    BodyTooLarge {
        /// The limit the body exceeded, bytes.
        limit: usize,
    },
    /// The request line + headers exceed [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// The transport failed mid-request (peer reset, stall, …); the
    /// connection is unusable and is dropped without a response.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "connection idle"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            HttpError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn is_timeout(kind: ErrorKind) -> bool {
    // Unix read timeouts surface as WouldBlock, Windows as TimedOut.
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one line (up to `\n`, with an optional `\r` stripped), bounding
/// the running header total. `budget` is decremented by the bytes
/// consumed; timeouts retry until `deadline`.
fn read_line(
    r: &mut impl BufRead,
    budget: &mut usize,
    deadline: Instant,
) -> Result<Vec<u8>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => {
                if Instant::now() >= deadline {
                    return Err(HttpError::Io("peer stalled mid-request".into()));
                }
                continue;
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        };
        if buf.is_empty() {
            return Err(HttpError::Io("connection closed mid-request".into()));
        }
        let (consumed, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                (pos + 1, true)
            }
            None => {
                line.extend_from_slice(buf);
                (buf.len(), false)
            }
        };
        r.consume(consumed);
        *budget = budget.saturating_sub(consumed);
        if *budget == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(line);
        }
        // Progress does not reset the clock: a slow-drip peer that stays
        // just under the socket timeout must still hit the deadline, or
        // it could pin a worker indefinitely.
        if Instant::now() >= deadline {
            return Err(HttpError::Io("peer stalled mid-request".into()));
        }
    }
}

/// Parses `METHOD TARGET HTTP/1.x` into `(method, target,
/// keep_alive_default)`. Shared by the blocking reader and the
/// incremental parser so both emit identical verdicts and messages.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {line:?} (expected \"METHOD TARGET HTTP/1.x\")"
            )))
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };
    Ok((method, target, keep_alive_default))
}

/// The header fields this server interprets, folded line by line.
/// Shared by both parser front ends.
#[derive(Debug, Clone)]
struct HeadFields {
    keep_alive: bool,
    content_length: Option<usize>,
    expect_continue: bool,
}

impl HeadFields {
    fn new(keep_alive_default: bool) -> HeadFields {
        HeadFields {
            keep_alive: keep_alive_default,
            content_length: None,
            expect_continue: false,
        }
    }

    fn apply(&mut self, line: &str) -> Result<(), HttpError> {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header line {line:?} has no colon"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
                if self.content_length.replace(n).is_some() {
                    return Err(HttpError::Malformed("duplicate content-length".into()));
                }
            }
            "transfer-encoding" => {
                // Chunked bodies are out of scope; reject rather than
                // silently misframe the stream.
                return Err(HttpError::Malformed(
                    "transfer-encoding is not supported (use content-length)".into(),
                ));
            }
            "connection" => {
                let tokens: Vec<String> = value
                    .split(',')
                    .map(|t| t.trim().to_ascii_lowercase())
                    .collect();
                if tokens.iter().any(|t| t == "close") {
                    self.keep_alive = false;
                } else if tokens.iter().any(|t| t == "keep-alive") {
                    self.keep_alive = true;
                }
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => {
                self.expect_continue = true;
            }
            _ => {}
        }
        Ok(())
    }
}

/// Reads and parses one request off the stream.
///
/// Returns [`HttpError::Idle`] when the read times out before the first
/// byte (keep-alive connection with nothing pending) and
/// [`HttpError::Closed`] on a clean EOF between requests; all other
/// variants are real failures. Pipelined requests are supported by
/// construction: this consumes exactly one request's bytes, leaving the
/// next request buffered.
///
/// Clients that announce `Expect: 100-continue` (curl does for any
/// non-trivial POST body) are ignored here — the body is read on the
/// normal deadline. To answer the interim `100 Continue` and unblock
/// such clients immediately, use [`read_request_replying`].
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<HttpRequest, HttpError> {
    read_request_replying(r, max_body, &mut std::io::sink())
}

/// [`read_request`] with a write-back channel for interim responses:
/// when the client sent `Expect: 100-continue` and the declared body is
/// acceptable, `HTTP/1.1 100 Continue` is written to `interim` before
/// the body is read (an oversized declaration skips the interim and
/// fails straight to 413). The server's connection loop passes the
/// response stream here.
pub fn read_request_replying(
    r: &mut impl BufRead,
    max_body: usize,
    interim: &mut impl Write,
) -> Result<HttpRequest, HttpError> {
    // Distinguish idle/closed *before* committing to a request.
    loop {
        match r.fill_buf() {
            Ok([]) => return Err(HttpError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => return Err(HttpError::Idle),
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }

    let deadline = Instant::now() + REQUEST_READ_DEADLINE;
    let mut budget = MAX_HEADER_BYTES;
    let line = read_line(r, &mut budget, deadline)?;
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let (method, target, keep_alive_default) = parse_request_line(&line)?;

    let mut fields = HeadFields::new(keep_alive_default);
    loop {
        let line = read_line(r, &mut budget, deadline)?;
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::Malformed("header line is not UTF-8".into()))?;
        fields.apply(&line)?;
    }
    let HeadFields {
        keep_alive,
        content_length,
        expect_continue,
    } = fields;

    let len = content_length.unwrap_or(0);
    if len > max_body {
        // No interim response: the final answer is the 413.
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    if expect_continue && len > 0 {
        // Unblock Expect-aware clients (curl waits up to 1 s otherwise).
        interim
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| interim.flush())
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Io("connection closed mid-body".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        // Checked on every pass (not just timeouts) so a slow-drip body
        // cannot outlive the deadline by trickling bytes.
        if filled < len && Instant::now() >= deadline {
            return Err(HttpError::Io("peer stalled mid-body".into()));
        }
    }

    Ok(HttpRequest {
        method,
        target,
        body,
        keep_alive,
    })
}

/// Where the incremental parser is inside the current request.
#[derive(Debug)]
enum ParseState {
    /// Waiting for (or mid-way through) the request line.
    Line,
    /// Request line parsed; folding header lines into `fields`.
    Headers {
        method: String,
        target: String,
        fields: HeadFields,
    },
    /// Head complete; accumulating `needed` body bytes.
    Body {
        method: String,
        target: String,
        keep_alive: bool,
        body: Vec<u8>,
        needed: usize,
    },
}

/// The incremental (push) HTTP parser driven by the epoll event loop.
///
/// Bytes arrive in arbitrary fragments via [`feed`](RequestParser::feed);
/// [`poll`](RequestParser::poll) consumes as much as possible and yields
/// a request exactly when one is complete. The state machine processes
/// header lines **eagerly, in arrival order** — exactly like the blocking
/// reader consumes the stream — so error verdicts and their precedence
/// (e.g. [`HttpError::HeadersTooLarge`] before a malformed-line 400 when
/// the budget runs out first) are identical at every chunk boundary. The
/// property battery in `tests/prop_parser.rs` pins this equivalence.
///
/// The header budget is chunk-independent: the parser fails with
/// [`HttpError::HeadersTooLarge`] exactly when the cumulative head bytes
/// (request line, headers, terminator, line endings included) reach
/// [`MAX_HEADER_BYTES`] — whether those bytes arrived in one fragment or
/// one-by-one.
///
/// After an error the parser is poisoned: every later `poll` returns the
/// same error. The event loop responds with the mapped status and closes,
/// so no bytes are ever parsed past a protocol failure.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
    /// Head bytes consumed for the *current* request (budget bookkeeping).
    header_bytes: usize,
    state: ParseState,
    max_body: usize,
    /// Armed when a head with `Expect: 100-continue` and an acceptable
    /// body completes; drained by [`take_interim`](Self::take_interim).
    interim: bool,
    failed: Option<HttpError>,
}

impl RequestParser {
    /// A parser enforcing the given body limit (the header limit is the
    /// module-wide [`MAX_HEADER_BYTES`]).
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            header_bytes: 0,
            state: ParseState::Line,
            max_body,
            interim: false,
            failed: None,
        }
    }

    /// Appends bytes received from the peer. Consumed prefix is compacted
    /// away first, so the buffer never grows past one in-flight request
    /// plus whatever the peer pipelined ahead.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The one-shot `100 Continue` interim response, if the most recently
    /// completed head requested it. The caller writes these bytes before
    /// the final response (mirroring [`read_request_replying`]).
    pub fn take_interim(&mut self) -> Option<&'static [u8]> {
        if self.interim {
            self.interim = false;
            Some(b"HTTP/1.1 100 Continue\r\n\r\n")
        } else {
            None
        }
    }

    /// True when the parser has committed to a request (some head or body
    /// bytes consumed) or holds unconsumed buffered bytes. The event loop
    /// uses this to tell an *idle* keep-alive connection (safe to close
    /// on shutdown, no deadline) from a peer mid-request (read deadline
    /// applies).
    pub fn is_mid_request(&self) -> bool {
        !matches!(self.state, ParseState::Line) || self.start < self.buf.len()
    }

    /// Extracts the next complete line, maintaining the header budget
    /// exactly like the blocking reader: the budget is charged for every
    /// consumed byte (newline included) *and* for buffered partial-line
    /// bytes, and the check precedes returning a completed line.
    fn take_line(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        let pending = &self.buf[self.start..];
        match pending.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let mut line = pending[..pos].to_vec();
                self.start += pos + 1;
                self.header_bytes += pos + 1;
                if self.header_bytes >= MAX_HEADER_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
            None => {
                if self.header_bytes + pending.len() >= MAX_HEADER_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
                Ok(None)
            }
        }
    }

    /// Advances the state machine as far as the buffered bytes allow.
    ///
    /// Returns `Ok(Some(_))` when a request completed, `Ok(None)` when
    /// more bytes are needed, and a (sticky) error on protocol failure.
    pub fn poll(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.poll_inner() {
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
            ok => ok,
        }
    }

    fn poll_inner(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        loop {
            match &mut self.state {
                ParseState::Line => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    let line = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
                    let (method, target, keep_alive_default) = parse_request_line(&line)?;
                    self.state = ParseState::Headers {
                        method,
                        target,
                        fields: HeadFields::new(keep_alive_default),
                    };
                }
                ParseState::Headers { .. } => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if !line.is_empty() {
                        let line = String::from_utf8(line)
                            .map_err(|_| HttpError::Malformed("header line is not UTF-8".into()))?;
                        let ParseState::Headers { fields, .. } = &mut self.state else {
                            unreachable!("matched Headers above");
                        };
                        fields.apply(&line)?;
                        continue;
                    }
                    // Blank line: the head is complete.
                    let ParseState::Headers {
                        method,
                        target,
                        fields,
                    } = std::mem::replace(&mut self.state, ParseState::Line)
                    else {
                        unreachable!("matched Headers above");
                    };
                    let needed = fields.content_length.unwrap_or(0);
                    if needed > self.max_body {
                        // No interim response: the final answer is the 413.
                        return Err(HttpError::BodyTooLarge {
                            limit: self.max_body,
                        });
                    }
                    if fields.expect_continue && needed > 0 {
                        self.interim = true;
                    }
                    self.state = ParseState::Body {
                        method,
                        target,
                        keep_alive: fields.keep_alive,
                        body: Vec::with_capacity(needed),
                        needed,
                    };
                }
                ParseState::Body { .. } => {
                    // Disjoint borrows: the buffer is read while the state
                    // is mutated.
                    let RequestParser {
                        buf, start, state, ..
                    } = self;
                    let ParseState::Body {
                        method,
                        target,
                        keep_alive,
                        body,
                        needed,
                    } = state
                    else {
                        unreachable!("matched Body above");
                    };
                    let pending = &buf[*start..];
                    let take = (*needed - body.len()).min(pending.len());
                    body.extend_from_slice(&pending[..take]);
                    *start += take;
                    if body.len() < *needed {
                        return Ok(None);
                    }
                    let request = HttpRequest {
                        method: std::mem::take(method),
                        target: std::mem::take(target),
                        body: std::mem::take(body),
                        keep_alive: *keep_alive,
                    };
                    self.state = ParseState::Line;
                    self.header_bytes = 0;
                    return Ok(Some(request));
                }
            }
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Renders a response head (status line, headers, blank line) exactly as
/// [`write_response`] emits it. `keep_alive` is the connection's fate
/// *after* this response — the caller has already folded in the
/// response's `close` flag. The event loop writes this head followed by
/// a shared (`Arc`'d) body so cache hits copy nothing.
pub fn response_head(
    status: u16,
    content_type: &str,
    body_len: usize,
    keep_alive: bool,
) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body_len,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Writes one response. `keep_alive` reflects the connection's fate after
/// this response (the `Connection` header tells the client).
pub fn write_response(
    w: &mut impl Write,
    resp: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = response_head(
        resp.status,
        resp.content_type,
        resp.body.len(),
        keep_alive && !resp.close,
    );
    w.write_all(&head)?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req = parse("POST /v1/estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        // Two requests written back-to-back: each read consumes exactly
        // one, leaving the second buffered for the next call.
        let raw = "POST /v1/estimate HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}\
                   GET /metrics HTTP/1.1\r\n\r\n";
        let mut r = Cursor::new(raw.as_bytes().to_vec());
        let first = read_request(&mut r, 1024).unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"{}");
        let second = read_request(&mut r, 1024).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.target, "/metrics");
        assert_eq!(read_request(&mut r, 1024).unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn oversized_body_is_a_typed_413() {
        let err = parse("POST /v1/estimate HTTP/1.1\r\ncontent-length: 2048\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge { limit: 1024 });
    }

    #[test]
    fn oversized_headers_are_a_typed_431() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn malformed_inputs_are_typed_400s() {
        for raw in [
            "NONSENSE\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: seven\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1\r\n\r\nx",
            "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "{raw:?} must be malformed"
            );
        }
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        // curl sends `Expect: 100-continue` for non-trivial POST bodies
        // and waits for the interim response before sending the body;
        // the reader must answer it before reading on.
        let raw =
            "POST /v1/estimate HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        let req = read_request_replying(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            1024,
            &mut interim,
        )
        .unwrap();
        assert_eq!(req.body, b"{}");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        // Without the header no interim is written…
        let raw = "POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        read_request_replying(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            1024,
            &mut interim,
        )
        .unwrap();
        assert!(interim.is_empty());
        // …and an oversized declaration fails straight to 413, no 100.
        let raw = "POST / HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 9999\r\n\r\n";
        let mut interim = Vec::new();
        let err = read_request_replying(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            1024,
            &mut interim,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge { limit: 1024 });
        assert!(interim.is_empty());
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse("POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)), "{err:?}");
    }

    #[test]
    fn clean_eof_between_requests_is_closed() {
        assert_eq!(parse("").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse("GET /healthz HTTP/1.1\nhost: x\n\n").unwrap();
        assert_eq!(req.target, "/healthz");
    }

    /// One-shot reference: parse as many requests as the bytes hold,
    /// stopping at the first error (or clean end of input).
    fn oneshot_all(raw: &[u8], max_body: usize) -> (Vec<HttpRequest>, Option<HttpError>) {
        let mut r = Cursor::new(raw.to_vec());
        let mut out = Vec::new();
        loop {
            match read_request(&mut r, max_body) {
                Ok(req) => out.push(req),
                Err(HttpError::Closed) => return (out, None),
                // A truncated tail (EOF mid-request) ends the stream for
                // the blocking reader; the incremental parser just waits
                // for more bytes, so the comparison treats it as "no
                // verdict yet".
                Err(HttpError::Io(_)) => return (out, None),
                Err(e) => return (out, Some(e)),
            }
        }
    }

    /// Incremental counterpart: feed the same bytes split into the given
    /// chunks, polling after each feed.
    fn incremental_all(chunks: &[&[u8]], max_body: usize) -> (Vec<HttpRequest>, Option<HttpError>) {
        let mut parser = RequestParser::new(max_body);
        let mut out = Vec::new();
        for chunk in chunks {
            parser.feed(chunk);
            loop {
                match parser.poll() {
                    Ok(Some(req)) => out.push(req),
                    Ok(None) => break,
                    Err(e) => return (out, Some(e)),
                }
            }
        }
        (out, None)
    }

    #[test]
    fn incremental_parser_matches_oneshot_at_every_split_boundary() {
        // The load-bearing determinism check for non-blocking reads: for
        // each input — valid, pipelined, and each typed-error shape —
        // split the byte stream at EVERY position and require the
        // incremental parser to produce exactly the one-shot verdict.
        let big = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        let inputs: Vec<&[u8]> = vec![
            b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n",
            b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"",
            b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}GET /metrics HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n",
            b"NONSENSE\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: seven\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: 2048\r\n\r\nxx",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET /healthz HTTP/1.1\nhost: x\n\n",
            big.as_bytes(),
        ];
        for raw in inputs {
            let expected = oneshot_all(raw, 1024);
            for split in 0..=raw.len() {
                let got = incremental_all(&[&raw[..split], &raw[split..]], 1024);
                assert_eq!(
                    got,
                    expected,
                    "split at {split} diverged for {:?}",
                    String::from_utf8_lossy(raw)
                );
            }
            // Worst case: one byte at a time.
            let chunks: Vec<&[u8]> = raw.chunks(1).collect();
            assert_eq!(incremental_all(&chunks, 1024), expected);
        }
    }

    #[test]
    fn incremental_parser_reports_interim_and_midrequest_state() {
        let mut p = RequestParser::new(1024);
        assert!(!p.is_mid_request(), "fresh parser is idle");
        p.feed(b"POST / HTTP/1.1\r\nexpect: 100-continue\r\ncontent-le");
        assert_eq!(p.poll().unwrap(), None);
        assert!(p.is_mid_request());
        assert_eq!(p.take_interim(), None, "head not complete yet");
        p.feed(b"ngth: 2\r\n\r\n");
        assert_eq!(p.poll().unwrap(), None, "waiting on the body");
        assert_eq!(
            p.take_interim(),
            Some(b"HTTP/1.1 100 Continue\r\n\r\n".as_slice()),
            "interim armed as soon as the head completes"
        );
        assert_eq!(p.take_interim(), None, "interim is one-shot");
        p.feed(b"{}");
        let req = p.poll().unwrap().unwrap();
        assert_eq!(req.body, b"{}");
        assert!(!p.is_mid_request(), "back to idle between requests");
    }

    #[test]
    fn incremental_parser_errors_are_sticky() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/2.0\r\n\r\n");
        let first = p.poll().unwrap_err();
        assert!(matches!(first, HttpError::Malformed(_)));
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap_err(), first, "poisoned after failure");
    }

    #[test]
    fn incremental_parser_header_budget_is_chunk_independent() {
        // A head one byte under the limit parses; at the limit it fails —
        // regardless of how the bytes are chunked, and with the budget
        // verdict taking precedence over later parse errors, exactly like
        // the blocking reader's running-budget check.
        let head = "GET / HTTP/1.1\r\n";
        let fill = MAX_HEADER_BYTES - head.len() - "x-pad: \r\n".len() - 2 /* terminator */;
        let ok = format!("{head}x-pad: {}\r\n\r\n", "y".repeat(fill - 1));
        let over = format!("{head}x-pad: {}\r\n\r\n", "y".repeat(fill));
        assert_eq!(oneshot_all(ok.as_bytes(), 64).1, None);
        assert_eq!(
            oneshot_all(over.as_bytes(), 64).1,
            Some(HttpError::HeadersTooLarge)
        );
        for chunk_len in [1, 7, 4096, over.len()] {
            let chunks: Vec<&[u8]> = ok.as_bytes().chunks(chunk_len).collect();
            assert_eq!(incremental_all(&chunks, 64).1, None, "chunk={chunk_len}");
            let chunks: Vec<&[u8]> = over.as_bytes().chunks(chunk_len).collect();
            assert_eq!(
                incremental_all(&chunks, 64).1,
                Some(HttpError::HeadersTooLarge),
                "chunk={chunk_len}"
            );
        }
    }

    #[test]
    fn response_head_matches_write_response() {
        let resp = HttpResponse::ok("application/json", "{\"ok\":true}");
        let mut via_write = Vec::new();
        write_response(&mut via_write, &resp, true).unwrap();
        let mut via_head = response_head(resp.status, resp.content_type, resp.body.len(), true);
        via_head.extend_from_slice(&resp.body);
        assert_eq!(via_write, via_head);
    }

    #[test]
    fn responses_carry_length_and_connection_fate() {
        let mut out = Vec::new();
        write_response(&mut out, &HttpResponse::ok("text/plain", "ok\n"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        let mut resp = HttpResponse::json(400, "{}");
        resp.close = true;
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
    }
}
