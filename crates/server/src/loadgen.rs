//! The std-`TcpStream` load generator behind `hpcarbon loadgen`.
//!
//! Fires a fixed list of request bodies at a running server from a pool
//! of concurrent client threads (one persistent keep-alive connection
//! each; requests are claimed from a shared atomic cursor, so the total
//! count is exact regardless of per-thread pacing) and reports
//! throughput and latency percentiles. It doubles as CI's smoke client:
//! [`wait_healthz`] polls readiness after boot, the first response body
//! can be captured for a golden diff, and any non-2xx or transport error
//! is counted and turned into a nonzero exit by the CLI.
//!
//! The workload itself comes from the caller — typically
//! `ScenarioGrid::sample_requests` under a fixed seed, which makes a load
//! run reproducible request-for-request.

use crate::http::HttpError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Request bodies; request `i` of a run sends
    /// `bodies[i % bodies.len()]`, so runs are reproducible and a
    /// single-document workload needs exactly one entry, however large
    /// `requests` is.
    pub bodies: Vec<String>,
    /// Total requests to fire (cycling over `bodies`).
    pub requests: usize,
    /// Extra connect attempts (with exponential backoff) before a
    /// request is written off as a connect error. During a 10k-connection
    /// ramp the kernel can transiently refuse connects faster than the
    /// acceptor drains the backlog; a couple of retries absorbs that
    /// without hiding a server that is actually down.
    pub connect_retries: u32,
}

/// What a load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Requests fired.
    pub requests: usize,
    /// 2xx responses.
    pub ok: usize,
    /// Non-2xx responses.
    pub non_2xx: usize,
    /// Requests never fired because the connect (after retries) was
    /// refused or timed out — typically a server that is down or a
    /// ramp-up the backlog could not absorb. Reported separately from
    /// `io_errors` so a refused ramp-up cannot hide as a silent zero.
    pub connect_errors: usize,
    /// Transport failures on an established connection (write/read).
    pub io_errors: usize,
    /// Wall-clock of the whole run, seconds.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, µs.
    pub p50_us: u64,
    /// 90th-percentile latency, µs.
    pub p90_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Slowest request, µs.
    pub max_us: u64,
}

impl LoadSummary {
    /// True when every request got a 2xx over a healthy transport.
    pub fn all_ok(&self) -> bool {
        self.non_2xx == 0 && self.connect_errors == 0 && self.io_errors == 0
    }

    /// The summary as a single JSON object (the CI artifact format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"requests\": {},\n  \"ok\": {},\n  \"non_2xx\": {},\n  \
             \"connect_errors\": {},\n  \"io_errors\": {},\n  \
             \"elapsed_s\": {:.3},\n  \"throughput_rps\": {:.1},\n  \
             \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}\n}}\n",
            self.requests,
            self.ok,
            self.non_2xx,
            self.connect_errors,
            self.io_errors,
            self.elapsed_s,
            self.throughput_rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }

    /// A human-readable one-screen rendering for the terminal.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests, {} ok, {} non-2xx, {} connect errors, {} i/o errors\n\
             elapsed  : {:.3} s\n\
             rate     : {:.1} req/s\n\
             latency  : p50 {} us | p90 {} us | p99 {} us | max {} us\n",
            self.requests,
            self.ok,
            self.non_2xx,
            self.connect_errors,
            self.io_errors,
            self.elapsed_s,
            self.throughput_rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// Polls `GET /healthz` until the server answers 200 or the timeout
/// expires. Returns `true` on readiness.
pub fn wait_healthz(addr: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if probe_healthz(addr) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn probe_healthz(addr: &str) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if stream
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    matches!(read_response(&mut BufReader::new(stream)), Ok((200, _)))
}

/// Reads one HTTP response (status + `Content-Length` body) off a
/// buffered stream. Shared by the load workers, the health probe, and
/// the server's own shutdown tests.
pub(crate) fn read_response(r: &mut impl BufRead) -> Result<(u16, Vec<u8>), HttpError> {
    let mut line = String::new();
    if r.read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?
        == 0
    {
        return Err(HttpError::Closed);
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if r.read_line(&mut header)
            .map_err(|e| HttpError::Io(e.to_string()))?
            == 0
        {
            return Err(HttpError::Io("connection closed in headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    Ok((status, body))
}

struct WorkerOutcome {
    latencies_us: Vec<u64>,
    ok: usize,
    non_2xx: usize,
    connect_errors: usize,
    io_errors: usize,
}

/// Client threads carry a tiny stack (a `BufReader`, a head string, a
/// latency vec — all heap); the default 2 MiB would put a 10k-connection
/// soak at 20 GiB of reservation for no reason.
const WORKER_STACK: usize = 128 * 1024;

/// Runs the load. Returns the summary plus the body of request index 0
/// (the golden-diff probe CI `cmp`s against the committed report).
///
/// # Errors
/// Only configuration errors fail the call (no bodies, zero
/// concurrency); per-request transport failures are *counted*, never
/// thrown, so a flaky run still yields a full summary.
pub fn run(cfg: &LoadGenConfig) -> std::io::Result<(LoadSummary, Option<Vec<u8>>)> {
    if cfg.bodies.is_empty() || cfg.requests == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen needs at least one request body and a positive request count",
        ));
    }
    let concurrency = cfg.concurrency.clamp(1, cfg.requests);
    let cursor = AtomicUsize::new(0);
    let first_body: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let started = Instant::now();

    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                std::thread::Builder::new()
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(scope, || load_worker(cfg, &cursor, &first_body))
                    // lint: allow(panic-in-library) -- thread spawn fails only on OS resource exhaustion; the load run is worthless at reduced concurrency, so stop loudly
                    .expect("spawn load worker")
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panic-in-library) -- re-raising a worker panic on the harness thread is the point: a partial summary would silently undercount
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });

    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests);
    let (mut ok, mut non_2xx, mut connect_errors, mut io_errors) = (0, 0, 0, 0);
    for o in outcomes {
        latencies.extend(o.latencies_us);
        ok += o.ok;
        non_2xx += o.non_2xx;
        connect_errors += o.connect_errors;
        io_errors += o.io_errors;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p / 100.0).round() as usize;
        latencies[idx]
    };
    let completed = ok + non_2xx;
    let summary = LoadSummary {
        requests: cfg.requests,
        ok,
        non_2xx,
        connect_errors,
        io_errors,
        elapsed_s: elapsed,
        throughput_rps: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
        p50_us: pct(50.0),
        p90_us: pct(90.0),
        p99_us: pct(99.0),
        max_us: latencies.last().copied().unwrap_or(0),
    };
    // A panicking worker has already been re-raised by join() above, so
    // recovering the value from a poisoned lock here is unreachable
    // belt-and-braces, not data-loss masking.
    let first = first_body
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    Ok((summary, first))
}

/// Connects to the target, retrying with exponential backoff up to
/// `cfg.connect_retries` extra attempts. `None` means every attempt
/// failed and the caller should count a connect error.
fn connect_with_retries(cfg: &LoadGenConfig) -> Option<BufReader<TcpStream>> {
    for attempt in 0..=cfg.connect_retries {
        match TcpStream::connect(&cfg.addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                return Some(BufReader::new(s));
            }
            Err(_) if attempt < cfg.connect_retries => {
                // 5ms, 10ms, 20ms, … capped at 160ms per wait.
                std::thread::sleep(Duration::from_millis(5u64 << attempt.min(5)));
            }
            Err(_) => {}
        }
    }
    None
}

fn load_worker(
    cfg: &LoadGenConfig,
    cursor: &AtomicUsize,
    first_body: &Mutex<Option<Vec<u8>>>,
) -> WorkerOutcome {
    let mut out = WorkerOutcome {
        latencies_us: Vec::new(),
        ok: 0,
        non_2xx: 0,
        connect_errors: 0,
        io_errors: 0,
    };
    let mut conn: Option<BufReader<TcpStream>> = None;
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= cfg.requests {
            return out;
        }
        // (Re)connect lazily; one failed request costs one reconnect,
        // not the rest of the worker's share.
        if conn.is_none() {
            match connect_with_retries(cfg) {
                Some(c) => conn = Some(c),
                None => {
                    out.connect_errors += 1;
                    continue;
                }
            }
        }
        // lint: allow(panic-in-library) -- `conn` was set to Some by the reconnect block directly above; every `continue` path re-enters that block first
        let reader = conn.as_mut().expect("connection just established");
        let body = cfg.bodies[i % cfg.bodies.len()].as_bytes();
        let head = format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let fired = Instant::now();
        let wrote = {
            let stream = reader.get_mut();
            stream
                .write_all(head.as_bytes())
                .and_then(|()| stream.write_all(body))
        };
        if wrote.is_err() {
            out.io_errors += 1;
            conn = None;
            continue;
        }
        match read_response(reader) {
            Ok((status, resp_body)) => {
                let us = u64::try_from(fired.elapsed().as_micros()).unwrap_or(u64::MAX);
                out.latencies_us.push(us);
                if (200..300).contains(&status) {
                    out.ok += 1;
                } else {
                    out.non_2xx += 1;
                }
                if i == 0 {
                    // Writing a complete body over Option is atomic from
                    // readers' view; poison recovery cannot expose a
                    // half-written value.
                    *first_body.lock().unwrap_or_else(PoisonError::into_inner) = Some(resp_body);
                }
            }
            Err(_) => {
                out.io_errors += 1;
                conn = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use hpcarbon_api::{EstimateRequest, SystemId};
    use hpcarbon_grid::regions::OperatorId;

    fn body() -> String {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 20;
        r.to_json()
    }

    #[test]
    fn loadgen_roundtrips_against_a_live_server() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                cache_capacity: 64,
                max_body_bytes: 1 << 20,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        assert!(wait_healthz(&addr, Duration::from_secs(10)));
        let (summary, first) = run(&LoadGenConfig {
            addr: addr.clone(),
            concurrency: 4,
            bodies: vec![body()],
            requests: 12,
            connect_retries: 2,
        })
        .unwrap();
        assert_eq!(summary.requests, 12);
        assert_eq!(summary.ok, 12, "{summary:?}");
        assert!(summary.all_ok());
        assert!(summary.p99_us >= summary.p50_us);
        assert!(summary.max_us >= summary.p99_us);
        assert!(summary.throughput_rps > 0.0);
        // The captured first body is a real report array.
        let first = String::from_utf8(first.unwrap()).unwrap();
        assert!(first.starts_with("[\n"), "{first}");
        assert!(first.contains("\"embodied\""));
        // Identical bodies mean the cache served 11 of 12 rows.
        let json = summary.to_json();
        assert!(json.contains("\"requests\": 12"), "{json}");
        assert!(json.contains("\"connect_errors\": 0"), "{json}");
        assert!(json.contains("\"p99\""), "{json}");

        handle.shutdown();
        let s = join.join().unwrap();
        assert_eq!(s.estimate_calls, 12);
        // Concurrent first arrivals may each miss before the first insert
        // lands, but every row resolves through the cache path and the
        // steady state hits: misses are bounded by the concurrency.
        assert_eq!(s.cache_hits + s.cache_misses, 12);
        assert!((1..=4).contains(&s.cache_misses), "{s:?}");
        assert!(s.cache_hits >= 8, "{s:?}");
    }

    #[test]
    fn empty_workload_is_a_config_error_and_health_probe_times_out() {
        let err = run(&LoadGenConfig {
            addr: "127.0.0.1:1".into(),
            concurrency: 2,
            bodies: Vec::new(),
            requests: 4,
            connect_retries: 0,
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Nothing listens on port 1; the probe must give up, not hang.
        assert!(!wait_healthz("127.0.0.1:1", Duration::from_millis(200)));
    }

    #[test]
    fn refused_connects_surface_as_connect_errors_not_silent_zeros() {
        // Nothing listens on port 1: every request's connect is refused.
        let (summary, first) = run(&LoadGenConfig {
            addr: "127.0.0.1:1".into(),
            concurrency: 2,
            bodies: vec![body()],
            requests: 6,
            connect_retries: 0,
        })
        .unwrap();
        assert_eq!(summary.connect_errors, 6, "{summary:?}");
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.io_errors, 0, "refused connect is not an i/o error");
        assert!(!summary.all_ok(), "a refused ramp-up must fail the run");
        assert!(first.is_none(), "no golden body without a connection");
        let json = summary.to_json();
        assert!(json.contains("\"connect_errors\": 6"), "{json}");
        assert!(summary.render().contains("6 connect errors"));
    }
}
