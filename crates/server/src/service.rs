//! Route dispatch and the cached estimation path.
//!
//! [`EstimateService`] is the pure core of the server: HTTP request in,
//! HTTP response out, no sockets anywhere — which is what the worker
//! pool, the round-trip tests, and the `serve` benchmarks all call.
//!
//! ## Determinism under caching
//!
//! `POST /v1/estimate` answers must be **byte-identical** to
//! `hpcarbon estimate` for the same document, cached or not. The chain
//! that guarantees it:
//!
//! 1. each batch row validates to a [`ValidRequest`] whose
//!    [`canonical_json`](ValidRequest::canonical_json) is injective over
//!    request semantics;
//! 2. the cache maps canonical bytes → the computed [`FootprintReport`]
//!    **struct** (not rendered text), so assembly goes through the same
//!    [`batch_to_json`] emitter whether rows were computed or recalled;
//! 3. estimation is a pure function of the request and the (fixed,
//!    default) providers.
//!
//! Only `Ok` reports are cached; error rows are cheap to recompute and
//! keeping them out makes cache poisoning by malformed traffic
//! impossible. The mixed case — a batch where some rows hit and some
//! miss — therefore composes row by row without special cases.

use crate::cache::ShardedLru;
use crate::http::{HttpError, HttpRequest, HttpResponse};
use crate::metrics::Metrics;
use hpcarbon_api::request::ValidRequest;
use hpcarbon_api::{batch_to_json, ApiError, EstimateRequest, Estimator, FootprintReport};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Default request-body limit (1 MiB — thousands of batch rows).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// A fully rendered, cache-hot response: the exact bytes of an all-`Ok`
/// 200 estimate answer, shared (`Arc`) with every connection writing it,
/// plus the row count for metric accounting.
///
/// This is the event loop's zero-copy fast path: a repeated request body
/// is answered on the loop thread by queueing the shared bytes — no
/// parse, no estimation, no body copy. Keyed on the **raw** body, it only
/// ever hits for byte-identical requests, whose responses are identical
/// by the determinism contract (same bytes → same parse → same canonical
/// rows → same rendered answer), so it can never change served bytes.
#[derive(Debug, Clone)]
pub struct HotResponse {
    /// Rendered JSON response body.
    pub body: Arc<Vec<u8>>,
    /// Batch rows inside; a hot hit counts each as a cache hit so the
    /// row-level invariants (`cache_hits + cache_misses == rows seen`)
    /// survive the short-circuit.
    pub rows: u64,
}

/// The server's request handler: routes, the estimator, and the
/// canonical-request cache.
pub struct EstimateService {
    estimator: Estimator,
    cache: ShardedLru<Arc<FootprintReport>>,
    /// Raw body → rendered all-`Ok` response (see [`HotResponse`]).
    hot: ShardedLru<HotResponse>,
    metrics: Metrics,
    max_body_bytes: usize,
}

impl EstimateService {
    /// A service over `estimator` with a canonical-request cache of
    /// `cache_capacity` entries (0 disables caching) and the default body
    /// limit.
    pub fn new(estimator: Estimator, cache_capacity: usize) -> EstimateService {
        EstimateService {
            estimator,
            cache: ShardedLru::new(cache_capacity),
            hot: ShardedLru::new(cache_capacity),
            metrics: Metrics::new(),
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }

    /// Overrides the request-body limit, bytes.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> EstimateService {
        self.max_body_bytes = bytes.max(1);
        self
    }

    /// The request-body limit the HTTP reader enforces.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// The serving counters (shared with `/metrics`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current number of cached reports.
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Current number of hot rendered responses.
    pub fn hot_entries(&self) -> usize {
        self.hot.len()
    }

    /// The event loop's fast path: answers a `POST /v1/estimate` body
    /// straight from the hot-response cache, doing **all** the metric
    /// accounting the slow path would ([`handle`](Self::handle) must NOT
    /// also run for this request). Returns `None` on a miss — the caller
    /// hands the request to the worker pool, whose
    /// [`handle`](Self::handle) call populates the cache.
    pub fn try_hot(&self, body: &[u8]) -> Option<HotResponse> {
        let src = std::str::from_utf8(body).ok()?;
        let started = Instant::now();
        let hit = self.hot.get(src)?;
        let m = &self.metrics;
        m.http_requests.fetch_add(1, Ordering::Relaxed);
        m.estimate_calls.fetch_add(1, Ordering::Relaxed);
        m.reports_ok.fetch_add(hit.rows, Ordering::Relaxed);
        m.cache_hits.fetch_add(hit.rows, Ordering::Relaxed);
        m.hot_responses.fetch_add(1, Ordering::Relaxed);
        m.count_response(200);
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        m.observe_latency_us(us);
        Some(hit)
    }

    /// Handles one parsed request. Total: every outcome is a response.
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let resp = match (req.method.as_str(), req.target.as_str()) {
            ("GET", "/healthz") => HttpResponse::ok("text/plain; charset=utf-8", "ok\n"),
            ("GET", "/metrics") => HttpResponse::ok(
                "text/plain; charset=utf-8",
                self.metrics.render(self.cache.len()),
            ),
            ("POST", "/v1/estimate") => self.estimate(&req.body),
            ("GET", "/v1/estimate") | ("POST", "/healthz") | ("POST", "/metrics") => {
                error_payload(405, "http", "method not allowed for this route")
            }
            _ => error_payload(404, "http", "no such route"),
        };
        self.metrics.count_response(resp.status);
        resp
    }

    /// The response for a request that never parsed ([`HttpError`] from
    /// the reader). `None` means the connection died without a decodable
    /// request — nothing useful can be written back.
    pub fn handle_protocol_error(&self, err: &HttpError) -> Option<HttpResponse> {
        let mut resp = match err {
            HttpError::Malformed(msg) => error_payload(400, "http", msg),
            HttpError::BodyTooLarge { .. } => error_payload(413, "http", &err.to_string()),
            HttpError::HeadersTooLarge => error_payload(431, "http", &err.to_string()),
            HttpError::Closed | HttpError::Idle | HttpError::Io(_) => return None,
        };
        // The stream position is unreliable after a protocol error (an
        // unread body may follow); close rather than misparse.
        resp.close = true;
        self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.count_response(resp.status);
        Some(resp)
    }

    fn estimate(&self, body: &[u8]) -> HttpResponse {
        self.metrics.estimate_calls.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let src = match std::str::from_utf8(body) {
            Ok(s) => s,
            Err(_) => return error_payload(400, "http", "request body is not UTF-8"),
        };
        // Document-level failures (syntax, schema gate, unknown fields)
        // are a typed 400; row-level failures below stay 200 with error
        // rows, exactly like the CLI's batch semantics.
        let requests = match EstimateRequest::batch_from_json(src) {
            Ok(r) => r,
            Err(e) => return error_payload(400, e.kind(), &e.to_string()),
        };
        let results: Vec<Result<Arc<FootprintReport>, ApiError>> = requests
            .iter()
            .map(|r| self.estimate_one_cached(r))
            .collect();
        for r in &results {
            let c = match r {
                Ok(_) => &self.metrics.reports_ok,
                Err(_) => &self.metrics.report_errors,
            };
            c.fetch_add(1, Ordering::Relaxed);
        }
        let json = batch_to_json(&results);
        if results.iter().all(|r| r.is_ok()) {
            // Memoize the whole rendered answer for the event loop's
            // zero-copy path. Only all-Ok batches: error rows are cheap
            // to recompute and keeping them out makes cache poisoning by
            // malformed traffic impossible (same rule as the row cache).
            self.hot.insert(
                src.to_string(),
                HotResponse {
                    body: Arc::new(json.clone().into_bytes()),
                    rows: results.len() as u64,
                },
            );
        }
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.observe_latency_us(us);
        HttpResponse::json(200, json)
    }

    /// One batch row through the cache: canonical key, recall or compute.
    /// Reports stay behind `Arc` end to end — a hit is a refcount bump,
    /// never a deep copy — and the request is validated exactly once
    /// (the same `ValidRequest` yields the key and feeds the estimator).
    fn estimate_one_cached(&self, req: &EstimateRequest) -> Result<Arc<FootprintReport>, ApiError> {
        let valid: ValidRequest = req.validate()?;
        let key = valid.canonical_json();
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        let report = Arc::new(self.estimator.estimate_valid(&valid)?);
        self.cache.insert(key, Arc::clone(&report));
        Ok(report)
    }
}

impl Default for EstimateService {
    /// The production default: the paper's estimator, a 1024-entry cache.
    fn default() -> EstimateService {
        EstimateService::new(Estimator::builder().build(), 1024)
    }
}

/// The typed JSON error payload: `{"error": {"kind": ..., "message":
/// ...}}`, the wire form of [`ApiError::kind`] plus its `Display`.
fn error_payload(status: u16, kind: &str, message: &str) -> HttpResponse {
    HttpResponse::json(
        status,
        format!(
            "{{\"error\": {{\"kind\": {}, \"message\": {}}}}}\n",
            hpcarbon_api::json::esc(kind),
            hpcarbon_api::json::esc(message),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_api::{SystemId, TraceSource};
    use hpcarbon_grid::regions::OperatorId;

    fn post(body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            target: "/v1/estimate".into(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn get(target: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            target: target.into(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn request_json() -> String {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 30;
        r.to_json()
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let svc = EstimateService::default();
        let ok = svc.handle(&get("/healthz"));
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"ok\n");
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        assert_eq!(svc.handle(&get("/v1/estimate")).status, 405);
        // The /metrics request itself is counted before rendering, so the
        // healthz + 404 + 405 probes plus this one make four.
        let m = svc.handle(&get("/metrics"));
        assert_eq!(m.status, 200);
        assert!(String::from_utf8(m.body)
            .unwrap()
            .contains("http_requests_total 4\n"));
    }

    #[test]
    fn cached_and_uncached_responses_are_byte_identical() {
        let svc = EstimateService::default();
        let body = request_json();
        let first = svc.handle(&post(&body));
        assert_eq!(first.status, 200);
        assert_eq!(svc.metrics().cache_misses.load(Ordering::Relaxed), 1);
        let second = svc.handle(&post(&body));
        assert_eq!(svc.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(first.body, second.body, "cache must not change bytes");
        // And both equal the CLI path: a direct estimate_batch emission.
        let reqs = EstimateRequest::batch_from_json(&body).unwrap();
        let direct = batch_to_json(
            &Estimator::builder()
                .threads(1)
                .build()
                .estimate_batch(&reqs),
        );
        assert_eq!(first.body, direct.as_bytes());
    }

    #[test]
    fn cache_distinguishes_every_request_field() {
        let svc = EstimateService::default();
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 30;
        let a = svc.handle(&post(&r.to_json()));
        r.source = TraceSource::Synthetic;
        let b = svc.handle(&post(&r.to_json()));
        assert_ne!(a.body, b.body);
        assert_eq!(svc.metrics().cache_misses.load(Ordering::Relaxed), 2);
        assert_eq!(svc.cache_entries(), 2);
    }

    #[test]
    fn bad_json_is_a_typed_400_payload() {
        let svc = EstimateService::default();
        let resp = svc.handle(&post("{not json"));
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"kind\": \"parse\""), "{text}");
        assert!(text.contains("invalid JSON"), "{text}");
        // Schema-gate failures carry their own kind.
        let resp = svc.handle(&post(
            r#"{"schema_version": 9, "system": "frontier", "region": "eso"}"#,
        ));
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"kind\": \"schema\""), "{text}");
    }

    #[test]
    fn row_level_failures_stay_batch_rows_and_are_not_cached() {
        let svc = EstimateService::default();
        // Row 2 is infeasible (all-flash Perlmutter); the batch is still
        // a 200 with an aligned error row — CLI semantics.
        let body = format!(
            r#"[{}, {{"schema_version": 1, "system": "perlmutter", "region": "eso", "storage": "all-flash", "jobs": 30}}]"#,
            request_json()
        );
        let resp = svc.handle(&post(&body));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"error\": \"storage what-if"), "{text}");
        assert_eq!(svc.metrics().report_errors.load(Ordering::Relaxed), 1);
        assert_eq!(svc.metrics().reports_ok.load(Ordering::Relaxed), 1);
        // Only the feasible row was cached.
        assert_eq!(svc.cache_entries(), 1);
    }

    #[test]
    fn hot_responses_short_circuit_with_full_accounting() {
        let svc = EstimateService::default();
        let body = request_json();
        assert!(svc.try_hot(body.as_bytes()).is_none(), "cold cache");
        assert!(svc.try_hot(&[0xff, 0xfe]).is_none(), "non-UTF-8 body");
        let first = svc.handle(&post(&body));
        assert_eq!(svc.hot_entries(), 1);
        let hot = svc.try_hot(body.as_bytes()).expect("now hot");
        assert_eq!(*hot.body, first.body, "hot bytes identical");
        assert_eq!(hot.rows, 1);
        // The short-circuit does every metric bump the slow path would,
        // so hot and slow hits are indistinguishable in /metrics except
        // for hot_responses_total itself.
        let m = svc.metrics();
        assert_eq!(m.http_requests.load(Ordering::Relaxed), 2);
        assert_eq!(m.estimate_calls.load(Ordering::Relaxed), 2);
        assert_eq!(m.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(m.reports_ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.hot_responses.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn error_responses_are_never_hot_cached() {
        let svc = EstimateService::default();
        // Document-level 400: nothing cached.
        svc.handle(&post("{not json"));
        assert_eq!(svc.hot_entries(), 0);
        // A batch with an error row stays uncached too (error rows are
        // kept out of both caches).
        let body = format!(
            r#"[{}, {{"schema_version": 1, "system": "perlmutter", "region": "eso", "storage": "all-flash", "jobs": 30}}]"#,
            request_json()
        );
        assert_eq!(svc.handle(&post(&body)).status, 200);
        assert_eq!(svc.hot_entries(), 0);
        assert!(svc.try_hot(body.as_bytes()).is_none());
    }

    #[test]
    fn protocol_errors_map_to_their_status_codes() {
        let svc = EstimateService::default();
        let r413 = svc
            .handle_protocol_error(&HttpError::BodyTooLarge { limit: 10 })
            .unwrap();
        assert_eq!(r413.status, 413);
        assert!(r413.close);
        let r400 = svc
            .handle_protocol_error(&HttpError::Malformed("x".into()))
            .unwrap();
        assert_eq!(r400.status, 400);
        let r431 = svc
            .handle_protocol_error(&HttpError::HeadersTooLarge)
            .unwrap();
        assert_eq!(r431.status, 431);
        assert!(svc.handle_protocol_error(&HttpError::Closed).is_none());
        assert!(svc.handle_protocol_error(&HttpError::Idle).is_none());
        assert!(svc
            .handle_protocol_error(&HttpError::Io("reset".into()))
            .is_none());
    }
}
