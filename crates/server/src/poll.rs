//! Raw `epoll(7)`/`eventfd(2)` readiness primitives, declared by hand.
//!
//! The offline dependency set has no `libc`/`mio`, but std links the
//! platform C library anyway, so — exactly like the `signal(2)` handler
//! in [`crate::signal`] — the event loop declares the four syscall
//! wrappers it needs itself and hides them behind two safe types:
//!
//! - [`Poller`]: an `epoll` instance. Registration is level-triggered
//!   (the loop toggles read/write *interest* for backpressure instead of
//!   draining edge notifications), tokens are caller-chosen `u64`s, and
//!   [`Poller::wait`] translates the raw event mask into a plain
//!   [`Event`].
//! - [`EventFd`]: a nonblocking wakeup channel. Any thread may
//!   [`ring`](EventFd::ring) it; the owning event loop drains it and
//!   checks its mailboxes. This is how the acceptor hands over fresh
//!   connections and how estimation workers deliver finished responses.
//!
//! Errors surface as [`std::io::Error`] (std reads `errno` itself via
//! `Error::last_os_error`), so `EINTR`/`EAGAIN` handling stays idiomatic
//! `ErrorKind` matching. Everything here is Linux-only; the non-Linux
//! fallback server never compiles this module.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// Values from the Linux UAPI headers (stable kernel ABI, not glibc
// internals): include/uapi/linux/eventpoll.h and fcntl.h.
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event`. The kernel packs it on x86-64 (12 bytes) and
/// leaves it naturally aligned elsewhere; both layouts are part of the
/// stable UAPI.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// See the x86-64 variant above.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn listen(sockfd: i32, backlog: i32) -> i32;
}

/// Re-issues `listen(2)` on an already-listening socket to raise its
/// accept backlog (std's `TcpListener::bind` hard-codes 128, far too
/// small for a 10k-connection ramp; Linux allows updating the backlog on
/// a live listener).
pub fn raise_listen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: `listen` on a valid listening socket fd only adjusts the
    // kernel-side queue length.
    if unsafe { listen(fd, backlog) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more written bytes.
    pub writable: bool,
    /// The socket errored or hung up in both directions (`EPOLLERR`/
    /// `EPOLLHUP`); nothing queued can be delivered anymore.
    pub closed: bool,
    /// The peer shut down its write side (`EPOLLRDHUP`): no more bytes
    /// will ever arrive, but the socket can still accept responses.
    pub rdhup: bool,
}

/// Which readiness notifications a registered fd should deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Deliver readable events.
    pub readable: bool,
    /// Deliver writable events.
    pub writable: bool,
    /// Deliver `EPOLLRDHUP` (peer half-close). Armed by default so a
    /// hang-up surfaces even while `EPOLLIN` is masked; the event loop
    /// disarms it once observed — level-triggered, it would otherwise
    /// re-fire on every wait for as long as the connection lingers.
    pub rdhup: bool,
}

impl Interest {
    /// Read-only interest (the idle/parsing state).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        rdhup: true,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        if self.rdhup {
            m |= EPOLLRDHUP;
        }
        m
    }
}

/// A level-triggered `epoll` instance. Closed on drop.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: `epoll_create1` takes no pointers (no memory to
        // mis-describe); failure comes back as -1, checked below. The
        // fd is owned (and closed) by the Poller, never duplicated.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Changes a registered fd's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Deregisters `fd` (safe to call right before closing it).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `out` (cleared first). `timeout` of
    /// `None` blocks indefinitely. A signal-interrupted wait returns an
    /// empty batch rather than an error — callers poll their shutdown
    /// flag every pass anyway.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(0),
        };
        // SAFETY: the buffer is a stack array of the declared length.
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                rdhup: bits & EPOLLRDHUP != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing the fd this struct owns.
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking `eventfd` used as a cross-thread doorbell. Cloneable
/// handles are not needed — the fd lives in an `Arc`'d mailbox shared by
/// every writer, so it stays open until the last worker is done with it.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates the eventfd (counter semantics, nonblocking).
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: `eventfd` takes no pointers, so there is no memory to
        // mis-describe; a failure comes back as -1 and is checked below.
        // The returned fd is owned (and closed) by the EventFd.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with a [`Poller`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wakes the owning event loop. Infallible by design: the only
    /// failure modes are a full counter (the loop is already guaranteed
    /// to wake) or a torn-down loop (nobody left to wake).
    pub fn ring(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a stack value to an owned fd.
        unsafe { write(self.fd, (&raw const one).cast::<u8>(), 8) };
    }

    /// Drains the counter so the next [`ring`](EventFd::ring) triggers a
    /// fresh readiness event.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reading 8 bytes into a stack buffer from an owned fd.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: closing the fd this struct owns.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_rings_through_epoll() {
        let poller = Poller::new().unwrap();
        let efd = EventFd::new().unwrap();
        poller.add(efd.raw(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing rung yet: a zero-timeout wait comes back empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());

        efd.ring();
        efd.ring(); // coalesces into one readiness event
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Drained, the level-triggered fd goes quiet again.
        efd.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn sockets_report_read_write_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(
                server_side.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: true,
                    rdhup: true,
                },
            )
            .unwrap();

        // A fresh socket is writable; after the client sends, readable too.
        client.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        assert!(events[0].readable);
        assert!(!events[0].closed);
        assert!(!events[0].rdhup);

        // Interest can be narrowed to read-only…
        poller
            .modify(server_side.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable));

        // …and a peer disconnect surfaces as a half-close (`EPOLLRDHUP`):
        // the peer's FIN arrived, but our write side is still usable, so
        // the fatal `closed` (ERR/HUP) bits stay clear.
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(|e| e.rdhup), "{events:?}");

        poller.remove(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn listener_backlog_can_be_raised() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        raise_listen_backlog(listener.as_raw_fd(), 4096).unwrap();
        // Still accepts after the backlog bump.
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        listener.accept().unwrap();
    }
}
