//! Lock-free serving counters and the `/metrics` plain-text rendering.
//!
//! Everything is an [`AtomicU64`] bumped with relaxed ordering — the
//! counters are statistics, not synchronization, and the render is a
//! point-in-time snapshot (counters are read independently, so a snapshot
//! taken mid-request may be off by one between related counters; each
//! counter is individually monotonic).
//!
//! The exposition format is one `name value` pair per line plus a
//! fixed-bucket latency histogram in the Prometheus text idiom
//! (`*_bucket{le="…"}` lines are cumulative). The field glossary lives in
//! the README's "Serve & load-test" section; field names are a wire
//! contract (CI greps them).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Upper bounds (µs) of the estimate-latency histogram buckets; a final
/// `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 500, 1_000, 5_000, 20_000, 100_000];

/// Per-shard event-loop statistics, rendered as labeled `/metrics` lines
/// (`shard_open_connections{shard="0"} …`). Only the event-loop server
/// initializes these; the blocking fallback renders none.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Connections currently open on this shard (gauge).
    pub open_connections: AtomicU64,
    /// Readiness events this shard's `epoll_wait` has delivered.
    pub readiness_events: AtomicU64,
    /// `eventfd` doorbell wakeups (new connections handed over by the
    /// acceptor plus finished estimations returned by workers).
    pub wakeups: AtomicU64,
}

/// All serving counters. One instance per server, shared by the workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests parsed off the wire (any route, any outcome).
    pub http_requests: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// `POST /v1/estimate` calls (a batch of any size counts once).
    pub estimate_calls: AtomicU64,
    /// Individual requests answered inside estimate batches.
    pub reports_ok: AtomicU64,
    /// Individual error rows inside estimate batches.
    pub report_errors: AtomicU64,
    /// Batch rows answered from the canonical-request cache.
    pub cache_hits: AtomicU64,
    /// Batch rows that had to run the estimator.
    pub cache_misses: AtomicU64,
    /// Whole responses served from the hot rendered-response cache
    /// (answered on the event loop, zero body copies). Each also counts
    /// its rows into `cache_hits`, so row-level invariants hold.
    pub hot_responses: AtomicU64,
    /// Connections dropped by peer reset/disconnect mid-request or
    /// mid-response (never counts clean keep-alive closes).
    pub conn_resets: AtomicU64,
    /// Per-shard event-loop stats; set once at event-loop boot.
    shards: OnceLock<Vec<ShardStats>>,
    /// Estimate-call latency histogram (cumulative buckets, µs).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    /// Sum of estimate-call latencies, µs.
    latency_sum_us: AtomicU64,
    /// Number of estimate calls observed in the histogram.
    latency_count: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bumps the status-class counter for one response.
    pub fn count_response(&self, status: u16) {
        let c = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs the per-shard stat blocks (idempotent; the first caller
    /// wins, which is fine because exactly one event loop boots per
    /// server).
    pub fn init_shards(&self, n: usize) {
        let _ = self
            .shards
            .set((0..n).map(|_| ShardStats::default()).collect());
    }

    /// Shard `i`'s stat block. Panics if the event loop never called
    /// [`init_shards`](Self::init_shards) — a programming error, not a
    /// runtime condition.
    pub fn shard(&self, i: usize) -> &ShardStats {
        // lint: allow(panic-in-library) -- documented panic on a wiring bug (event loop must call init_shards first); there is no sane fallback stat block
        &self.shards.get().expect("init_shards not called")[i]
    }

    /// Sum of per-shard open-connection gauges (0 when no event loop).
    pub fn open_connections(&self) -> u64 {
        self.shards
            .get()
            .map(|s| {
                s.iter()
                    .map(|st| st.open_connections.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Records one estimate call's wall-clock latency.
    pub fn observe_latency_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `/metrics` document. `cache_entries` is sampled from
    /// the cache at render time (it is a gauge, not a counter).
    pub fn render(&self, cache_entries: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str("# hpcarbon-server metrics; counters are cumulative since boot.\n");
        out.push_str("# Field glossary: README \"Serve & load-test\".\n");
        for (name, value) in [
            ("http_requests_total", g(&self.http_requests)),
            ("responses_2xx_total", g(&self.responses_2xx)),
            ("responses_4xx_total", g(&self.responses_4xx)),
            ("responses_5xx_total", g(&self.responses_5xx)),
            ("estimate_calls_total", g(&self.estimate_calls)),
            ("reports_ok_total", g(&self.reports_ok)),
            ("report_errors_total", g(&self.report_errors)),
            ("cache_hits_total", g(&self.cache_hits)),
            ("cache_misses_total", g(&self.cache_misses)),
            ("cache_entries", cache_entries as u64),
            ("hot_responses_total", g(&self.hot_responses)),
            ("conn_resets_total", g(&self.conn_resets)),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        if let Some(shards) = self.shards.get() {
            for (i, s) in shards.iter().enumerate() {
                out.push_str(&format!(
                    "shard_open_connections{{shard=\"{i}\"}} {}\n",
                    s.open_connections.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "shard_readiness_events_total{{shard=\"{i}\"}} {}\n",
                    s.readiness_events.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "shard_wakeups_total{{shard=\"{i}\"}} {}\n",
                    s.wakeups.load(Ordering::Relaxed)
                ));
            }
        }
        // Cumulative histogram: each bucket counts everything at or below
        // its bound, Prometheus-style.
        let mut cumulative = 0;
        for (i, &le) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "estimate_latency_us_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "estimate_latency_us_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "estimate_latency_us_sum {}\n",
            g(&self.latency_sum_us)
        ));
        out.push_str(&format!(
            "estimate_latency_us_count {}\n",
            g(&self.latency_count)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_classes_route_to_their_counters() {
        let m = Metrics::new();
        for s in [200, 200, 404, 413, 500] {
            m.count_response(s);
        }
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_the_render() {
        let m = Metrics::new();
        m.observe_latency_us(50); // le=100
        m.observe_latency_us(800); // le=1000
        m.observe_latency_us(999_999); // +Inf
        let text = m.render(0);
        assert!(text.contains("estimate_latency_us_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("estimate_latency_us_bucket{le=\"1000\"} 2\n"));
        assert!(text.contains("estimate_latency_us_bucket{le=\"100000\"} 2\n"));
        assert!(text.contains("estimate_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("estimate_latency_us_sum 1000849\n"));
        assert!(text.contains("estimate_latency_us_count 3\n"));
    }

    #[test]
    fn render_names_are_the_wire_contract() {
        // CI greps these names; a rename is a contract break.
        let text = Metrics::new().render(7);
        for name in [
            "http_requests_total 0",
            "responses_2xx_total 0",
            "estimate_calls_total 0",
            "cache_hits_total 0",
            "cache_misses_total 0",
            "cache_entries 7",
            "hot_responses_total 0",
            "conn_resets_total 0",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
    }

    #[test]
    fn shard_stats_render_labeled_lines() {
        let m = Metrics::new();
        assert_eq!(m.open_connections(), 0, "no shards yet");
        assert!(!m.render(0).contains("shard_"), "no shard lines yet");
        m.init_shards(2);
        m.shard(0).open_connections.store(3, Ordering::Relaxed);
        m.shard(1).open_connections.store(4, Ordering::Relaxed);
        m.shard(1).readiness_events.fetch_add(9, Ordering::Relaxed);
        m.shard(0).wakeups.fetch_add(2, Ordering::Relaxed);
        assert_eq!(m.open_connections(), 7);
        let text = m.render(0);
        for line in [
            "shard_open_connections{shard=\"0\"} 3",
            "shard_open_connections{shard=\"1\"} 4",
            "shard_readiness_events_total{shard=\"1\"} 9",
            "shard_wakeups_total{shard=\"0\"} 2",
            "shard_wakeups_total{shard=\"1\"} 0",
        ] {
            assert!(text.contains(line), "missing {line:?} in:\n{text}");
        }
        // Re-initialization is a no-op (first caller wins).
        m.init_shards(5);
        assert_eq!(m.open_connections(), 7);
    }
}
