//! The readiness-based serving core: one acceptor, N event-loop shards,
//! a retained worker pool for uncached estimation.
//!
//! ## Topology
//!
//! ```text
//!           accept(2)                 eventfd ring            mpsc
//!  peers ──► acceptor ──round-robin──► shard 0..N ──uncached──► workers
//!                                        ▲    │   ◄─completions─┘
//!                                        │    └─ hot hits, healthz,
//!                                     epoll       metrics, errors:
//!                                                 answered on the loop
//! ```
//!
//! Each shard owns an epoll [`Poller`], a connection [`Slab`] (slot
//! index = epoll token), and a `Mailbox` other threads reach it
//! through. Reads are nonblocking and drive the incremental
//! [`RequestParser`](crate::http::RequestParser); writes are flushed
//! eagerly and fall back to
//! `EPOLLOUT`-driven resume on short writes. Cache-hot estimate bodies
//! are answered directly on the loop thread with the `Arc`'d rendered
//! bytes (zero body copies); everything uncached travels to the worker
//! pool and comes back through the mailbox + eventfd doorbell.
//!
//! ## Determinism under async
//!
//! A connection has **at most one request in flight**: while a request
//! sits at the workers, the shard disarms read interest (kernel-level
//! backpressure) and stops polling the parser, so pipelined responses
//! are written strictly in request order without a sequencing queue.
//! Worker completions are matched against a per-slot generation stamp —
//! a completion for a slot that was reclaimed (peer died mid-estimate)
//! is discarded instead of answering the wrong connection.
//!
//! ## Shutdown
//!
//! The shutdown flag is polled every `TICK` (25 ms). The acceptor stops
//! accepting; each shard keeps serving until every slot has drained
//! (busy requests complete and flush, responses announce
//! `Connection: close`, idle keep-alive connections close at the next
//! sweep) and its mailbox holds no handed-over connections, then exits.
//! Workers exit when the last shard drops its job sender.

use crate::conn::Conn;
use crate::http::{self, HttpError, HttpRequest, HttpResponse};
use crate::poll::{Event, EventFd, Interest, Poller};
use crate::service::EstimateService;
use crate::slab::Slab;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Shutdown-poll cadence; also bounds deadline-sweep latency.
const TICK: Duration = Duration::from_millis(25);

/// Epoll token reserved for the shard's mailbox eventfd.
const WAKE: u64 = u64::MAX;

/// Per-read scratch size.
const READ_CHUNK: usize = 16 * 1024;

/// Once this many response bytes are queued on one connection, the shard
/// stops parsing further pipelined requests until the peer drains some
/// (memory backpressure against read-everything-write-nothing clients).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Accept backlog requested on top of std's hard-coded 128 (a 10k
/// connection ramp overflows 128 instantly).
const LISTEN_BACKLOG: i32 = 4096;

/// Knobs the server passes down; a subset of `ServerConfig`.
pub(crate) struct LoopConfig {
    /// Event-loop shards.
    pub shards: usize,
    /// Estimation worker threads.
    pub workers: usize,
    /// Request-body limit, bytes.
    pub max_body: usize,
    /// Mid-request (and write-stall) deadline.
    pub deadline: Duration,
}

/// An uncached request traveling to the worker pool.
struct Job {
    shard: usize,
    token: usize,
    generation: u64,
    request: HttpRequest,
}

/// A finished estimation traveling back to its shard.
struct Completion {
    token: usize,
    generation: u64,
    response: HttpResponse,
    /// The originating request's keep-alive preference.
    keep_alive: bool,
}

/// How other threads reach a shard. Both queues are checked every loop
/// pass; the eventfd only bounds wakeup latency when the shard is parked
/// in `epoll_wait`.
struct Mailbox {
    wake: EventFd,
    incoming: Mutex<VecDeque<TcpStream>>,
    done: Mutex<VecDeque<Completion>>,
}

impl Mailbox {
    fn new() -> io::Result<Mailbox> {
        Ok(Mailbox {
            wake: EventFd::new()?,
            incoming: Mutex::new(VecDeque::new()),
            done: Mutex::new(VecDeque::new()),
        })
    }

    // Mailbox lock recovery: each critical section is a single
    // push/pop on a `VecDeque`, which never exposes a half-written
    // entry, so a poisoned lock is safe to keep using — dropping
    // queued connections on a peer's panic would be strictly worse.
    fn push_incoming(&self, stream: TcpStream) {
        self.incoming
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(stream);
        self.wake.ring();
    }

    fn push_done(&self, completion: Completion) {
        self.done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(completion);
        self.wake.ring();
    }
}

/// Runs the event-loop server on the calling thread until shutdown and
/// drain complete. The caller reads the lifetime summary off the
/// service's metrics afterwards.
pub(crate) fn run(
    listener: TcpListener,
    service: Arc<EstimateService>,
    shutdown: Arc<AtomicBool>,
    config: LoopConfig,
) -> io::Result<()> {
    let shards = config.shards.max(1);
    let workers = config.workers.max(1);
    service.metrics().init_shards(shards);

    let mailboxes: Vec<Arc<Mailbox>> = (0..shards)
        .map(|_| Mailbox::new().map(Arc::new))
        .collect::<io::Result<_>>()?;
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));

    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let rx = Arc::clone(&job_rx);
            let service = Arc::clone(&service);
            let mailboxes = mailboxes.clone();
            std::thread::Builder::new()
                .name(format!("estimate-{i}"))
                .spawn(move || worker_loop(&rx, &service, &mailboxes))
                // lint: allow(panic-in-library) -- thread spawn fails only on OS resource exhaustion at startup; a loud stop beats serving with a silently smaller pool
                .expect("spawn worker")
        })
        .collect();

    // Shards must not finish their drain while the acceptor can still
    // hand over one last connection; this flag closes that race.
    let accept_done = Arc::new(AtomicBool::new(false));
    let shard_handles: Vec<_> = (0..shards)
        .map(|i| {
            let mailbox = Arc::clone(&mailboxes[i]);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let accept_done = Arc::clone(&accept_done);
            let jobs = job_tx.clone();
            let deadline = config.deadline;
            let max_body = config.max_body;
            std::thread::Builder::new()
                .name(format!("shard-{i}"))
                .spawn(move || {
                    let result = Shard::new(
                        i,
                        mailbox,
                        service,
                        jobs,
                        Arc::clone(&shutdown),
                        accept_done,
                        deadline,
                        max_body,
                    )
                    .and_then(|mut shard| shard.run());
                    if result.is_err() {
                        // A shard that dies (epoll failure) must not keep
                        // receiving round-robin handoffs nobody will ever
                        // adopt: take the whole server into shutdown so
                        // the acceptor stops and the peers drain.
                        shutdown.store(true, Ordering::Relaxed);
                    }
                    result
                })
                // lint: allow(panic-in-library) -- thread spawn fails only on OS resource exhaustion at startup; a loud stop beats running with missing shards
                .expect("spawn shard")
        })
        .collect();
    // The shards own the only remaining job senders: when the last shard
    // drains and exits, the channel closes and the workers follow.
    drop(job_tx);

    let accept_result = accept_loop(&listener, &mailboxes, &shutdown);
    // Whatever ended the accept loop (shutdown or an epoll failure), the
    // shards must still drain and the threads must still join.
    shutdown.store(true, Ordering::Relaxed);
    drop(listener);
    accept_done.store(true, Ordering::Relaxed);
    for mb in &mailboxes {
        mb.wake.ring();
    }

    let mut shard_result = Ok(());
    for h in shard_handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => shard_result = Err(e),
            Err(_) => shard_result = Err(io::Error::other("event-loop shard panicked")),
        }
    }
    for h in worker_handles {
        let _ = h.join();
    }
    accept_result?;
    shard_result
}

/// The acceptor: epoll on the listener, round-robin handoff to shards.
fn accept_loop(
    listener: &TcpListener,
    mailboxes: &[Arc<Mailbox>],
    shutdown: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    // Best effort: a failed backlog bump degrades ramp speed, not
    // correctness.
    let _ = crate::poll::raise_listen_backlog(listener.as_raw_fd(), LISTEN_BACKLOG);

    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), 0, Interest::READ)?;
    let mut events = Vec::new();
    let mut next_shard = 0usize;

    while !shutdown.load(Ordering::Relaxed) {
        poller.wait(&mut events, Some(TICK))?;
        if events.is_empty() {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    mailboxes[next_shard % mailboxes.len()].push_incoming(stream);
                    next_shard = next_shard.wrapping_add(1);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient failures (EMFILE during load spikes) must
                    // not kill the server — but the listener stays level-
                    // triggered readable, so going straight back to
                    // `epoll_wait` would busy-spin. Back off one tick.
                    eprintln!("accept error: {e}");
                    std::thread::sleep(TICK);
                    break;
                }
            }
        }
    }
    Ok(())
}

/// The worker pool: uncached requests through the full service, results
/// back to the owning shard.
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    service: &EstimateService,
    mailboxes: &[Arc<Mailbox>],
) {
    loop {
        // Hold the lock only for the pop, never while estimating.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let keep_alive = job.request.keep_alive;
        let response = service.handle(&job.request);
        mailboxes[job.shard].push_done(Completion {
            token: job.token,
            generation: job.generation,
            response,
            keep_alive,
        });
    }
}

/// Why a connection is being torn down (decides the reset counter).
#[derive(Clone, Copy, PartialEq)]
enum CloseKind {
    /// Protocol-clean: idle keep-alive close, `Connection: close` served.
    Clean,
    /// Peer died or stalled mid-request/mid-response.
    Reset,
}

/// One event-loop shard: poller, slab, and the readiness state machine.
struct Shard {
    id: usize,
    poller: Poller,
    slab: Slab<Conn>,
    mailbox: Arc<Mailbox>,
    service: Arc<EstimateService>,
    jobs: mpsc::Sender<Job>,
    shutdown: Arc<AtomicBool>,
    /// Set once the acceptor has exited: no more handovers can arrive,
    /// so an empty slab + empty mailbox really is the end.
    accept_done: Arc<AtomicBool>,
    deadline: Duration,
    max_body: usize,
    /// Next generation stamp (monotonic per shard; never reused).
    next_generation: u64,
}

impl Shard {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: usize,
        mailbox: Arc<Mailbox>,
        service: Arc<EstimateService>,
        jobs: mpsc::Sender<Job>,
        shutdown: Arc<AtomicBool>,
        accept_done: Arc<AtomicBool>,
        deadline: Duration,
        max_body: usize,
    ) -> io::Result<Shard> {
        let poller = Poller::new()?;
        poller.add(mailbox.wake.raw(), WAKE, Interest::READ)?;
        Ok(Shard {
            id,
            poller,
            slab: Slab::new(),
            mailbox,
            service,
            jobs,
            shutdown,
            accept_done,
            deadline,
            max_body,
            next_generation: 0,
        })
    }

    fn stats(&self) -> &crate::metrics::ShardStats {
        self.service.metrics().shard(self.id)
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.poller.wait(&mut events, Some(TICK))?;
            if !events.is_empty() {
                self.stats()
                    .readiness_events
                    .fetch_add(events.len() as u64, Ordering::Relaxed);
            }
            for &ev in events.iter() {
                if ev.token == WAKE {
                    self.stats().wakeups.fetch_add(1, Ordering::Relaxed);
                    self.mailbox.wake.drain();
                    continue;
                }
                self.on_conn_event(ev);
            }
            // Mailboxes are swept every pass (not just on doorbell rings),
            // so a coalesced or raced ring can never strand work.
            self.apply_completions();
            self.adopt_incoming();
            self.sweep_deadlines();
            if self.shutdown.load(Ordering::Relaxed)
                && self.accept_done.load(Ordering::Relaxed)
                && self.drained()
            {
                return Ok(());
            }
        }
    }

    /// Drain is complete when no slot is live and nothing is waiting in
    /// the mailbox (completions for dead slots don't count).
    fn drained(&self) -> bool {
        self.slab.is_empty()
            && self
                .mailbox
                .incoming
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
    }

    /// Registers connections the acceptor handed over.
    fn adopt_incoming(&mut self) {
        loop {
            let next = self
                .mailbox
                .incoming
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some(stream) = next else { return };
            let generation = self.next_generation;
            self.next_generation += 1;
            let fd = stream.as_raw_fd();
            let token = self
                .slab
                .insert(Conn::new(stream, self.max_body, generation));
            if self.poller.add(fd, token as u64, Interest::READ).is_err() {
                // Registration failed (fd pressure): drop the connection
                // rather than serve it blind.
                self.slab.remove(token);
                continue;
            }
            self.stats()
                .open_connections
                .fetch_add(1, Ordering::Relaxed);
            // Bytes may already be waiting; level-triggered epoll will
            // report them on the next wait, no speculative read needed.
        }
    }

    /// Routes worker results back onto their connections.
    fn apply_completions(&mut self) {
        loop {
            let next = self
                .mailbox
                .done
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some(done) = next else { return };
            let Some(conn) = self.slab.get_mut(done.token) else {
                // The peer died while its request was estimating; the
                // slot is gone and the answer has no addressee.
                continue;
            };
            if conn.generation != done.generation {
                // Same slot, different connection: a stale completion for
                // a reclaimed slot must never answer the new occupant.
                continue;
            }
            conn.busy = false;
            self.queue_response(done.token, &done.response, done.keep_alive);
            if self.slab.get(done.token).is_some() {
                // Pipelined bytes may already be buffered; resume parsing
                // now that the one-in-flight slot is free again.
                self.pump_parser(done.token);
            }
        }
    }

    /// Handles readiness for one connection token. The slot may vanish
    /// at any step (error paths close it); every step re-checks.
    fn on_conn_event(&mut self, ev: Event) {
        let token = ev.token as usize;
        if ev.readable {
            self.do_read(token);
        }
        if ev.writable {
            self.do_write(token);
        }
        if ev.closed {
            if let Some(conn) = self.slab.get_mut(token) {
                // `EPOLLERR`/`EPOLLHUP`: the socket is dead in both
                // directions, so nothing queued can be delivered anymore.
                // Anything still pending — parsed-but-unanswered bytes, a
                // busy estimate, unflushed response bytes — makes this a
                // reset; a quiet keep-alive connection closing is the
                // normal end of its life.
                let kind = if conn.busy || conn.parser.is_mid_request() || !conn.out.is_empty() {
                    CloseKind::Reset
                } else {
                    CloseKind::Clean
                };
                self.close(token, kind);
            }
        } else if ev.rdhup {
            // `EPOLLRDHUP`: the peer half-closed (shutdown(SHUT_WR)) but
            // can still read; a response it is owed must still reach it.
            self.on_read_closed(token);
        }
    }

    /// EOF or `EPOLLRDHUP`: the peer will never send another byte. Close
    /// now unless a response is still owed (busy at the workers or
    /// unflushed output) — then the write path finishes the exchange
    /// first and the teardown is deferred until the queue drains (a peer
    /// that stops draining is still cut by the write-stall deadline).
    fn on_read_closed(&mut self, token: usize) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        conn.read_closed = true;
        if conn.busy || !conn.out.is_empty() {
            // Defer; drop read-side interest (level-triggered RDHUP
            // would re-fire on every wait until the slot is gone).
            self.sync_interest(token);
        } else if conn.parser.is_mid_request() {
            // A trailing partial request can never complete now.
            self.close(token, CloseKind::Reset);
        } else {
            self.close(token, CloseKind::Clean);
        }
    }

    /// Nonblocking read: feed the parser, pump it, stop at `EAGAIN` or
    /// when the connection pauses itself (busy/backpressure/close).
    fn do_read(&mut self, token: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            if conn.busy || conn.close_after_flush {
                return;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // EOF: same contract as `EPOLLRDHUP`.
                    self.on_read_closed(token);
                    return;
                }
                Ok(n) => {
                    conn.parser.feed(&scratch[..n]);
                    if conn.read_deadline.is_none() && conn.parser.is_mid_request() {
                        // First byte of a request: the whole request must
                        // arrive within the deadline (progress does not
                        // reset the clock — that's the slow-loris hole).
                        conn.read_deadline = Some(Instant::now() + self.deadline);
                    }
                    self.pump_parser(token);
                    if n < READ_CHUNK {
                        return; // short read: the socket is drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token, CloseKind::Reset);
                    return;
                }
            }
        }
    }

    /// `EPOLLOUT`: resume the blocked flush; on drain, resume parsing.
    fn do_write(&mut self, token: usize) {
        if self.slab.get(token).is_none() {
            return;
        }
        self.flush(token);
        let Some(conn) = self.slab.get(token) else {
            return;
        };
        if !conn.write_blocked && !conn.busy && !conn.close_after_flush {
            self.pump_parser(token);
        }
    }

    /// Polls the parser until it needs more bytes, dispatching or
    /// answering each completed request. Stops early when the connection
    /// goes busy, closes, or hits the write high-water mark.
    fn pump_parser(&mut self, token: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            if conn.busy || conn.close_after_flush {
                return;
            }
            if conn.out.pending_bytes() >= WRITE_HIGH_WATER {
                // Backpressure: stop parsing until the peer drains.
                self.sync_interest(token);
                return;
            }
            match conn.parser.poll() {
                Ok(Some(request)) => {
                    if let Some(interim) = conn.parser.take_interim() {
                        conn.out.push_owned(interim.to_vec());
                    }
                    // The request is fully received: its read deadline is
                    // met. The next request's clock starts at its first
                    // byte (which may already be buffered).
                    conn.read_deadline = if conn.parser.is_mid_request() {
                        Some(Instant::now() + self.deadline)
                    } else {
                        None
                    };
                    self.respond_or_dispatch(token, request);
                }
                Ok(None) => {
                    if let Some(interim) = conn.parser.take_interim() {
                        // `Expect: 100-continue` head complete, body
                        // pending: unblock the client now.
                        conn.out.push_owned(interim.to_vec());
                        self.flush(token);
                    }
                    let Some(conn) = self.slab.get_mut(token) else {
                        return; // the interim flush may have closed it
                    };
                    if conn.read_closed {
                        // EOF/RDHUP already seen: no further bytes can
                        // complete another request. Deliver whatever is
                        // queued, then tear the slot down.
                        conn.close_after_flush = true;
                        self.flush(token);
                        return;
                    }
                    if conn.parser.is_mid_request() && conn.read_deadline.is_none() {
                        // Buffered partial-request bytes must always sit
                        // under a deadline, whichever path got us here —
                        // an unarmed clock here is a slow-loris hole.
                        conn.read_deadline = Some(Instant::now() + self.deadline);
                    }
                    self.sync_interest(token);
                    return;
                }
                Err(err) => {
                    self.fail_protocol(token, &err);
                    return;
                }
            }
        }
    }

    /// One parsed request: hot-cache answer on the loop, cheap routes
    /// inline, uncached estimation to the workers.
    fn respond_or_dispatch(&mut self, token: usize, request: HttpRequest) {
        let is_estimate = request.method == "POST" && request.target == "/v1/estimate";
        if is_estimate {
            if let Some(hot) = self.service.try_hot(&request.body) {
                // Zero-copy fast path: head owned (tiny), body shared.
                let keep = request.keep_alive && !self.shutdown.load(Ordering::Relaxed);
                let Some(conn) = self.slab.get_mut(token) else {
                    return;
                };
                conn.out.push_owned(http::response_head(
                    200,
                    "application/json",
                    hot.body.len(),
                    keep,
                ));
                conn.out.push_shared(hot.body);
                if !keep {
                    conn.close_after_flush = true;
                }
                self.flush(token);
                return;
            }
            // Uncached: hand to the workers; reads pause until the
            // completion returns (one in flight per connection).
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            conn.busy = true;
            if !conn.parser.is_mid_request() {
                // Only an idle connection sheds its deadline. Buffered
                // bytes of a pipelined next request keep the clock
                // `pump_parser` just armed: clearing it here would leave
                // the connection mid-request with no deadline once the
                // completion returns — unexpirable by any sweep, held
                // forever by a stalled peer, and a drain blocker.
                conn.read_deadline = None;
            }
            let job = Job {
                shard: self.id,
                token,
                generation: conn.generation,
                request,
            };
            if self.jobs.send(job).is_err() {
                // Workers gone (shutdown torn down mid-flight): the
                // request cannot be answered.
                self.close(token, CloseKind::Reset);
                return;
            }
            self.sync_interest(token);
            return;
        }
        // healthz / metrics / 404 / 405: cheap, answered on the loop.
        let response = self.service.handle(&request);
        self.queue_response(token, &response, request.keep_alive);
    }

    /// A protocol failure: answer with the mapped status (413/431/400)
    /// and close, or drop silently when nothing can be said.
    fn fail_protocol(&mut self, token: usize, err: &HttpError) {
        match self.service.handle_protocol_error(err) {
            Some(response) => {
                // handle_protocol_error always sets `close`.
                self.queue_response(token, &response, true);
            }
            None => {
                self.close(token, CloseKind::Reset);
            }
        }
    }

    /// Queues head + body and flushes. Decides the connection's fate
    /// exactly like the blocking server: keep-alive unless the request
    /// or response says close — or the server is draining.
    fn queue_response(&mut self, token: usize, response: &HttpResponse, request_keep: bool) {
        let keep = request_keep && !response.close && !self.shutdown.load(Ordering::Relaxed);
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        conn.out.push_owned(http::response_head(
            response.status,
            response.content_type,
            response.body.len(),
            keep,
        ));
        conn.out.push_owned(response.body.clone());
        if !keep {
            conn.close_after_flush = true;
        }
        self.flush(token);
    }

    /// Writes as much as the socket takes; arms/disarms write interest;
    /// closes on completion of a closing connection.
    fn flush(&mut self, token: usize) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let before = conn.out.pending_bytes();
        match conn.out.write_to(&mut conn.stream) {
            Ok(true) => {
                conn.write_blocked = false;
                conn.write_blocked_since = None;
                if conn.close_after_flush {
                    // A peer that hung up its write side mid-exchange was
                    // served best-effort, but still counts as a reset —
                    // same contract as EOF with output pending.
                    let kind = if conn.read_closed {
                        CloseKind::Reset
                    } else {
                        CloseKind::Clean
                    };
                    self.close(token, kind);
                    return;
                }
                self.sync_interest(token);
            }
            Ok(false) => {
                conn.write_blocked = true;
                match conn.write_blocked_since {
                    // Any forward progress restarts the stall clock; only
                    // a peer taking nothing at all for a full deadline is
                    // dropped.
                    Some(_) if conn.out.pending_bytes() < before => {
                        conn.write_blocked_since = Some(Instant::now());
                    }
                    Some(_) => {}
                    None => conn.write_blocked_since = Some(Instant::now()),
                }
                self.sync_interest(token);
            }
            Err(_) => {
                self.close(token, CloseKind::Reset);
            }
        }
    }

    /// Reconciles epoll interest with the connection's state, issuing
    /// `epoll_ctl` only on actual change.
    fn sync_interest(&mut self, token: usize) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let desired = Interest {
            readable: !conn.busy
                && !conn.close_after_flush
                && !conn.read_closed
                && conn.out.pending_bytes() < WRITE_HIGH_WATER,
            writable: conn.write_blocked,
            // Once the half-close is observed there is nothing left to
            // learn from RDHUP; leaving it armed would busy-spin the
            // shard (level-triggered) while a deferred response flushes.
            rdhup: !conn.read_closed,
        };
        if desired != conn.armed {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token as u64, desired).is_ok() {
                conn.armed = desired;
            }
        }
    }

    /// Drops slow peers (read or write deadline) and, during shutdown
    /// drain, closes idle keep-alive connections.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let draining = self.shutdown.load(Ordering::Relaxed);
        for token in self.slab.occupied() {
            let Some(conn) = self.slab.get_mut(token) else {
                continue;
            };
            let read_expired = conn.read_deadline.is_some_and(|dl| now >= dl);
            let write_expired = conn
                .write_blocked_since
                .is_some_and(|since| now >= since + self.deadline);
            if read_expired || write_expired {
                self.close(token, CloseKind::Reset);
                continue;
            }
            if draining && !conn.busy && !conn.parser.is_mid_request() && conn.out.is_empty() {
                // Idle keep-alive connection during drain: nothing owed.
                self.close(token, CloseKind::Clean);
            }
        }
    }

    /// Tears a slot down: deregister, count, drop (closing the fd).
    fn close(&mut self, token: usize, kind: CloseKind) {
        let Some(conn) = self.slab.remove(token) else {
            return;
        };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.stats()
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
        if kind == CloseKind::Reset {
            self.service
                .metrics()
                .conn_resets
                .fetch_add(1, Ordering::Relaxed);
        }
        // `conn` drops here; the TcpStream closes the fd.
    }
}
