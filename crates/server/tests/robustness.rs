//! Hostile-peer robustness battery for the epoll event loop.
//!
//! The scenarios the readiness rewrite must survive that a blocking
//! server never sees: a slow-loris peer dripping one byte per write, and
//! a client that vanishes while its request is still estimating. In both
//! cases the contract is the same — the bad connection is torn down
//! (counted in `conn_resets_total`), its slab slot is reclaimed (the
//! `open_connections` gauge returns to zero), and *other* connections on
//! the same shard keep being served throughout. Linux-only: the blocking
//! fallback has neither shards nor the reset counter.
#![cfg(target_os = "linux")]

use hpcarbon_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn start(
    config: ServerConfig,
) -> (
    String,
    std::sync::Arc<hpcarbon_server::EstimateService>,
    hpcarbon_server::ShutdownHandle,
    std::thread::JoinHandle<hpcarbon_server::ServeSummary>,
) {
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let service = server.service();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, service, handle, join)
}

/// One healthz round trip on a fresh connection; panics on any failure.
fn healthz_ok(addr: &str) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
}

/// Spins until `cond` holds or the timeout expires.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn slow_loris_is_dropped_without_stalling_shard_peers() {
    // One shard, so the loris and the healthy client share an event loop;
    // a short deadline keeps the test fast.
    let (addr, service, handle, join) = start(ServerConfig {
        shards: 1,
        workers: 1,
        cache_capacity: 0,
        max_body_bytes: 1 << 20,
        read_deadline: Duration::from_millis(300),
    });

    // The loris: one byte per write, far slower than the deadline allows.
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let request = b"GET /healthz HTTP/1.1\r\n\r\n";
    let started = Instant::now();
    let mut dropped = false;
    for byte in request {
        if loris.write_all(std::slice::from_ref(byte)).is_err() {
            dropped = true;
            break;
        }
        // While the loris drips, the shard keeps serving everyone else.
        healthz_ok(&addr);
        std::thread::sleep(Duration::from_millis(60));
    }
    if !dropped {
        // The writes may all have landed in socket buffers; the drop is
        // then observed as EOF (or a reset) on the read side.
        let mut buf = [0u8; 64];
        dropped = matches!(loris.read(&mut buf), Ok(0) | Err(_));
    }
    assert!(dropped, "the slow-loris connection was never dropped");
    assert!(
        started.elapsed() >= Duration::from_millis(250),
        "dropped before the deadline could have expired"
    );

    // The drop was counted, the slot reclaimed, and the shard is healthy.
    assert!(
        wait_until(Duration::from_secs(5), || {
            service.metrics().conn_resets.load(Ordering::Relaxed) >= 1
        }),
        "the reset was never counted"
    );
    healthz_ok(&addr);
    assert!(
        wait_until(Duration::from_secs(5), || {
            service.metrics().open_connections() == 0
        }),
        "the loris slot was not reclaimed"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stalled_pipelined_tail_does_not_outlive_the_deadline() {
    // A complete uncached estimate plus one stray byte of a pipelined
    // next request, then silence. The stray byte's read deadline must
    // survive the worker dispatch: if dispatching clears it, the
    // connection sits mid-request with no deadline after the completion
    // returns — unexpirable by any sweep, holding its slot forever and
    // wedging graceful drain.
    let (addr, service, handle, join) = start(ServerConfig {
        shards: 1,
        workers: 1,
        cache_capacity: 0, // force the estimate through the workers
        max_body_bytes: 1 << 20,
        read_deadline: Duration::from_millis(400),
    });

    let req = hpcarbon_api::EstimateRequest::paper_baseline(
        hpcarbon_api::SystemId::Frontier,
        hpcarbon_grid::regions::OperatorId::Eso,
    );
    let body = req.to_json();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}G",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();

    // The completed request is answered; then the *server* must close
    // the connection once the stalled tail hits the deadline (a read
    // timeout here means the slot was held forever — the bug).
    let mut out = Vec::new();
    s.read_to_end(&mut out)
        .expect("server never dropped the stalled mid-request connection");
    let text = String::from_utf8_lossy(&out);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");

    assert!(
        wait_until(Duration::from_secs(5), || {
            service.metrics().conn_resets.load(Ordering::Relaxed) >= 1
                && service.metrics().open_connections() == 0
        }),
        "stalled tail was not counted as a reset / slot not reclaimed: resets={}, open={}",
        service.metrics().conn_resets.load(Ordering::Relaxed),
        service.metrics().open_connections(),
    );
    healthz_ok(&addr);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn half_closed_client_still_receives_its_response() {
    // A client may legally shutdown(SHUT_WR) after its request and keep
    // reading. The resulting EPOLLRDHUP lands while the estimate is at
    // the workers; teardown must be deferred until the response flushes
    // instead of resetting the connection unanswered.
    let (addr, service, handle, join) = start(ServerConfig {
        shards: 1,
        workers: 1,
        cache_capacity: 0, // force the estimate through the workers
        max_body_bytes: 1 << 20,
        read_deadline: Duration::from_secs(10),
    });

    // Enough simulated jobs that the half-close is observed mid-estimate.
    let mut req = hpcarbon_api::EstimateRequest::paper_baseline(
        hpcarbon_api::SystemId::Frontier,
        hpcarbon_grid::regions::OperatorId::Eso,
    );
    req.jobs = 200;
    let body = req.to_json();

    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    s.shutdown(Shutdown::Write).unwrap();

    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "half-closed client was torn down unanswered: {text:?}"
    );
    assert!(
        text.contains("\r\n\r\n["),
        "response body missing after half-close: {text:?}"
    );

    assert!(
        wait_until(Duration::from_secs(5), || {
            service.metrics().open_connections() == 0
        }),
        "half-closed slot was not reclaimed"
    );
    healthz_ok(&addr);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn client_disconnect_mid_estimate_reclaims_the_slot() {
    let (addr, service, handle, join) = start(ServerConfig {
        shards: 1,
        workers: 1,
        cache_capacity: 0, // force every estimate through the workers
        max_body_bytes: 1 << 20,
        read_deadline: Duration::from_secs(10),
    });

    // A real, uncached estimate: enough simulated jobs that the client's
    // disconnect is observed while the request is still at the workers.
    let mut req = hpcarbon_api::EstimateRequest::paper_baseline(
        hpcarbon_api::SystemId::Frontier,
        hpcarbon_grid::regions::OperatorId::Eso,
    );
    req.jobs = 200;
    let body = req.to_json();

    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(
        format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    // Vanish without reading a byte of the response.
    drop(s);

    // No panic, the reset is counted, the slot is reclaimed — and the
    // orphaned completion is discarded instead of answering anyone else.
    assert!(
        wait_until(Duration::from_secs(10), || {
            service.metrics().conn_resets.load(Ordering::Relaxed) >= 1
                && service.metrics().open_connections() == 0
        }),
        "disconnect mid-estimate was not cleaned up: resets={}, open={}",
        service.metrics().conn_resets.load(Ordering::Relaxed),
        service.metrics().open_connections(),
    );
    healthz_ok(&addr);

    handle.shutdown();
    let summary = join.join().unwrap();
    // The estimate itself still ran to completion at the worker.
    assert!(summary.estimate_calls <= 1, "{summary:?}");
}
