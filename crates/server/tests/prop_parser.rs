//! Property battery for the incremental HTTP parser.
//!
//! The epoll event loop feeds [`RequestParser`] whatever fragments the
//! kernel delivers, so the parser's one safety contract is *chunk
//! independence*: for any byte stream — valid requests, pipelined
//! back-to-back requests, every typed-error shape, truncated tails — the
//! sequence of parsed requests and the final error verdict must be
//! identical to the blocking one-shot reader's, no matter where the
//! stream is split. These properties are the load-bearing evidence that
//! moving from blocking reads to readiness-driven reads changed no
//! observable behaviour.

use hpcarbon_server::http::{read_request, HttpError, HttpRequest, RequestParser};
use proptest::collection;
use proptest::prelude::*;
use std::io::Cursor;

const MAX_BODY: usize = 256;

/// One-shot reference: parse requests until the stream ends or errors.
/// A truncated tail (EOF mid-request) is "no verdict yet" — the
/// incremental parser would just keep waiting for bytes.
fn oneshot_all(raw: &[u8]) -> (Vec<HttpRequest>, Option<HttpError>) {
    let mut r = Cursor::new(raw.to_vec());
    let mut out = Vec::new();
    loop {
        match read_request(&mut r, MAX_BODY) {
            Ok(req) => out.push(req),
            Err(HttpError::Closed) => return (out, None),
            Err(HttpError::Io(_)) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

/// Incremental counterpart: feed the chunks one by one, polling after
/// each feed (exactly the event loop's read-then-pump rhythm).
fn incremental_all(chunks: &[Vec<u8>]) -> (Vec<HttpRequest>, Option<HttpError>) {
    let mut parser = RequestParser::new(MAX_BODY);
    let mut out = Vec::new();
    for chunk in chunks {
        parser.feed(chunk);
        loop {
            match parser.poll() {
                Ok(Some(req)) => out.push(req),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
    }
    (out, None)
}

/// Splits `raw` into chunks whose lengths cycle through `sizes` (the
/// remainder rides in the final chunk). With sizes drawn from `1..9`
/// this produces splits inside request lines, header names, CRLFs, and
/// bodies alike.
fn chunk(raw: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < raw.len() {
        let take = sizes[i % sizes.len()].min(raw.len() - pos);
        out.push(raw[pos..pos + take].to_vec());
        pos += take;
        i += 1;
    }
    out
}

/// One request's bytes: valid shapes (with and without bodies, both
/// line-ending styles, keep-alive overrides, `Expect: 100-continue`)
/// and every typed-error shape the parser distinguishes.
fn request_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n".to_string()),
        Just("GET /metrics HTTP/1.1\r\n\r\n".to_string()),
        Just("GET / HTTP/1.0\r\n\r\n".to_string()),
        Just("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n".to_string()),
        Just("GET /healthz HTTP/1.1\nhost: x\n\n".to_string()),
        (0usize..48).prop_map(|n| {
            format!(
                "POST /v1/estimate HTTP/1.1\r\ncontent-length: {n}\r\n\r\n{}",
                "b".repeat(n)
            )
        }),
        (0usize..48).prop_map(|n| {
            format!(
                "POST /v1/estimate HTTP/1.1\r\nconnection: close\r\ncontent-length: {n}\r\n\r\n{}",
                "b".repeat(n)
            )
        }),
        (1usize..32).prop_map(|n| {
            format!(
                "POST /big HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: {n}\r\n\r\n{}",
                "x".repeat(n)
            )
        }),
        // Typed-error shapes: 400s, 413, 431, unsupported transfer coding.
        Just("NONSENSE\r\n\r\n".to_string()),
        Just("GET / HTTP/2.0\r\n\r\n".to_string()),
        Just("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_string()),
        Just("POST / HTTP/1.1\r\ncontent-length: seven\r\n\r\n".to_string()),
        Just("POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1\r\n\r\nx".to_string()),
        Just("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_string()),
        (300usize..5000).prop_map(|n| format!("POST / HTTP/1.1\r\ncontent-length: {n}\r\n\r\n")),
        (1000usize..9000)
            .prop_map(|n| format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "y".repeat(n))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    // Interleaved pipelined requests under arbitrary chunkings: the
    // incremental parser yields the one-shot reader's exact requests and
    // error verdict wherever the kernel happens to split the stream.
    #[test]
    fn arbitrary_chunkings_match_oneshot_parsing(
        reqs in collection::vec(request_strategy(), 1..5),
        sizes in collection::vec(1usize..9, 1..12),
    ) {
        let raw = reqs.concat().into_bytes();
        let expected = oneshot_all(&raw);
        let got = incremental_all(&chunk(&raw, &sizes));
        prop_assert_eq!(got, expected);
    }

    // A stream cut mid-request (client vanished, bytes in flight) must
    // never manufacture a request or an error the one-shot reader would
    // not produce.
    #[test]
    fn truncated_tails_never_desync(
        reqs in collection::vec(request_strategy(), 1..4),
        drop_tail in 0usize..40,
        sizes in collection::vec(1usize..7, 1..10),
    ) {
        let mut raw = reqs.concat().into_bytes();
        let keep = raw.len().saturating_sub(drop_tail);
        raw.truncate(keep);
        let expected = oneshot_all(&raw);
        let got = incremental_all(&chunk(&raw, &sizes));
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn every_single_split_boundary_of_a_pipelined_stream_matches() {
    // Exhaustive two-chunk coverage of one representative pipelined
    // stream (cheap enough to sweep every boundary deterministically;
    // the proptest above covers multi-chunk splits of many streams).
    let raw: &[u8] = b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}\
                       GET /metrics HTTP/1.1\r\n\r\n\
                       POST /v1/estimate HTTP/1.1\r\nconnection: close\r\ncontent-length: 4\r\n\r\nabcd";
    let expected = oneshot_all(raw);
    assert_eq!(expected.0.len(), 3, "sanity: the stream holds 3 requests");
    for split in 0..=raw.len() {
        let chunks = vec![raw[..split].to_vec(), raw[split..].to_vec()];
        assert_eq!(incremental_all(&chunks), expected, "split at {split}");
    }
}
