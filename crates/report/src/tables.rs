//! Regeneration of the paper's Tables 1–6.

use crate::artifact::Artifact;
use crate::emit::{Csv, MarkdownTable};
use hpcarbon_core::db::TABLE1_PARTS;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf;

fn month_name(m: u8) -> &'static str {
    [
        "January",
        "February",
        "March",
        "April",
        "May",
        "June",
        "July",
        "August",
        "September",
        "October",
        "November",
        "December",
    ][(m as usize - 1).min(11)]
}

/// Table 1: modeled individual components.
pub fn table1() -> Artifact {
    let mut md = MarkdownTable::new(&["Type", "Component", "Part Name", "Release Date"]);
    let mut csv = Csv::new(&[
        "type",
        "component",
        "part_name",
        "release_year",
        "release_month",
    ]);
    for part in TABLE1_PARTS {
        let s = part.spec();
        md.row([
            s.class.label().to_string(),
            s.component.to_string(),
            s.part_name.to_string(),
            format!("{} {}", month_name(s.release.1), s.release.0),
        ]);
        csv.row([
            s.class.label().to_string(),
            s.component.to_string(),
            s.part_name.to_string(),
            s.release.0.to_string(),
            s.release.1.to_string(),
        ]);
    }
    Artifact::new(
        "table1",
        "Table 1: Modeled individual components",
        md.finish(),
        csv.finish(),
    )
}

/// Table 2: studied HPC systems.
pub fn table2() -> Artifact {
    let mut md = MarkdownTable::new(&["System", "Location", "CPU & GPU", "Cores", "Year"]);
    let mut csv = Csv::new(&["system", "location", "cpu", "gpu", "cores", "year"]);
    for sys in HpcSystem::table2() {
        let cpu = sys
            .inventory
            .iter()
            .find(|(p, _)| p.class == hpcarbon_core::embodied::ComponentClass::Cpu)
            .map(|(p, _)| p.component)
            .unwrap_or("-");
        let gpu = sys
            .inventory
            .iter()
            .find(|(p, _)| p.class == hpcarbon_core::embodied::ComponentClass::Gpu)
            .map(|(p, _)| p.component)
            .unwrap_or("-");
        md.row([
            sys.name.to_string(),
            sys.location.to_string(),
            format!("{cpu}, {gpu}"),
            format!("{}", sys.cores),
            format!("{}", sys.year),
        ]);
        csv.row([
            sys.name.to_string(),
            sys.location.to_string(),
            cpu.to_string(),
            gpu.to_string(),
            sys.cores.to_string(),
            sys.year.to_string(),
        ]);
    }
    Artifact::new(
        "table2",
        "Table 2: Studied HPC systems",
        md.finish(),
        csv.finish(),
    )
}

/// Table 3: independent system operators and regions.
pub fn table3() -> Artifact {
    let mut md = MarkdownTable::new(&["Operator", "Country of Operation", "Region of Operation"]);
    let mut csv = Csv::new(&["short", "name", "country", "region", "timezone"]);
    for op in OperatorId::ALL {
        let info = op.info();
        md.row([
            format!("{} ({})", info.name, info.short),
            info.country.to_string(),
            info.region.to_string(),
        ]);
        csv.row([
            info.short.to_string(),
            info.name.to_string(),
            info.country.to_string(),
            info.region.to_string(),
            format!("{}", info.tz),
        ]);
    }
    Artifact::new(
        "table3",
        "Table 3: Independent system operators and regions",
        md.finish(),
        csv.finish(),
    )
}

/// Table 4: benchmarks and their models.
pub fn table4() -> Artifact {
    let mut md = MarkdownTable::new(&["Benchmark", "Models"]);
    let mut csv = Csv::new(&["suite", "model", "params_m", "train_gflop_per_sample"]);
    for suite in Suite::ALL {
        let models: Vec<&str> = suite.benchmarks().iter().map(|b| b.name).collect();
        md.row([suite.label().to_string(), models.join(", ")]);
        for b in suite.benchmarks() {
            csv.row([
                suite.label().to_string(),
                b.name.to_string(),
                format!("{}", b.params_m),
                format!("{}", b.train_gflop_per_sample),
            ]);
        }
    }
    Artifact::new(
        "table4",
        "Table 4: Benchmarks performed and their respective models",
        md.finish(),
        csv.finish(),
    )
}

/// Table 5: node generations analyzed.
pub fn table5() -> Artifact {
    let mut md = MarkdownTable::new(&["Name", "GPU", "CPU"]);
    let mut csv = Csv::new(&["name", "gpu", "gpu_count", "cpu", "cpu_count"]);
    for node in NodeGen::ALL {
        let c = node.config();
        md.row([
            c.name.to_string(),
            format!("{} x {}", c.gpu_count, c.gpu.spec().name),
            format!("{} x {}", c.cpus.1, c.cpus.0.spec().part_name),
        ]);
        csv.row([
            c.name.to_string(),
            c.gpu.spec().name.to_string(),
            c.gpu_count.to_string(),
            c.cpus.0.spec().part_name.to_string(),
            c.cpus.1.to_string(),
        ]);
    }
    Artifact::new(
        "table5",
        "Table 5: Different generations of nodes analyzed",
        md.finish(),
        csv.finish(),
    )
}

/// Table 6: performance improvement from node upgrades.
pub fn table6() -> Artifact {
    let mut md = MarkdownTable::new(&[
        "Upgrade Option",
        "NLP Improv.",
        "Vision Improv.",
        "CANDLE Improv.",
        "Average Improv.",
    ]);
    let mut csv = Csv::new(&[
        "from",
        "to",
        "nlp_pct",
        "vision_pct",
        "candle_pct",
        "average_pct",
    ]);
    for row in perf::table6() {
        let from = row.from.config().name;
        let to = row.to.config().name;
        md.row([
            format!("{from} to {to}"),
            format!("{:.1}%", row.nlp),
            format!("{:.1}%", row.vision),
            format!("{:.1}%", row.candle),
            format!("{:.1}%", row.average()),
        ]);
        csv.row([
            from.to_string(),
            to.to_string(),
            format!("{:.2}", row.nlp),
            format!("{:.2}", row.vision),
            format!("{:.2}", row.candle),
            format!("{:.2}", row.average()),
        ]);
    }
    Artifact::new(
        "table6",
        "Table 6: Performance improvement from the node upgrade",
        md.finish(),
        csv.finish(),
    )
}

/// One row of the carbon-shifting comparison: a policy and its outcome
/// on the same job trace.
#[derive(Debug, Clone)]
pub struct ShiftingRow {
    /// Policy label.
    pub policy: String,
    /// Total operational carbon, kgCO₂.
    pub carbon_kg: f64,
    /// Carbon saved vs the run-at-arrival baseline, kgCO₂.
    pub saved_kg: f64,
    /// The same savings in percent of the baseline.
    pub saved_pct: f64,
    /// Mean queue wait, hours.
    pub mean_wait_h: f64,
    /// Max queue wait, hours.
    pub max_wait_h: f64,
    /// What perfect knowledge would have saved, kgCO₂ — `None` when
    /// the run planned on the actual trace (no forecast engaged).
    pub oracle_saved_kg: Option<f64>,
    /// Oracle savings in percent of the baseline.
    pub oracle_saved_pct: Option<f64>,
}

impl ShiftingRow {
    /// A forecast-free row (the historical constructor shape): realized
    /// and oracle savings coincide, so no oracle columns are carried.
    pub fn new(
        policy: impl Into<String>,
        carbon_kg: f64,
        saved_kg: f64,
        saved_pct: f64,
        mean_wait_h: f64,
        max_wait_h: f64,
    ) -> ShiftingRow {
        ShiftingRow {
            policy: policy.into(),
            carbon_kg,
            saved_kg,
            saved_pct,
            mean_wait_h,
            max_wait_h,
            oracle_saved_kg: None,
            oracle_saved_pct: None,
        }
    }
}

/// Renders the shifting comparison as an aligned Markdown table — the
/// terminal view of "what does each policy buy, and what does it cost in
/// queue time" used by `hpcarbon schedule` and the shifting example.
/// When any row carries oracle savings (a forecast run), two extra
/// columns show what perfect knowledge would have bought; forecast-free
/// tables keep the historical six-column layout.
pub fn shifting_comparison(rows: &[ShiftingRow]) -> String {
    let oracle = rows.iter().any(|r| r.oracle_saved_kg.is_some());
    let mut headers = vec![
        "policy",
        "kgCO2",
        "saved kg",
        "saved %",
        "mean wait h",
        "max wait h",
    ];
    if oracle {
        headers.extend(["oracle kg", "oracle %"]);
    }
    let mut md = MarkdownTable::new(&headers);
    let opt = |v: Option<f64>| v.map(|v| format!("{v:.1}")).unwrap_or_default();
    for r in rows {
        let mut cells = vec![
            r.policy.clone(),
            format!("{:.1}", r.carbon_kg),
            format!("{:.1}", r.saved_kg),
            format!("{:.1}", r.saved_pct),
            format!("{:.1}", r.mean_wait_h),
            format!("{:.1}", r.max_wait_h),
        ];
        if oracle {
            cells.push(opt(r.oracle_saved_kg));
            cells.push(opt(r.oracle_saved_pct));
        }
        md.row(cells);
    }
    md.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_nine_components() {
        let a = table1();
        assert_eq!(a.csv.lines().count(), 10); // header + 9
        assert!(a.text.contains("NVIDIA A100 PCIe 40GB"));
        assert!(a.text.contains("Seagate Exos X16 16TB"));
        assert!(a.text.contains("May 2020"));
    }

    #[test]
    fn table2_matches_paper_systems() {
        let a = table2();
        assert!(a.text.contains("Frontier"));
        assert!(a.text.contains("Kajaani, Finland"));
        assert!(a.text.contains("8730112"));
    }

    #[test]
    fn table3_lists_seven_operators() {
        let a = table3();
        assert_eq!(a.csv.lines().count(), 8);
        assert!(a.text.contains("Great Britain"));
        assert!(a.text.contains("ERCOT"));
    }

    #[test]
    fn table4_contains_all_models() {
        let a = table4();
        assert_eq!(a.csv.lines().count(), 16); // header + 15 models
        for name in ["BERT", "ViT", "Combo", "ShuffleNetV2"] {
            assert!(a.text.contains(name) || a.csv.contains(name), "{name}");
        }
    }

    #[test]
    fn table5_lists_three_nodes() {
        let a = table5();
        assert_eq!(a.csv.lines().count(), 4);
        assert!(a.text.contains("4 x NVIDIA Tesla P100 PCIe"));
        assert!(a.text.contains("4 x AMD EPYC 7542 CPU"));
    }

    #[test]
    fn table6_rows_near_paper_values() {
        let a = table6();
        assert_eq!(a.csv.lines().count(), 4);
        assert!(a.text.contains("P100 to V100"));
        assert!(a.text.contains("V100 to A100"));
        // Extract the NLP number of the first row from CSV.
        let row1: Vec<&str> = a.csv.lines().nth(1).unwrap().split(',').collect();
        let nlp: f64 = row1[2].parse().unwrap();
        assert!((nlp - 44.4).abs() < 4.0, "NLP improvement {nlp}");
    }

    #[test]
    fn month_names() {
        assert_eq!(month_name(1), "January");
        assert_eq!(month_name(11), "November");
    }

    #[test]
    fn shifting_comparison_renders_every_row() {
        let rows = vec![
            ShiftingRow::new("FIFO (carbon-unaware)", 1200.0, 0.0, 0.0, 0.0, 0.0),
            ShiftingRow::new("temporal shift", 800.0, 400.0, 33.3, 6.2, 24.0),
        ];
        let t = shifting_comparison(&rows);
        assert!(t.contains("temporal shift"));
        assert!(t.contains("400.0"));
        assert_eq!(t.lines().count(), 2 + rows.len()); // header + rule + rows
                                                       // Forecast-free tables keep the historical layout.
        assert!(!t.contains("oracle"));
    }

    #[test]
    fn shifting_comparison_grows_oracle_columns_under_a_forecast() {
        let mut realized = ShiftingRow::new("temporal shift", 820.0, 380.0, 31.6, 6.4, 24.0);
        realized.oracle_saved_kg = Some(400.0);
        realized.oracle_saved_pct = Some(33.3);
        let rows = vec![
            ShiftingRow::new("FIFO (carbon-unaware)", 1200.0, 0.0, 0.0, 0.0, 0.0),
            realized,
        ];
        let t = shifting_comparison(&rows);
        assert!(t.contains("oracle kg") && t.contains("oracle %"));
        assert!(t.contains("400.0") && t.contains("380.0"));
        // Rows without oracle data render empty cells, not zeros.
        let fifo_line = t.lines().find(|l| l.contains("FIFO")).unwrap();
        assert!(!fifo_line.contains("400.0"));
    }
}
