//! The rendered-artifact container.

/// One regenerated paper artifact: a text panel (chart/table) plus the
/// underlying data as CSV.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Stable identifier (`table1` … `fig9`).
    pub id: String,
    /// Human title (matches the paper's caption intent).
    pub title: String,
    /// Rendered plain-text panel.
    pub text: String,
    /// Machine-readable data (CSV with header row).
    pub csv: String,
}

impl Artifact {
    /// Creates an artifact.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        text: impl Into<String>,
        csv: impl Into<String>,
    ) -> Artifact {
        Artifact {
            id: id.into(),
            title: title.into(),
            text: text.into(),
            csv: csv.into(),
        }
    }

    /// Writes `<dir>/<id>.txt` and `<dir>/<id>.csv`.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.id)), &self.text)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), &self.csv)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_write() {
        let a = Artifact::new("t", "Title", "body", "h\n1\n");
        let dir = std::env::temp_dir().join("hpcarbon_artifact_test");
        a.write_to(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("t.txt")).unwrap(), "body");
        assert_eq!(
            std::fs::read_to_string(dir.join("t.csv")).unwrap(),
            "h\n1\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
