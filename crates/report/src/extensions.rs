//! Artifacts beyond the paper's figures: the analyses its limitations and
//! implications sections call for (see EXPERIMENTS.md "Extensions").

use crate::artifact::Artifact;
use crate::charts::{bar_chart, line_plot};
use crate::emit::Csv;
use hpcarbon_core::interconnect::{fabric_share, sensitivity, Fabric};
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::sim::{annual_fuel_shares, simulate_year};
use hpcarbon_grid::OperatorId;
use hpcarbon_sched::{Cluster, JobTraceGenerator, Policy, Simulation};
use hpcarbon_units::CarbonIntensity;
use hpcarbon_upgrade::savings::UpgradeScenario;
use hpcarbon_upgrade::DecarbonizationScenario;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// Ext. 1: interconnect embodied-carbon sensitivity (the paper's §3
/// limitation, quantified). How much of Frontier's extended embodied total
/// would a Slingshot-class fabric represent, as the per-part estimates
/// scale 0.25×–4×?
pub fn ext1_interconnect() -> Artifact {
    let frontier = HpcSystem::frontier();
    let fabric = Fabric::dragonfly_for(9_408, 4);
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0];
    let sweep = sensitivity(frontier.embodied_total(), &fabric, &factors);
    let rows: Vec<(String, f64)> = sweep
        .iter()
        .map(|(k, share)| (format!("estimate x{k:.2}"), share * 100.0))
        .collect();
    let mut text = bar_chart(
        "Frontier: interconnect share of extended embodied carbon",
        &rows,
        "%",
    );
    text.push_str(&format!(
        "\nBase estimate: {} switches + {} NICs = {} ({}% of the extended total)\n",
        fabric.switches,
        fabric.nics,
        fabric.embodied().total(),
        (fabric_share(frontier.embodied_total(), &fabric) * 100.0).round(),
    ));
    let mut csv = Csv::new(&["estimate_factor", "fabric_share_pct"]);
    for (k, share) in &sweep {
        csv.row([format!("{k}"), format!("{:.2}", share * 100.0)]);
    }
    Artifact::new(
        "ext1_interconnect",
        "Ext. 1: Interconnect embodied-carbon sensitivity (paper limitation)",
        text,
        csv.finish(),
    )
}

/// Ext. 2: upgrade break-even under grid decarbonization — Insight 8's
/// "as could be the case in the future for many centers", quantified.
pub fn ext2_decarbonization() -> Artifact {
    let scenario = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
    let initial = CarbonIntensity::from_g_per_kwh(100.0);
    let declines: Vec<f64> = vec![0.0, 0.02, 0.05, 0.08, 0.12, 0.20, 0.30];
    let mut csv = Csv::new(&["annual_decline_pct", "break_even_years"]);
    let xs: Vec<f64> = declines.iter().map(|d| d * 100.0).collect();
    let ys: Vec<f64> = declines
        .iter()
        .map(|d| {
            let s = DecarbonizationScenario::new(*d, CarbonIntensity::from_g_per_kwh(20.0));
            s.break_even(&scenario, initial, 60.0)
                .map(|t| t.as_years())
                .unwrap_or(60.0)
        })
        .collect();
    for (x, y) in xs.iter().zip(&ys) {
        csv.row([format!("{x:.0}"), format!("{y:.2}")]);
    }
    let text = line_plot(
        "V100->A100 break-even vs annual grid decarbonization (start 100 gCO2/kWh)",
        "annual decline of above-floor intensity (%)",
        &xs,
        &[("break-even (years, capped at 60)".into(), ys)],
    );
    Artifact::new(
        "ext2_decarbonization",
        "Ext. 2: Upgrade break-even on decarbonizing grids (Insight 8's future case)",
        text,
        csv.finish(),
    )
}

/// Ext. 3: the carbon-aware scheduler the paper's §4 calls for — carbon
/// and wait for five policies on a two-region (GB + CA) deployment.
pub fn ext3_scheduler(seed: u64) -> Artifact {
    let gb = Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, seed), 96);
    let ca = Cluster::new("ca", simulate_year(OperatorId::Ciso, 2021, seed), 96);
    let jobs = JobTraceGenerator::default_rates().generate(400, seed);
    let policies = [
        Policy::Fifo,
        Policy::ThresholdDefer {
            threshold_g_per_kwh: 150.0,
        },
        Policy::GreenestWindow { horizon_hours: 24 },
        Policy::LowestIntensityRegion,
        Policy::RegionAndTime { horizon_hours: 24 },
    ];
    let mut csv = Csv::new(&[
        "policy",
        "total_kgco2",
        "mean_wait_h",
        "max_wait_h",
        "vs_fifo_pct",
    ]);
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut fifo_kg = None;
    let mut notes = String::new();
    for policy in policies {
        let out = Simulation::multi_region(vec![gb.clone(), ca.clone()], policy, &jobs).run();
        let kg = out.total_carbon.as_kg();
        if policy == Policy::Fifo {
            fifo_kg = Some(kg);
        }
        let vs = fifo_kg.map(|f| 100.0 * (kg - f) / f).unwrap_or(0.0);
        csv.row([
            policy.label().to_string(),
            format!("{kg:.1}"),
            format!("{:.2}", out.mean_wait_hours),
            format!("{:.2}", out.max_wait_hours),
            format!("{vs:.1}"),
        ]);
        rows.push((policy.label().to_string(), kg));
        notes.push_str(&format!(
            "  {:<28} {:>8.1} kgCO2  ({:+.1}% vs FIFO)  mean wait {:.1} h\n",
            policy.label(),
            kg,
            vs,
            out.mean_wait_hours
        ));
    }
    let mut text = bar_chart(
        "Total job carbon by scheduling policy (400 jobs, GB+CA, 2021)",
        &rows,
        "kgCO2",
    );
    text.push('\n');
    text.push_str(&notes);
    Artifact::new(
        "ext3_scheduler",
        "Ext. 3: Carbon-intensity-aware scheduling (the paper's §4 implication, built)",
        text,
        csv.finish(),
    )
}

/// Ext. 4: the simulated energy mixes behind Fig. 6 — validating the grid
/// substrate against each region's public generation profile.
pub fn ext4_fuel_mix(seed: u64) -> Artifact {
    let mut csv = Csv::new(&["region", "fuel", "share_pct"]);
    let mut text = String::new();
    for op in OperatorId::ALL {
        let shares = annual_fuel_shares(op, 2021, seed);
        let rows: Vec<(String, f64)> = shares
            .iter()
            .filter(|(_, s)| *s > 0.005)
            .map(|(f, s)| (f.label().to_string(), s * 100.0))
            .collect();
        text.push_str(&bar_chart(
            &format!("{} ({}) generation mix", op.info().short, op.info().region),
            &rows,
            "%",
        ));
        text.push('\n');
        for (f, s) in &shares {
            csv.row([
                op.info().short.to_string(),
                f.label().to_string(),
                format!("{:.1}", s * 100.0),
            ]);
        }
    }
    Artifact::new(
        "ext4_fuel_mix",
        "Ext. 4: Simulated annual generation mixes behind the Fig. 6 traces",
        text,
        csv.finish(),
    )
}

/// Renders all extension artifacts.
pub fn render_extensions(seed: u64) -> Vec<Artifact> {
    vec![
        ext1_interconnect(),
        ext2_decarbonization(),
        ext3_scheduler(seed),
        ext4_fuel_mix(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext1_share_grows_with_estimate() {
        let a = ext1_interconnect();
        let shares: Vec<f64> = a
            .csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(shares.len(), 5);
        for w in shares.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Base (x1) sits in the single digits of percent.
        assert!((2.0..20.0).contains(&shares[2]), "{shares:?}");
    }

    #[test]
    fn ext2_break_even_stretches() {
        let a = ext2_decarbonization();
        let years: Vec<f64> = a
            .csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        for w in years.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // No decline: ~1.6 y at 100 gCO2/kWh; aggressive decline stretches
        // it materially (the above-floor saving stream decays).
        assert!(years[0] < 2.0, "{years:?}");
        assert!(*years.last().unwrap() > years[0] * 1.2, "{years:?}");
    }

    #[test]
    fn ext3_aware_policies_beat_fifo() {
        let a = ext3_scheduler(7);
        let rows: Vec<(String, f64)> = a
            .csv
            .lines()
            .skip(1)
            .map(|l| {
                let cells: Vec<&str> = l.split(',').collect();
                (cells[0].to_string(), cells[1].parse().unwrap())
            })
            .collect();
        let fifo = rows
            .iter()
            .find(|(n, _)| n.contains("FIFO"))
            .expect("fifo row")
            .1;
        for (name, kg) in &rows {
            if !name.contains("FIFO") {
                assert!(kg < &fifo, "{name}: {kg} vs fifo {fifo}");
            }
        }
    }

    #[test]
    fn ext4_mixes_cover_all_regions() {
        let a = ext4_fuel_mix(7);
        for op in OperatorId::ALL {
            assert!(a.csv.contains(op.info().short), "{:?}", op);
        }
        // Region shares sum to ~100 each.
        for op in OperatorId::ALL {
            let total: f64 = a
                .csv
                .lines()
                .skip(1)
                .filter(|l| l.starts_with(&format!("{},", op.info().short)))
                .map(|l| l.split(',').nth(2).unwrap().parse::<f64>().unwrap())
                .sum();
            assert!((total - 100.0).abs() < 0.5, "{:?}: {total}", op);
        }
    }

    #[test]
    fn render_extensions_is_complete() {
        let all = render_extensions(7);
        assert_eq!(all.len(), 4);
        for a in &all {
            assert!(a.id.starts_with("ext"));
            assert!(!a.text.is_empty() && !a.csv.is_empty());
        }
    }
}
