//! # hpcarbon-report
//!
//! Regenerates every table and figure of the paper's evaluation as
//! plain-text charts plus machine-readable CSV:
//!
//! | Artifact | Function | Paper section |
//! |----------|----------|---------------|
//! | Table 1–5 | [`tables::table1`] … [`tables::table5`] | §2 |
//! | Table 6 | [`tables::table6`] | §5 |
//! | Fig. 1–3 | [`figures::fig1`] … [`figures::fig3`] | §3 RQ1–2 |
//! | Fig. 4 | [`figures::fig4`] | §3 RQ3 |
//! | Fig. 5 | [`figures::fig5`] | §3 RQ4 |
//! | Fig. 6–7 | [`figures::fig6`], [`figures::fig7`] | §4 RQ5–6 |
//! | Fig. 8–9 | [`figures::fig8`], [`figures::fig9`] | §5 RQ7–8 |
//!
//! Each function returns an [`artifact::Artifact`] holding a rendered
//! text panel and CSV series; [`render_all`] produces the full set (the
//! `paper_figures` example writes them to disk).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod charts;
pub mod emit;
pub mod extensions;
pub mod figures;
pub mod tables;

pub use artifact::Artifact;
pub use extensions::render_extensions;

/// Renders every paper artifact (6 tables + 9 figures). `seed` drives the
/// grid simulation behind Figs. 6 and 7.
pub fn render_all(seed: u64) -> Vec<Artifact> {
    vec![
        tables::table1(),
        tables::table2(),
        tables::table3(),
        tables::table4(),
        tables::table5(),
        tables::table6(),
        figures::fig1(),
        figures::fig2(),
        figures::fig3(),
        figures::fig4(),
        figures::fig5(),
        figures::fig6(seed),
        figures::fig7(seed),
        figures::fig8(),
        figures::fig9(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_fifteen_artifacts() {
        let all = render_all(2021);
        assert_eq!(all.len(), 15);
        let mut ids: Vec<&str> = all.iter().map(|a| a.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15, "artifact ids must be unique");
        for a in &all {
            assert!(!a.text.is_empty(), "{} has empty text", a.id);
            assert!(!a.csv.is_empty(), "{} has empty csv", a.id);
        }
    }
}
