//! Plain-text chart rendering: horizontal bars, box plots, ring-chart
//! legends and multi-series line plots.

use hpcarbon_timeseries::stats::BoxplotStats;
use std::fmt::Write as _;

const BAR_WIDTH: usize = 48;

/// A horizontal bar chart. Values must be non-negative.
pub fn bar_chart(title: &str, rows: &[(String, f64)], unit: &str) -> String {
    assert!(!rows.is_empty(), "bar chart needs rows");
    assert!(
        rows.iter().all(|(_, v)| *v >= 0.0 && v.is_finite()),
        "bar values must be finite and non-negative"
    );
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in rows {
        let filled = if max > 0.0 {
            ((v / max) * BAR_WIDTH as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {label:<label_w$} |{}{} {v:.2} {unit}",
            "#".repeat(filled),
            " ".repeat(BAR_WIDTH - filled),
        );
    }
    out
}

/// A horizontal box-plot panel: one row per labeled distribution, drawn on
/// a shared `[lo, hi]` axis.
pub fn boxplot_chart(title: &str, rows: &[(String, BoxplotStats)], unit: &str) -> String {
    assert!(!rows.is_empty(), "boxplot needs rows");
    let lo = rows
        .iter()
        .map(|(_, b)| b.whisker_lo)
        .fold(f64::INFINITY, f64::min);
    let hi = rows
        .iter()
        .map(|(_, b)| b.whisker_hi)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let width = 60usize;
    let pos = |v: f64| -> usize {
        (((v - lo) / span) * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "  {:label_w$}  axis: {lo:.0} .. {hi:.0} {unit}", "");
    for (label, b) in rows {
        let mut line = vec![b' '; width];
        line[pos(b.whisker_lo)..=pos(b.whisker_hi)].fill(b'-');
        line[pos(b.q1)..=pos(b.q3)].fill(b'=');
        line[pos(b.whisker_lo)] = b'|';
        line[pos(b.whisker_hi)] = b'|';
        line[pos(b.q1)] = b'[';
        line[pos(b.q3)] = b']';
        line[pos(b.median)] = b'*';
        let _ = writeln!(
            out,
            "  {label:<label_w$} {}  (median {:.1})",
            // The line buffer is filled only with ASCII bytes above, so
            // the lossy conversion never actually substitutes anything.
            String::from_utf8_lossy(&line),
            b.median
        );
    }
    out
}

/// A ring-chart legend: labeled percentage shares with proportional bars
/// (the textual rendering of the paper's donut charts).
pub fn ring_chart(title: &str, slices: &[(String, f64)]) -> String {
    assert!(!slices.is_empty(), "ring chart needs slices");
    let total: f64 = slices.iter().map(|(_, v)| *v).sum();
    assert!(total > 0.0, "ring chart needs positive total");
    let label_w = slices.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in slices {
        let share = v / total;
        let filled = (share * BAR_WIDTH as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {label:<label_w$} {:>5.1}% |{}{}|",
            share * 100.0,
            "o".repeat(filled),
            " ".repeat(BAR_WIDTH - filled),
        );
    }
    out
}

/// A multi-series line plot on a character grid. Each series gets a
/// distinct glyph; the y axis is annotated with its range.
pub fn line_plot(title: &str, x_label: &str, xs: &[f64], series: &[(String, Vec<f64>)]) -> String {
    assert!(!series.is_empty(), "line plot needs series");
    assert!(xs.len() >= 2, "line plot needs at least two x points");
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
    }
    const GLYPHS: [char; 6] = ['A', 'B', 'C', 'D', 'E', 'F'];
    let height = 16usize;
    let width = 64usize;
    let ymin = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .fold(f64::INFINITY, |a, b| a.min(*b));
    let ymax = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .fold(f64::NEG_INFINITY, |a, b| a.max(*b));
    let yspan = (ymax - ymin).max(1e-12);
    let xmin = xs[0];
    let xspan = (xs[xs.len() - 1] - xmin).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    // Zero line, when it is inside the range (Fig. 8/9's red/green split).
    if ymin < 0.0 && ymax > 0.0 {
        let zr = ((ymax / yspan) * (height - 1) as f64).round() as usize;
        for c in grid[zr.min(height - 1)].iter_mut() {
            *c = '.';
        }
    }
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in xs.iter().zip(ys) {
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let row = (((ymax - y) / yspan) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "  y: {ymin:.1} .. {ymax:.1}");
    for row in grid {
        let _ = writeln!(out, "  |{}|", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "   {xmin:.1}{:>w$.1}", xs[xs.len() - 1], w = width - 3);
    let _ = writeln!(out, "   x: {x_label}");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} = {name}", GLYPHS[si % GLYPHS.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(
            "t",
            &[("a".into(), 10.0), ("b".into(), 5.0), ("c".into(), 0.0)],
            "kg",
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let hashes = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert_eq!(hashes(lines[1]), BAR_WIDTH);
        assert_eq!(hashes(lines[2]), BAR_WIDTH / 2);
        assert_eq!(hashes(lines[3]), 0);
        assert!(lines[1].contains("10.00 kg"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bar_chart_rejects_negative() {
        let _ = bar_chart("t", &[("a".into(), -1.0)], "");
    }

    #[test]
    fn boxplot_orders_glyphs() {
        let b = BoxplotStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        let s = boxplot_chart("t", &[("r".into(), b)], "g");
        assert!(s.contains('*'));
        assert!(s.contains('['));
        assert!(s.contains(']'));
        let row = s.lines().nth(2).unwrap();
        let star = row.find('*').unwrap();
        let open = row.find('[').unwrap();
        let close = row.find(']').unwrap();
        assert!(open < star && star < close);
    }

    #[test]
    fn ring_chart_percentages_sum() {
        let s = ring_chart("t", &[("x".into(), 3.0), ("y".into(), 1.0)]);
        assert!(s.contains("75.0%"));
        assert!(s.contains("25.0%"));
    }

    #[test]
    fn line_plot_draws_all_series() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let up: Vec<f64> = xs.iter().map(|x| x - 5.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| 5.0 - x).collect();
        let s = line_plot(
            "t",
            "years",
            &xs,
            &[("rising".into(), up), ("falling".into(), down)],
        );
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains("rising"));
        // Zero line drawn because the range crosses zero.
        assert!(s.contains('.'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn line_plot_checks_lengths() {
        let _ = line_plot("t", "x", &[0.0, 1.0], &[("s".into(), vec![1.0])]);
    }
}
