//! CSV and Markdown emission (implemented in-tree; the offline dependency
//! set has no serde format crate).

use std::fmt::Write as _;

/// A CSV builder with RFC-4180 quoting.
#[derive(Debug, Clone)]
pub struct Csv {
    columns: usize,
    out: String,
}

impl Csv {
    /// Starts a CSV with a header row.
    pub fn new(headers: &[&str]) -> Csv {
        assert!(!headers.is_empty(), "CSV needs at least one column");
        let mut csv = Csv {
            columns: headers.len(),
            out: String::new(),
        };
        csv.raw_row(headers.iter().map(|h| (*h).to_string()));
        csv
    }

    /// Appends a row of display-able cells.
    ///
    /// # Panics
    /// If the arity differs from the header.
    pub fn row<I, T>(&mut self, cells: I)
    where
        I: IntoIterator<Item = T>,
        T: std::fmt::Display,
    {
        self.raw_row(cells.into_iter().map(|c| c.to_string()));
    }

    fn raw_row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(|c| escape(&c)).collect();
        assert_eq!(cells.len(), self.columns, "row arity mismatch");
        let _ = writeln!(self.out, "{}", cells.join(","));
    }

    /// The finished CSV text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// A Markdown pipe-table builder.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Starts a table with headers.
    pub fn new(headers: &[&str]) -> MarkdownTable {
        assert!(!headers.is_empty());
        MarkdownTable {
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the arity differs from the header.
    pub fn row<I, T>(&mut self, cells: I)
    where
        I: IntoIterator<Item = T>,
        T: std::fmt::Display,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the aligned table.
    pub fn finish(self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basics() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(["1", "2"]);
        c.row(["x,y", "q\"r"]);
        let s = c.finish();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"r\"");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn csv_rejects_wrong_arity() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(["only one"]);
    }

    #[test]
    fn markdown_alignment() {
        let mut t = MarkdownTable::new(&["name", "v"]);
        t.row(["long-name", "1"]);
        t.row(["x", "22"]);
        let s = t.finish();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|-"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_numeric_rows() {
        let mut t = MarkdownTable::new(&["k", "v"]);
        t.row([format!("{}", 1), format!("{:.2}", 2.5)]);
        assert!(t.finish().contains("2.50"));
    }
}
